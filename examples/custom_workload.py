#!/usr/bin/env python3
"""Build a custom synthetic program and evaluate predictors on it.

Demonstrates the low-level trace API: a hand-written call graph with a
hard-to-predict branch in a shared library function reached through many
call paths -- the exact structure the paper's contexts exploit.  Compare
how TAGE-SC-L, LLBP, and LLBP-X handle it.

Run with::

    python examples/custom_workload.py
"""

from repro.core import simulate
from repro.llbp import LLBP, LLBPX, ContextStreams, llbp_default, llbpx_default
from repro.tage import TageSCL, TraceTensors, tsl_64k
from repro.traces import (
    BiasedBehavior,
    CallSite,
    CondSite,
    Function,
    GlobalCorrelatedBehavior,
    PathCorrelatedBehavior,
    PcAllocator,
    Program,
    TraceGenerator,
)

SCALE = 8


def build_program() -> Program:
    pc = PcAllocator()

    def function(name, behaviors):
        entry = pc.alloc(4)
        sites = []
        for behavior in behaviors:
            site_pc = pc.alloc(2)
            sites.append(CondSite(site_pc, site_pc + 16, behavior))
        return Function(name=name, entry_pc=entry, exit_pc=pc.alloc(1), sites=sites)

    # A shared library routine: one easy branch plus one H2P branch whose
    # outcome depends on the full call path reaching it.
    library = function(
        "shared_lib",
        [
            GlobalCorrelatedBehavior(seed=11, k=3),
            PathCorrelatedBehavior(seed=12, hist_k=1),
        ],
    )

    # Eight handler functions, all calling the same library routine.
    handlers = []
    for i in range(8):
        handler = function(f"handler{i}", [BiasedBehavior(seed=100 + i, p_taken=0.95)])
        call_pc = pc.alloc(2)
        handler.sites.append(CallSite(call_pc, [library], [1.0]))
        handlers.append(handler)

    dispatcher = function("dispatch", [BiasedBehavior(seed=99, p_taken=0.9)])
    dispatch_call = pc.alloc(2)
    dispatcher.sites.append(CallSite(dispatch_call, handlers, [1.0] * len(handlers)))

    return Program(name="custom", functions=[dispatcher] + handlers + [library])


def main() -> None:
    program = build_program()
    print(f"program: {len(program.functions)} functions, "
          f"{program.static_branch_count()} static branches")

    generator = TraceGenerator(program, seed=7, mean_gap=5.0, request_types=24)
    trace = generator.generate(80_000)
    print(f"trace: {len(trace)} branches, {trace.num_instructions} instructions\n")

    tensors = TraceTensors(trace)
    contexts = ContextStreams(tensors)
    tage_config = tsl_64k(scale=SCALE)

    results = {
        "tsl_64k": simulate(TageSCL(tage_config, tensors), trace, tensors),
        "llbp": simulate(
            LLBP(llbp_default(scale=SCALE), tage_config, tensors, contexts), trace, tensors
        ),
        "llbpx": simulate(
            LLBPX(llbpx_default(scale=SCALE), tage_config, tensors, contexts), trace, tensors
        ),
    }
    baseline = results["tsl_64k"].mpki
    for name, result in results.items():
        gain = 100 * (baseline - result.mpki) / baseline
        print(f"{name:>8s}: MPKI {result.mpki:6.3f}  ({gain:+5.1f}% vs baseline)")


if __name__ == "__main__":
    main()
