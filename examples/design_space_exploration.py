#!/usr/bin/env python3
"""Design-space exploration: the context-depth and capacity trade-offs.

Sweeps LLBP's context depth W (the paper's central tension: spreading vs
duplication, §IV) and the pattern-store capacity (Fig 16a) on one
workload, printing MPKI-reduction curves.  This is the kind of study the
paper's trace-driven framework exists for.

Run with::

    python examples/design_space_exploration.py [workload]
"""

import sys

from repro import Runner, RunnerConfig, reduction
from repro.experiments import format_table


def sweep_context_depth(runner: Runner, workload: str) -> str:
    baseline = runner.run_one(workload, "tsl_64k")
    rows = []
    for depth in (1, 2, 4, 8, 16, 32, 64):
        result = runner.run_one(workload, "llbp", context_depth=depth)
        rows.append([f"W={depth}", f"{result.mpki:.3f}", f"{reduction(baseline, result):+.1f}%"])
    return format_table(
        ["context depth", "MPKI", "reduction vs 64K TSL"],
        rows,
        title=f"LLBP context-depth sweep on {workload} (the §IV tension)",
    )


def sweep_store_capacity(runner: Runner, workload: str) -> str:
    baseline = runner.run_one(workload, "tsl_64k")
    rows = []
    for contexts in (2048, 4096, 8192, 14336, 28672, 57344):
        result = runner.run_one(workload, "llbpx_0lat", num_contexts=contexts)
        rows.append(
            [f"{contexts // 1024}K", f"{result.mpki:.3f}", f"{reduction(baseline, result):+.1f}%"]
        )
    return format_table(
        ["pattern store contexts", "MPKI", "reduction vs 64K TSL"],
        rows,
        title=f"LLBP-X pattern-store capacity sweep on {workload} (Fig 16a)",
    )


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "whiskey"
    runner = Runner(RunnerConfig(num_branches=80_000))
    print(sweep_context_depth(runner, workload))
    print()
    print(sweep_store_capacity(runner, workload))


if __name__ == "__main__":
    main()
