#!/usr/bin/env python3
"""Quickstart: compare TAGE-SC-L, LLBP, and LLBP-X on one server workload.

Run with::

    python examples/quickstart.py [workload] [branches]

The default simulates 60K branches of the NodeApp-like workload -- about
half a minute -- and prints the misprediction comparison that Fig 12 of
the paper reports per workload.
"""

import sys

from repro import Runner, RunnerConfig, reduction


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "nodeapp"
    branches = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000

    runner = Runner(RunnerConfig(num_branches=branches))
    print(f"Simulating {workload!r} ({branches} branches, capacity scale "
          f"{runner.config.scale}; see DESIGN.md for the scaled universe)...\n")

    baseline = runner.run_one(workload, "tsl_64k")
    print(baseline.summary())

    for config in ("llbp", "llbpx", "tsl_512k"):
        result = runner.run_one(workload, config)
        print(f"{result.summary()}  ({reduction(baseline, result):+5.1f}% vs 64K TSL)")

    llbpx = runner.run_one(workload, "llbpx")
    print("\nLLBP-X internals:")
    for key in ("llbp_provides", "llbp_useful", "prefetches_issued", "pattern_allocations"):
        print(f"  {key:>22s}: {llbpx.stats.get(key, 0)}")
    for key, value in sorted(llbpx.extra.items()):
        print(f"  {key:>22s}: {value:.0f}")


if __name__ == "__main__":
    main()
