#!/usr/bin/env python3
"""LLBP-X over a smaller first-level TAGE (paper §VII-G / §V-D.2).

The paper argues LLBP-X can compensate a reduced first-level TAGE --
trading accuracy for lower prediction latency and energy.  This example
sweeps baseline TSL sizes with and without LLBP-X, and evaluates the
overriding-pipeline timing model for each, reproducing the argument that
a smaller TSL + LLBP-X can be the better *system* even when its raw MPKI
is slightly worse.

Run with::

    python examples/small_tage_study.py [workload]
"""

import sys

from repro.core import Runner, RunnerConfig, simulate
from repro.experiments import format_table
from repro.llbp import LLBPX, llbpx_default
from repro.tage import preset_by_name
from repro.timing import evaluate_timing, table_ii_machine

PRESETS = ("tsl_8k", "tsl_16k", "tsl_32k", "tsl_64k")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "tpcc"
    runner = Runner(RunnerConfig(num_branches=80_000))
    machine = table_ii_machine()
    bundle = runner.bundle(workload)

    rows = []
    for preset in PRESETS:
        tage_config = preset_by_name(preset, scale=runner.config.scale)
        plain = runner.run_one(workload, preset)
        predictor = LLBPX(
            llbpx_default(scale=runner.config.scale),
            tage_config,
            bundle.tensors,
            bundle.contexts,
        )
        combined = simulate(predictor, bundle.trace, bundle.tensors)
        cpi_plain = evaluate_timing(plain, machine, model_overriding=True).cpi
        cpi_combo = evaluate_timing(combined, machine, model_overriding=True).cpi
        rows.append(
            [
                preset,
                f"{plain.mpki:.3f}",
                f"{combined.mpki:.3f}",
                f"{cpi_plain:.3f}",
                f"{cpi_combo:.3f}",
            ]
        )
    print(
        format_table(
            ["baseline TSL", "MPKI alone", "MPKI +LLBP-X", "CPI alone", "CPI +LLBP-X"],
            rows,
            title=f"LLBP-X over smaller first-level TAGEs ({workload}, overriding model)",
        )
    )
    print("\nThe paper's point: LLBP-X recovers most of the accuracy a small")
    print("TSL loses, so the latency/energy win of the small predictor can")
    print("yield better overall performance (§VII-G).")


if __name__ == "__main__":
    main()
