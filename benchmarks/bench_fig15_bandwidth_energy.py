"""Fig 15: transfer bandwidth and energy, LLBP-X vs LLBP."""

from conftest import run_once

from repro.experiments import format_fig15, run_fig15


def test_fig15_bandwidth_energy(benchmark, runner, report_sink):
    result = run_once(benchmark, lambda: run_fig15(runner))
    report_sink("fig15_bandwidth_energy", format_fig15(result))
    mean_bpi = {
        c: sum(r.bits_per_instruction for r in reports) / len(reports)
        for c, reports in result.bandwidth.items()
    }
    # reads dominate writes (paper: ~5x) and both designs move data
    for reports in result.bandwidth.values():
        assert sum(r.reads for r in reports) > sum(r.writes for r in reports)
    assert mean_bpi["llbp"] > 0 and mean_bpi["llbpx"] > 0
