"""Fig 13: speedup over 64K TSL on the analytical pipeline model."""

from conftest import run_once

from repro.experiments import format_fig13, run_fig13


def test_fig13_speedup(benchmark, runner, report_sink):
    rows = run_once(benchmark, lambda: run_fig13(runner))
    report_sink("fig13_speedup", format_fig13(rows))
    n = len(rows)
    avg = {c: sum(r.speedups[c] for r in rows) / n for c in rows[0].speedups}
    assert avg["llbpx"] > 0
    assert avg["tsl_512k"] >= avg["llbpx"]  # the ideal bounds the real design
