"""Fig 16: pattern-store and baseline-TAGE capacity sensitivity."""

from conftest import run_once

from repro.experiments import format_fig16, run_fig16a, run_fig16b


def test_fig16_capacity_sensitivity(benchmark, runner, report_sink):
    def run_both():
        return run_fig16a(runner), run_fig16b(runner)

    points_a, points_b = run_once(benchmark, run_both)
    report_sink("fig16_capacity", format_fig16(points_a, points_b))
    # (a) bigger pattern stores never hurt much
    assert points_a[-1].reduction_percent >= points_a[0].reduction_percent - 1.0
    # (b) LLBP-X helps every baseline TSL size
    assert all(p.reduction_percent > 0 for p in points_b)
