"""Table II: simulated processor parameters (configuration listing)."""

from conftest import run_once

from repro.experiments import format_table2
from repro.metrics import llbp_budget, overhead_percent, tsl_budget
from repro.llbp import llbp_default, llbpx_default
from repro.tage import tsl_64k


def test_table2_machine_parameters(benchmark, report_sink):
    text = run_once(benchmark, format_table2)
    base = llbp_budget(llbp_default(), tsl_64k())
    extended = llbp_budget(llbpx_default(), tsl_64k())
    budget_note = (
        f"storage budgets: 64K TSL {tsl_budget(tsl_64k()).total_kib:.0f} KiB, "
        f"LLBP system {base.total_kib:.0f} KiB, LLBP-X system {extended.total_kib:.0f} KiB "
        f"(+{overhead_percent(base, extended):.1f}%, paper +1.8%)"
    )
    report_sink("table2_machine", text + "\n" + budget_note)
    assert "TAGE-SC-L" in text
