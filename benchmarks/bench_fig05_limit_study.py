"""Fig 5: the limit-study ladder over 0-latency LLBP."""

from conftest import run_once

from repro.experiments import format_fig05, run_fig05


def test_fig05_limit_study(benchmark, runner, report_sink):
    steps = run_once(benchmark, lambda: run_fig05(runner))
    report_sink("fig05_limit_study", format_fig05(steps))
    assert steps[0].normalized == 1.0
    # removing every constraint must help overall
    assert steps[-1].mpki < steps[0].mpki
