"""Fig 8: pattern duplication vs history length and context depth W."""

from conftest import run_once

from repro.experiments import format_fig08, run_fig08


def test_fig08_duplication(benchmark, runner, report_sink):
    duplication = run_once(benchmark, lambda: run_fig08(runner))
    report_sink("fig08_duplication", format_fig08(duplication))
    for depth, by_length in duplication.items():
        lengths = sorted(by_length)
        if len(lengths) >= 4:
            short = sum(by_length[l] for l in lengths[:2]) / 2
            long = sum(by_length[l] for l in lengths[-2:]) / 2
            # duplication falls with history length (the paper's main trend)
            assert short >= long, f"W={depth}: {short} < {long}"
