"""Fig 12: the headline comparison -- LLBP-X vs LLBP vs Opt-W vs 512K TSL."""

from conftest import run_once

from repro.experiments import format_fig12, run_fig12


def test_fig12_mpki_reduction(benchmark, runner, report_sink):
    rows = run_once(benchmark, lambda: run_fig12(runner))
    report_sink("fig12_mpki_reduction", format_fig12(rows))
    n = len(rows)
    avg = {c: sum(r.reductions[c] for r in rows) / n for c in rows[0].reductions}
    # the paper's ordering: LLBP-X improves on LLBP on average, Opt-W is
    # at least comparable, and the ideal 512K TSL bounds everything
    assert avg["llbpx"] > avg["llbp"] - 0.3
    assert avg["llbpx_optw"] >= avg["llbpx"] - 0.5
    assert avg["tsl_512k"] > avg["llbpx"]
