"""Fig 9: useful predictions per history length for W in {2, 64} vs W=8."""

from conftest import run_once

from repro.experiments import format_fig09, run_fig09


def test_fig09_depth_sweep(benchmark, runner, report_sink):
    ratios = run_once(benchmark, lambda: run_fig09(runner))
    report_sink("fig09_depth_sweep", format_fig09(ratios))
    lengths = sorted(ratios[64])
    if len(lengths) >= 4:
        # the deep depth's penalty shrinks (or reverses) at longer history
        short = sum(ratios[64][l] for l in lengths[:2]) / 2
        long = sum(ratios[64][l] for l in lengths[-3:]) / 3
        assert long >= short * 0.8
