"""Fig 14: prefetch effectiveness, false-path effects, overriding scheme."""

from conftest import run_once

from repro.experiments import (
    format_fig14a,
    format_fig14b,
    run_fig14a,
    run_fig14b,
)


def test_fig14a_prefetch_effectiveness(benchmark, runner, report_sink):
    results = run_once(benchmark, lambda: run_fig14a(runner))
    report_sink("fig14a_prefetch", format_fig14a(results))
    total_timely = sum(r.with_false_path.timely for r in results)
    total = sum(r.with_false_path.total for r in results)
    assert total > 0 and total_timely / total > 0.5  # paper: 84% timely


def test_fig14b_overriding_scheme(benchmark, runner, report_sink):
    rows = run_once(benchmark, lambda: run_fig14b(runner))
    report_sink("fig14b_overriding", format_fig14b(rows))
    n = len(rows)
    avg = {c: sum(r.speedups[c] for r in rows) / n for c in rows[0].speedups}
    # paper: under overriding, LLBP-X beats doubling the TSL
    assert avg["llbpx"] > avg["tsl_128k"] - 0.2
