"""Sec VII-F: H_th and CTT-capacity sensitivity sweeps."""

from conftest import run_once

from repro.experiments import format_sensitivity, run_ctt_sweep, run_hth_sweep


def test_sec7f_sensitivity(benchmark, runner, report_sink):
    def run_both():
        return run_hth_sweep(runner), run_ctt_sweep(runner)

    hth, ctt = run_once(benchmark, run_both)
    report_sink("sec7f_sensitivity", format_sensitivity(hth, ctt))
    # most benchmarks show minimal sensitivity around the optimum (paper)
    spread = max(p.reduction_percent for p in hth) - min(p.reduction_percent for p in hth)
    assert spread < 15
