"""Throughput benchmark: simulation rate and matrix wall-clock vs ``--jobs``.

Measures the experiment execution layer itself (not a paper figure):

* branches simulated per second and end-to-end matrix wall-clock for a
  (workloads x configs) matrix at each ``--jobs`` level,
* the persistent result cache: cold-run vs warm-run wall-clock, with the
  warm run asserted to perform zero simulations, and
* the persistent trace-artifact store: artifact-cold vs warm-artifact
  wall-clock with a *cold result cache* (every cell still simulates; only
  bundle construction is skipped), with the warm run asserted to perform
  zero trace generations.  Each run reports its phase breakdown -- bundle
  build vs artifact load vs simulate seconds, and
* the execution backends: the full matrix and a Fig-16-style capacity
  sweep timed on the ``reference`` backend vs the config-batched one,
  results asserted bit-identical before the timings count,
* persistent base streams: cold-base vs warm-base batched passes over
  one artifact store with a cold result cache (every cell simulates;
  the warm pass records zero streams and replays tail-only), on both
  capacity-sweep shapes -- one shared base and distinct-base
  singletons, and
* distributed execution: 1-host vs 2-host cooperative drains of one
  cold shared store (ledger claims; zero duplicate simulations and
  bit-identity asserted), plus the learned cost model's held-out MAPE
  vs the static heuristic on the timing corpus the run persisted.

Results go to ``BENCH_throughput.json`` (repo root by default), seeding
the repo's performance trajectory -- future perf PRs re-run this and
compare.  Parallel speedup is bounded by physical cores (recorded as
``cpu_count`` in the payload); the cache speedup is hardware-independent.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --branches 60000 --jobs 1,2,4,8 --workloads kafka,nodeapp,tomcat,wikipedia
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import multiprocessing

from repro import obs
from repro.core import (
    ArtifactStore,
    CoopScheduler,
    HostLedger,
    ResultCache,
    Runner,
    RunnerConfig,
    TimingStore,
    evaluate_cost_model,
)
from repro.core.batched import base_config as base_config_of
from repro.core.results_io import TIMINGS_FILENAME
from repro.traces.workloads import clear_trace_cache

DEFAULT_WORKLOADS = "kafka,nodeapp,tomcat,wikipedia"
DEFAULT_CONFIGS = "tsl_64k,llbp,llbpx"


def _store_health_gauges(prefix, stats, hits, attempts):
    """Mirror a store's health counters (plus a derived hit rate) into
    gauges, so the benchmark's metrics.json carries them."""
    reg = obs.registry()
    for key, value in stats.items():
        reg.gauge("%s.%s" % (prefix, key)).set(float(value))
    reg.gauge("%s.hit_rate" % prefix).set(hits / attempts if attempts else 0.0)


def _timed_matrix(config, workloads, configs, jobs, cache=None, artifacts=None):
    """One cold matrix run; returns (seconds, runner, result table)."""
    clear_trace_cache()  # charge trace generation to every run equally
    runner = Runner(config, cache=cache, artifacts=artifacts)
    start = time.perf_counter()
    table = runner.run_matrix(workloads, configs, jobs=jobs)
    return time.perf_counter() - start, runner, table


def _phases(runner):
    """Parent-process phase breakdown of one run (jobs=1 runs only --
    parallel runs spend these phases inside workers)."""
    return {
        "bundle_build_seconds": round(runner.bundle_build_seconds, 3),
        "artifact_load_seconds": round(runner.artifact_load_seconds, 3),
        "sim_seconds": round(runner.sim_seconds, 3),
    }


def bench_jobs_sweep(config, workloads, configs, jobs_levels):
    branches_total = config.num_branches * len(workloads) * len(configs)
    runs = []
    serial_seconds = None
    mpki = None
    for jobs in jobs_levels:
        seconds, runner, table = _timed_matrix(config, workloads, configs, jobs)
        if serial_seconds is None:
            serial_seconds = seconds
            # deterministic result identity for the ledger's digest alarm
            mpki = {f"{w}/{c}": table[w][c].mpki for w in workloads for c in configs}
        row = {
            "jobs": jobs,
            "seconds": round(seconds, 3),
            "branches_per_second": round(branches_total / seconds),
            "speedup_vs_jobs1": round(serial_seconds / seconds, 3),
        }
        if jobs == 1:
            row["phases"] = _phases(runner)
        runs.append(row)
        print(
            f"jobs={jobs}: {seconds:7.2f}s  "
            f"{branches_total / seconds / 1e3:8.1f} kbranch/s  "
            f"speedup x{serial_seconds / seconds:.2f}"
        )
    return runs, mpki


def bench_cache(config, workloads, configs):
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold_seconds, cold_runner, _ = _timed_matrix(
            config, workloads, configs, jobs=1, cache=ResultCache(cache_dir)
        )
        warm_seconds, warm_runner, _ = _timed_matrix(
            config, workloads, configs, jobs=1, cache=ResultCache(cache_dir)
        )
        assert warm_runner.sim_count == 0, "warm cache must perform zero simulations"
        cache_stats = {
            key: cold + warm
            for (key, cold), warm in zip(
                cold_runner.cache.stats().items(), warm_runner.cache.stats().values()
            )
        }
        _store_health_gauges(
            "bench.result_cache",
            cache_stats,
            hits=cache_stats["hits"],
            attempts=cache_stats["hits"] + cache_stats["misses"],
        )
        print(
            f"cache: cold {cold_seconds:.2f}s -> warm {warm_seconds:.3f}s "
            f"(x{cold_seconds / warm_seconds:.0f}, {warm_runner.cache.hits} hits, "
            f"0 simulations)"
        )
        return {
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "speedup": round(cold_seconds / warm_seconds, 1),
            "cold_simulations": cold_runner.sim_count,
            "warm_simulations": warm_runner.sim_count,
            "warm_cache_hits": warm_runner.cache.hits,
        }


def bench_artifacts(config, workloads, configs):
    """Artifact-cold vs warm-artifact matrix, both with a cold result cache.

    Every cell simulates in both runs; the warm run resolves all bundles
    from the store (zero trace generations, counter-asserted) so the delta
    is the bundle-construction work the store amortises away.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-artifacts-") as artifact_dir:
        cold_seconds, cold_runner, _ = _timed_matrix(
            config, workloads, configs, jobs=1, artifacts=ArtifactStore(artifact_dir)
        )
        warm_seconds, warm_runner, _ = _timed_matrix(
            config, workloads, configs, jobs=1, artifacts=ArtifactStore(artifact_dir)
        )
        assert warm_runner.bundle_builds == 0, "warm store must perform zero bundle builds"
        assert warm_runner.bundle_loads == len(workloads)
        store_stats = {
            key: cold + warm
            for (key, cold), warm in zip(
                cold_runner.artifacts.stats().items(), warm_runner.artifacts.stats().values()
            )
        }
        _store_health_gauges(
            "bench.artifact_store",
            store_stats,
            hits=store_stats["bundle_loads"],
            attempts=store_stats["bundle_loads"] + store_stats["bundle_writes"],
        )
        improvement = 100.0 * (1.0 - warm_seconds / cold_seconds)
        print(
            f"artifacts: cold {cold_seconds:.2f}s -> warm {warm_seconds:.2f}s "
            f"({improvement:+.1f}% wall-clock, 0 bundle builds, "
            f"{warm_runner.bundle_loads} mmap loads)"
        )
        return {
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "improvement_percent": round(improvement, 1),
            "cold_phases": _phases(cold_runner),
            "warm_phases": _phases(warm_runner),
            "cold_bundle_builds": cold_runner.bundle_builds,
            "warm_bundle_builds": warm_runner.bundle_builds,
            "warm_bundle_loads": warm_runner.bundle_loads,
        }


def _timed_backend_run(config, backend, run):
    """One cold, serial run on ``backend``; returns (seconds, results)."""
    clear_trace_cache()
    runner = Runner(config, backend=backend)
    start = time.perf_counter()
    results = run(runner)
    return time.perf_counter() - start, results


def bench_backends(config, workloads, configs):
    """Reference vs config-batched execution, bit-identity asserted.

    Two shapes: the benchmark matrix itself (each workload's config
    column becomes one shared-base group), and the Fig-16-style capacity
    sweep -- ``tsl_64k`` plus six ``llbpx_0lat`` lanes over one bundle --
    that the batched backend was built for.
    """
    section = {}
    sweep_cells = [(workloads[0], "tsl_64k", {})] + [
        (workloads[0], "llbpx_0lat", {"num_contexts": contexts, "store_assoc": 64})
        for contexts in (1024, 2048, 4096, 8192, 14336, 32768)
    ]
    shapes = (
        ("matrix", lambda runner: runner.run_matrix(workloads, configs, jobs=1)),
        ("capacity_sweep", lambda runner: runner.run_cells(sweep_cells)),
    )
    for shape, run in shapes:
        seconds = {}
        results = {}
        for backend in ("reference", "batched"):
            seconds[backend], results[backend] = _timed_backend_run(config, backend, run)
        assert results["reference"] == results["batched"], (
            f"{shape}: batched backend diverged from reference"
        )
        speedup = seconds["reference"] / seconds["batched"]
        lanes = len(sweep_cells) if shape == "capacity_sweep" else len(configs)
        section[shape] = {
            "lanes_per_group": lanes,
            "reference_seconds": round(seconds["reference"], 3),
            "batched_seconds": round(seconds["batched"], 3),
            "speedup": round(speedup, 3),
        }
        print(
            f"backends/{shape}: reference {seconds['reference']:.2f}s -> "
            f"batched {seconds['batched']:.2f}s (x{speedup:.2f}, bit-identical)"
        )
    return section


def bench_base_streams(config, workloads, configs):
    """Cold-base vs warm-base batched execution, bit-identity asserted.

    Both sweep shapes from ``bench_hotpath.py``: seven lanes sharing one
    base (``llbpx`` flavor -- the recording amortises over the group, so
    warm mostly saves the one record pass) and seven distinct-base TSL
    presets (``tsl`` flavor -- cold demotes every singleton to
    reference, warm replays each tail-only; this is the shape the
    persistent store exists for).  The result cache is cold in every
    pass: the delta is pure base-stream work.
    """
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_hotpath import TSL_SWEEP_PRESETS

    section = {}
    shared_cells = [(workloads[0], "tsl_64k", {})] + [
        (workloads[0], "llbpx_0lat", {"num_contexts": contexts, "store_assoc": 64})
        for contexts in (1024, 2048, 4096, 8192, 14336, 32768)
    ]
    distinct_cells = [(workloads[0], name, {}) for name in TSL_SWEEP_PRESETS]
    for shape, cells in (("shared_base", shared_cells), ("distinct_bases", distinct_cells)):
        bases = []
        for _, name, _ in cells:
            base = base_config_of(name, config.scale)
            if base is not None and base not in bases:
                bases.append(base)
        seconds = {}
        results = {}
        with tempfile.TemporaryDirectory(prefix="repro-bench-base-") as artifact_dir:
            for mode in ("cold", "warm"):
                clear_trace_cache()
                store = ArtifactStore(artifact_dir)
                runner = Runner(config, backend="batched", artifacts=store)
                runner.bundle(workloads[0])  # untimed, same for both modes
                start = time.perf_counter()
                results[mode] = runner.run_cells(cells, release_bundles=False)
                seconds[mode] = time.perf_counter() - start
                if mode == "cold":
                    # untimed top-up for lanes that fell back to reference
                    store.warm_bases([workloads[0]], config, bases)
                else:
                    assert store.base_writes == 0, "warm pass re-recorded a stream"
                    assert store.base_loads >= 1, "warm pass loaded nothing"
        assert results["cold"] == results["warm"], (
            f"{shape}: warm-base replay diverged from cold-base execution"
        )
        speedup = seconds["cold"] / seconds["warm"]
        section[shape] = {
            "lanes": len(cells),
            "cold_seconds": round(seconds["cold"], 3),
            "warm_seconds": round(seconds["warm"], 3),
            "warm_speedup": round(speedup, 3),
        }
        print(
            f"base_streams/{shape}: cold {seconds['cold']:.2f}s -> "
            f"warm {seconds['warm']:.2f}s (x{speedup:.2f}, bit-identical)"
        )
    return section


def _coop_bench_host(config, cache_dir, host_id, workloads, configs, queue):
    """One cooperating host process: join the shared store, drain, report."""
    clear_trace_cache()
    runner = Runner(config, cache=ResultCache(cache_dir))
    runner.coop = CoopScheduler(
        HostLedger(Path(cache_dir) / ".hosts", host_id=host_id), claim_batch=1
    )
    start = time.perf_counter()
    matrix = runner.run_matrix(workloads, configs)
    queue.put(
        {
            "host": host_id,
            "seconds": round(time.perf_counter() - start, 3),
            "simulations": runner.sim_count,
            "claims": runner.report.claims,
            "peer_results": runner.report.peer_results,
            "mpki": {f"{w}/{c}": matrix[w][c].mpki for w in workloads for c in configs},
        }
    )


def bench_distributed(config, workloads, configs):
    """1-host vs 2-host cooperative drains of one cold shared store.

    Each host count gets a fresh store; N processes join it with
    ``CoopScheduler`` and drain the matrix via ledger claims.  Asserted
    before any timing counts: zero duplicate simulations, and results
    bit-identical across host counts.  Afterwards the surviving
    ``TimingStore`` sample corpus scores the learned cost model against
    the static heuristic (held-out MAPE) -- the quality the scheduler's
    longest-predicted-first ordering actually runs on.
    """
    section = {"runs": []}
    total_cells = len(workloads) * len(configs)
    reference_mpki = None
    ctx = multiprocessing.get_context("fork")
    for hosts in (1, 2):
        with tempfile.TemporaryDirectory(prefix="repro-bench-coop-") as cache_dir:
            queue = ctx.Queue()
            procs = [
                ctx.Process(
                    target=_coop_bench_host,
                    args=(config, cache_dir, f"host{i}", workloads, configs, queue),
                )
                for i in range(hosts)
            ]
            start = time.perf_counter()
            for proc in procs:
                proc.start()
            outcomes = [queue.get() for _ in procs]
            for proc in procs:
                proc.join()
            wall = time.perf_counter() - start
            total_sims = sum(o["simulations"] for o in outcomes)
            assert total_sims == total_cells, (
                f"{hosts}-host run duplicated simulations: {total_sims} != {total_cells}"
            )
            tables = [o["mpki"] for o in outcomes]
            assert all(t == tables[0] for t in tables), "hosts disagree on results"
            if reference_mpki is None:
                reference_mpki = tables[0]
            assert tables[0] == reference_mpki, "host count changed results"
            section["runs"].append(
                {
                    "hosts": hosts,
                    "wall_seconds": round(wall, 3),
                    "total_simulations": total_sims,
                    "duplicate_simulations": total_sims - total_cells,
                    "per_host": [
                        {k: o[k] for k in ("host", "seconds", "simulations", "claims", "peer_results")}
                        for o in sorted(outcomes, key=lambda o: o["host"])
                    ],
                }
            )
            print(
                f"distributed/{hosts}-host: {wall:7.2f}s  "
                f"{total_sims} sims ({total_sims - total_cells} duplicated), "
                f"claims {[o['claims'] for o in outcomes]}, bit-identical"
            )
            if hosts == 2:
                # score the cost model on the corpus this run persisted
                stats = evaluate_cost_model(TimingStore(Path(cache_dir) / TIMINGS_FILENAME))
                section["cost_model"] = stats
                if stats is not None:
                    print(
                        f"cost model: learned MAPE {stats['learned_mape_percent']}% vs "
                        f"heuristic {stats['heuristic_mape_percent']}% on "
                        f"{stats['samples']} held-out samples "
                        f"({stats['improvement_percent']:+.1f} pts)"
                    )
    baseline = section["runs"][0]["wall_seconds"]
    for row in section["runs"]:
        row["speedup_vs_1host"] = round(baseline / row["wall_seconds"], 3)
    return section


def append_ledger_record(directory, args, workloads, configs, matrix_runs, mpki, wall_seconds):
    """Append this benchmark run to a run-history ledger (``--ledger``).

    Bench records carry no embedded run report, which the regression
    watchdog treats as a pure throughput measurement; the result digest
    covers only the deterministic serial-run MPKI table, so a digest
    flip really means the simulator's results changed.
    """
    from repro.obs.ledger import RunLedger, matrix_digest, result_digest
    from repro.obs.regress import check_and_update

    identity = [
        "bench-throughput|%s|%s|%d|%d" % (workload, name, args.branches, args.scale)
        for workload in workloads
        for name in configs
    ]
    record = {
        "source": "bench",
        "context": {"benchmark": "throughput", "jobs": args.jobs},
        "workloads": workloads,
        "configs": configs,
        "backend": "bench-throughput",
        "branches": args.branches * len(workloads) * len(configs),
        "scale": args.scale,
        "matrix_digest": matrix_digest(identity),
        "result_digest": result_digest([mpki or {}]),
        "cells": len(identity),
        "cache_hit_rate": 0.0,
        "retries": 0,
        "wall_seconds": round(wall_seconds, 3),
        "cpu_seconds": round(time.process_time(), 3),
        "branches_per_sec": float(matrix_runs[0]["branches_per_second"]),
    }
    ledger = RunLedger(directory)
    ledger.prepare(record)
    flags = check_and_update(ledger.directory, record)
    ledger.append(record)
    for flag in flags:
        print(
            "regression [%s/%s]: %s"
            % (flag.get("severity"), flag.get("kind"), flag.get("detail")),
            file=sys.stderr,
        )
    print(f"ledger record appended to {directory}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workloads", default=DEFAULT_WORKLOADS, help="comma-separated")
    parser.add_argument("--configs", default=DEFAULT_CONFIGS, help="comma-separated")
    parser.add_argument("--branches", type=int, default=60_000, help="trace length per workload")
    parser.add_argument("--scale", type=int, default=8, help="capacity scale")
    parser.add_argument("--jobs", default="1,2,4,8", help="comma-separated jobs levels")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_throughput.json"),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="metrics.json with store-health gauges (default: metrics.json beside --output)",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="DIR",
        help="append this run to the run-history ledger at DIR (same store "
        "`repro history` reads; the regression watchdog checks it against "
        "the rolling bench baseline)",
    )
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    jobs_levels = [int(j) for j in args.jobs.split(",") if j.strip()]
    config = RunnerConfig(scale=args.scale, num_branches=args.branches)

    print(
        f"matrix: {len(workloads)} workloads x {len(configs)} configs, "
        f"{args.branches} branches each, cpu_count={os.cpu_count()}"
    )
    bench_start = time.perf_counter()
    matrix_runs, serial_mpki = bench_jobs_sweep(config, workloads, configs, jobs_levels)
    cache_stats = bench_cache(config, workloads, configs)
    artifact_stats = bench_artifacts(config, workloads, configs)
    backend_stats = bench_backends(config, workloads, configs)
    base_stream_stats = bench_base_streams(config, workloads, configs)
    distributed_stats = bench_distributed(config, workloads, configs)

    payload = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "benchmark": {
            "workloads": workloads,
            "configs": configs,
            "branches_per_workload": args.branches,
            "scale": args.scale,
            "total_branches": args.branches * len(workloads) * len(configs),
        },
        "matrix": matrix_runs,
        "cache": cache_stats,
        "artifacts": artifact_stats,
        "backends": backend_stats,
        "base_streams": base_stream_stats,
        "distributed": distributed_stats,
        "notes": (
            "speedup_vs_jobs1 is bounded by machine.cpu_count; on a >=4-core "
            "machine jobs=4 approaches 4x on this embarrassingly parallel "
            "matrix. cache.speedup is hardware-independent: a warm cache "
            "performs zero simulations. artifacts compares artifact-cold vs "
            "warm-artifact wall-clock with a cold result cache (every cell "
            "simulates; the warm run performs zero trace generations -- "
            "bundles mmap from the store). phases split wall-clock into "
            "bundle build / artifact load / simulate (jobs=1 runs only; "
            "parallel runs spend these inside workers). matrix runs use the "
            "default auto backend (shared-base groups per workload column); "
            "backends compares reference vs config-batched serial execution "
            "on the matrix and on a 7-lane Fig-16 capacity sweep, with "
            "results asserted bit-identical. batched gains scale with lane "
            "count and base-config share of lane cost, not with core count. "
            "base_streams compares cold-base vs warm-base batched passes "
            "over one artifact store with a cold result cache (every cell "
            "simulates; the warm pass records zero streams). shared_base is "
            "the 7-lane one-base sweep, where warm only saves the single "
            "record pass; distinct_bases is seven TSL presets, each its own "
            "base, where cold demotes every singleton to reference and warm "
            "replays each tail-only -- the persistent store's target shape. "
            "distributed compares 1 vs 2 cooperating host processes draining "
            "one cold shared store via ledger claims (zero duplicate "
            "simulations and bit-identity asserted); on a single-core "
            "machine 2 hosts time-slice one CPU, so the 2-host wall-clock "
            "shows protocol overhead, not scaling -- run on separate cores/"
            "machines for real speedup. distributed.cost_model scores the "
            "learned regressor vs the length-x-weight heuristic by "
            "leave-one-out MAPE on the timing samples the run persisted."
        ),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    # Store-health gauges (hit/miss/quarantine rates) in standard merged
    # metrics shape, alongside the throughput payload.
    metrics_path = Path(
        args.metrics_out
        if args.metrics_out is not None
        else Path(args.output).with_name("metrics.json")
    )
    metrics = obs.merge_snapshots([obs.registry().snapshot()])
    metrics_path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"wrote {metrics_path}")

    if args.ledger:
        append_ledger_record(
            args.ledger,
            args,
            workloads,
            configs,
            matrix_runs,
            serial_mpki,
            time.perf_counter() - bench_start,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
