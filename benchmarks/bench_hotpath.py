"""Hot-path benchmark: fused ``step`` kernel vs the two-call loop.

Measures the per-branch simulation loop in isolation (single process, one
predictor instance per timing run) rather than the experiment layer that
``bench_throughput.py`` covers.  For each configuration it times
``simulate(..., use_step=False)`` (the ``predict``/``update`` path) and
``simulate(..., use_step=True)`` (the fused kernel), asserts the two
produce identical misprediction counts, and reports branches/second plus
the fused/unfused speedup.

``--floor N`` turns the benchmark into a regression gate: the run exits
non-zero if any configuration's *fused* rate drops below N branches/sec.
CI uses this on a short trace with a deliberately conservative floor, so
only order-of-magnitude regressions (an accidentally de-specialised
kernel, a resurrected per-branch allocation) trip it on shared runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --workload nodeapp --branches 40000 --configs tsl_64k,llbp,llbpx \
        --floor 25000 --json BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import Runner, RunnerConfig
from repro.core.simulator import simulate

DEFAULT_CONFIGS = "tsl_64k,llbp,llbpx"


def bench_config(runner: Runner, workload: str, name: str) -> dict:
    """Time both loop kernels for one configuration; assert equivalence.

    Each timing run gets a freshly constructed predictor (the loop trains
    state in place), but the trace tensors -- the expensive precomputation
    -- are shared through the runner's workload bundle.
    """
    bundle = runner.bundle(workload)
    branches = len(bundle.trace)
    rates = {}
    mispredictions = {}
    for use_step, key in ((False, "unfused"), (True, "fused")):
        predictor = runner.build_predictor(name, bundle)
        start = time.perf_counter()
        result = simulate(predictor, bundle.trace, bundle.tensors, use_step=use_step)
        seconds = time.perf_counter() - start
        rates[key] = branches / seconds
        mispredictions[key] = result.mispredictions + result.warmup_mispredictions
    assert mispredictions["fused"] == mispredictions["unfused"], (
        f"{name}: fused kernel diverged "
        f"({mispredictions['fused']} vs {mispredictions['unfused']} mispredictions)"
    )
    return {
        "config": name,
        "branches": branches,
        "unfused_branches_per_second": round(rates["unfused"]),
        "fused_branches_per_second": round(rates["fused"]),
        "speedup": round(rates["fused"] / rates["unfused"], 3),
        "mispredictions": mispredictions["fused"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workload", default="nodeapp", help="workload profile to simulate")
    parser.add_argument("--configs", default=DEFAULT_CONFIGS, help="comma-separated")
    parser.add_argument("--branches", type=int, default=100_000, help="trace length")
    parser.add_argument("--scale", type=int, default=8, help="capacity scale")
    parser.add_argument(
        "--floor", type=int, default=None, metavar="BR_PER_SEC",
        help="fail (exit 1) if any config's fused rate is below this",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write results as JSON")
    args = parser.parse_args(argv)

    configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    runner = Runner(RunnerConfig(scale=args.scale, num_branches=args.branches))

    print(
        f"hot path: {args.workload}, {args.branches} branches, "
        f"configs {', '.join(configs)}, cpu_count={os.cpu_count()}"
    )
    rows = []
    for name in configs:
        row = bench_config(runner, args.workload, name)
        rows.append(row)
        print(
            f"{name:>10s}: unfused {row['unfused_branches_per_second']:>8d} br/s  "
            f"fused {row['fused_branches_per_second']:>8d} br/s  "
            f"x{row['speedup']:.2f}  ({row['mispredictions']} mispredictions, identical)"
        )

    payload = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "benchmark": {
            "workload": args.workload,
            "branches": args.branches,
            "scale": args.scale,
            "configs": configs,
        },
        "results": rows,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.floor is not None:
        slow = [r for r in rows if r["fused_branches_per_second"] < args.floor]
        if slow:
            for row in slow:
                print(
                    f"FAIL: {row['config']} fused rate "
                    f"{row['fused_branches_per_second']} br/s below floor {args.floor}",
                    file=sys.stderr,
                )
            return 1
        print(f"floor check passed (all configs >= {args.floor} br/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
