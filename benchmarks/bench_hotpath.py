"""Hot-path benchmark: fused ``step`` kernel vs the two-call loop.

Measures the per-branch simulation loop in isolation (single process, one
predictor instance per timing run) rather than the experiment layer that
``bench_throughput.py`` covers.  For each configuration it times
``simulate(..., use_step=False)`` (the ``predict``/``update`` path) and
``simulate(..., use_step=True)`` (the fused kernel), asserts the two
produce identical misprediction counts, and reports branches/second plus
the fused/unfused speedup.

``--floor N`` turns the benchmark into a regression gate: the run exits
non-zero if any configuration's *fused* rate drops below N branches/sec.
CI uses this on a short trace with a deliberately conservative floor, so
only order-of-magnitude regressions (an accidentally de-specialised
kernel, a resurrected per-branch allocation) trip it on shared runners.

``--backend`` adds an execution-backend axis on top of the kernel one:
``reference`` and ``batched`` time the whole config column as one
``run_cells`` call on that backend; ``compare`` times both, asserts the
results are bit-identical, and reports the batched speedup (gated by
``--batched-floor``).  ``--capacity-sweep N`` swaps the column for the
Fig-16-style group batching was built for: by default (``--sweep-flavor
llbpx``) ``tsl_64k`` plus ``N - 1`` ``llbpx_0lat`` capacity lanes
sharing one base; ``--sweep-flavor tsl`` uses the Fig-16b TSL capacity
presets instead -- ``N`` lanes with ``N`` *distinct* bases, the
singleton-heavy shape persistent base streams exist for.

``--backend base`` times the same column twice on the batched backend
against one artifact store with a cold result cache: a cold-base pass
that records every group's shared-base stream, then a warm-base pass
that adopts the persisted streams and runs tail-only.  Bit-identity
between the passes is asserted before the timings count, and
``--base-floor RATIO`` gates the warm speedup the same way
``--batched-floor`` gates ``compare``.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --workload nodeapp --branches 40000 --configs tsl_64k,llbp,llbpx \
        --floor 25000 --json BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --backend compare --capacity-sweep 5 --branches 40000 \
        --batched-floor 1.05
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --backend base --capacity-sweep 7 --sweep-flavor tsl \
        --branches 40000 --base-floor 1.4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import ArtifactStore, Runner, RunnerConfig
from repro.core.batched import base_config as base_config_of
from repro.core.simulator import BACKEND_BATCHED, BACKEND_REFERENCE, simulate
from repro.experiments.fig16_capacity import FIG16A_CONTEXTS

DEFAULT_CONFIGS = "tsl_64k,llbp,llbpx"

#: ``--sweep-flavor tsl``: the Fig-16b-style baseline-capacity lanes.
#: Every preset is its own base config, so a cold batched plan sees only
#: singletons (demoted to reference) while a warm artifact store turns
#: each into a tail-only replay -- the persistent-stream stress shape.
TSL_SWEEP_PRESETS = (
    "tsl_8k", "tsl_16k", "tsl_32k", "tsl_64k", "tsl_128k", "tsl_256k", "tsl_512k",
)


def bench_config(runner: Runner, workload: str, name: str) -> dict:
    """Time both loop kernels for one configuration; assert equivalence.

    Each timing run gets a freshly constructed predictor (the loop trains
    state in place), but the trace tensors -- the expensive precomputation
    -- are shared through the runner's workload bundle.
    """
    bundle = runner.bundle(workload)
    branches = len(bundle.trace)
    rates = {}
    mispredictions = {}
    for use_step, key in ((False, "unfused"), (True, "fused")):
        predictor = runner.build_predictor(name, bundle)
        start = time.perf_counter()
        result = simulate(predictor, bundle.trace, bundle.tensors, use_step=use_step)
        seconds = time.perf_counter() - start
        rates[key] = branches / seconds
        mispredictions[key] = result.mispredictions + result.warmup_mispredictions
    assert mispredictions["fused"] == mispredictions["unfused"], (
        f"{name}: fused kernel diverged "
        f"({mispredictions['fused']} vs {mispredictions['unfused']} mispredictions)"
    )
    return {
        "config": name,
        "branches": branches,
        "unfused_branches_per_second": round(rates["unfused"]),
        "fused_branches_per_second": round(rates["fused"]),
        "speedup": round(rates["fused"] / rates["unfused"], 3),
        "mispredictions": mispredictions["fused"],
    }


def sweep_cells(workload: str, configs: list, lanes: int, flavor: str = "llbpx") -> list:
    """The cell column a group-backend run times.

    Without ``--capacity-sweep`` it is one lane per ``--configs`` entry;
    with it, either ``tsl_64k`` plus ``lanes - 1`` LLBP-X capacity points
    sharing one base (the shared-base group the batched backend exists
    for), or -- ``flavor="tsl"`` -- ``lanes`` Fig-16b TSL presets with
    ``lanes`` distinct bases.
    """
    if lanes <= 0:
        return [(workload, name, {}) for name in configs]
    if flavor == "tsl":
        return [(workload, name, {}) for name in TSL_SWEEP_PRESETS[:lanes]]
    cells = [(workload, "tsl_64k", {})]
    for contexts in FIG16A_CONTEXTS[: lanes - 1]:
        cells.append((workload, "llbpx_0lat", {"num_contexts": contexts, "store_assoc": 64}))
    return cells


def bench_backend(config: RunnerConfig, workload: str, cells: list, backend: str) -> tuple:
    """Time one ``run_cells`` pass of ``cells`` on ``backend``.

    The workload bundle is built before the clock starts: both backends
    pay the same (untimed) precomputation, so the measurement isolates
    the simulation loops.  Returns ``(seconds, results)``.
    """
    runner = Runner(config, backend=backend)
    runner.bundle(workload)
    start = time.perf_counter()
    results = runner.run_cells(cells, release_bundles=False)
    return time.perf_counter() - start, results


def bench_base_streams(args, configs: list) -> dict:
    """``--backend base``: cold-base vs warm-base batched execution.

    Both passes run the same column on the batched backend with a cold
    result cache against one artifact store.  The cold pass records the
    shared-base streams it needs (singleton lanes have no group to
    amortise a recording and fall back to reference); the warm pass
    adopts every persisted stream and runs tail-only -- including lanes
    that were reference fallbacks when cold, since a warm base admits
    singleton batched groups.  Bit-identity is asserted first.
    """
    cells = sweep_cells(args.workload, configs, args.capacity_sweep, args.sweep_flavor)
    run_config = RunnerConfig(scale=args.scale, num_branches=args.branches)
    lanes = len(cells)
    total_branches = lanes * args.branches
    label = ", ".join(f"{w}/{n}" for w, n, _ in cells)
    print(f"base-stream column: {lanes} lane(s) [{label}]")
    section = {"lanes": lanes, "cells": [[w, n, o] for w, n, o in cells], "modes": {}}
    results_by_mode = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-base-") as artifact_dir:
        # prime the store so both timed passes mmap bundles identically,
        # and record every base stream so the warm pass is fully warm
        # (the cold pass only records streams for multi-lane groups)
        bases = []
        for _, name, _ in cells:
            base = base_config_of(name, run_config.scale)
            if base is not None and base not in bases:
                bases.append(base)
        for mode in ("cold", "warm"):
            store = ArtifactStore(artifact_dir)
            if mode == "cold":
                # streams recorded by a previous pass would warm this one
                for path in Path(artifact_dir).rglob("base_*.npy"):
                    path.unlink()
            runner = Runner(run_config, backend=BACKEND_BATCHED, artifacts=store)
            runner.bundle(args.workload)
            start = time.perf_counter()
            results_by_mode[mode] = runner.run_cells(cells, release_bundles=False)
            seconds = time.perf_counter() - start
            section["modes"][mode] = {
                "seconds": round(seconds, 4),
                "lane_branches_per_second": round(total_branches / seconds),
                "base_records": store.base_writes,
                "base_loads": store.base_loads,
            }
            if mode == "cold":
                # top up (untimed): persist streams for lanes the cold
                # pass ran as reference fallbacks, so the warm pass is
                # fully warm
                store.warm_bases([args.workload], run_config, bases)
            print(
                f"{mode:>10s}: {seconds:8.3f}s  {total_branches / seconds:>9.0f} "
                f"lane-branches/s  ({store.base_loads} streams loaded)"
            )
        assert section["modes"]["warm"]["base_records"] == 0, "warm pass re-recorded a stream"
        assert section["modes"]["warm"]["base_loads"] >= 1, "warm pass loaded nothing"
        assert results_by_mode["cold"] == results_by_mode["warm"], (
            "warm-base replay diverged from cold-base execution"
        )
        speedup = section["modes"]["cold"]["seconds"] / section["modes"]["warm"]["seconds"]
        section["warm_speedup"] = round(speedup, 3)
        print(f"   warm speedup: x{speedup:.2f} (results bit-identical)")
    return section


def bench_backends(args, configs: list) -> dict:
    """The ``--backend`` modes: per-backend column timing (+ comparison)."""
    cells = sweep_cells(args.workload, configs, args.capacity_sweep, args.sweep_flavor)
    run_config = RunnerConfig(scale=args.scale, num_branches=args.branches)
    lanes = len(cells)
    total_branches = lanes * args.branches
    backends = (
        (BACKEND_REFERENCE, BACKEND_BATCHED)
        if args.backend == "compare"
        else (args.backend,)
    )
    label = ", ".join(f"{w}/{n}" for w, n, _ in cells)
    print(f"backend column: {lanes} lane(s) [{label}]")
    section = {"lanes": lanes, "cells": [[w, n, o] for w, n, o in cells], "backends": {}}
    results_by_backend = {}
    for backend in backends:
        seconds, results = bench_backend(run_config, args.workload, cells, backend)
        results_by_backend[backend] = results
        rate = total_branches / seconds
        section["backends"][backend] = {
            "seconds": round(seconds, 4),
            "lane_branches_per_second": round(rate),
        }
        print(f"{backend:>10s}: {seconds:8.3f}s  {rate:>9.0f} lane-branches/s")
    if args.backend == "compare":
        assert results_by_backend[BACKEND_REFERENCE] == results_by_backend[BACKEND_BATCHED], (
            "batched backend diverged from reference"
        )
        speedup = (
            section["backends"][BACKEND_REFERENCE]["seconds"]
            / section["backends"][BACKEND_BATCHED]["seconds"]
        )
        section["speedup"] = round(speedup, 3)
        print(f"   speedup: x{speedup:.2f} (results bit-identical)")
    return section


def append_ledger_record(directory, args, configs, rows, backend_section, base_section, wall):
    """Append this benchmark run to a run-history ledger (``--ledger``).

    The record has no embedded run report (the watchdog treats it as a
    pure throughput measurement); its result digest covers only
    deterministic outputs -- per-config misprediction counts in kernels
    mode, the cell column otherwise -- so a digest flip means the
    kernels' results changed, never that the machine got slower.
    """
    from repro.obs.ledger import RunLedger, matrix_digest, result_digest
    from repro.obs.regress import check_and_update

    mode = args.backend
    if rows:
        bps = sum(r["fused_branches_per_second"] for r in rows) / len(rows)
        outcome = [{"config": r["config"], "mispredictions": r["mispredictions"]} for r in rows]
        cells = len(rows)
    elif base_section is not None:
        bps = float(base_section["modes"]["warm"]["lane_branches_per_second"])
        outcome = [{"cells": base_section["cells"]}]
        cells = base_section["lanes"]
    else:
        timed = backend_section["backends"]
        bps = max(entry["lane_branches_per_second"] for entry in timed.values())
        outcome = [{"cells": backend_section["cells"]}]
        cells = backend_section["lanes"]
    identity = [
        "bench-hotpath|%s|%s|%s|%d|%d" % (mode, args.workload, name, args.branches, args.scale)
        for name in configs
    ]
    record = {
        "source": "bench",
        "context": {"benchmark": "hotpath", "mode": mode},
        "workloads": [args.workload],
        "configs": configs,
        "backend": "bench-hotpath:%s" % mode,
        "branches": args.branches * cells,
        "scale": args.scale,
        "matrix_digest": matrix_digest(identity),
        "result_digest": result_digest(outcome),
        "cells": cells,
        "cache_hit_rate": 0.0,
        "retries": 0,
        "wall_seconds": round(wall, 3),
        "cpu_seconds": round(time.process_time(), 3),
        "branches_per_sec": round(float(bps), 2),
    }
    ledger = RunLedger(directory)
    ledger.prepare(record)
    flags = check_and_update(ledger.directory, record)
    ledger.append(record)
    for flag in flags:
        print(
            "regression [%s/%s]: %s"
            % (flag.get("severity"), flag.get("kind"), flag.get("detail")),
            file=sys.stderr,
        )
    print(f"ledger record appended to {directory}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workload", default="nodeapp", help="workload profile to simulate")
    parser.add_argument("--configs", default=DEFAULT_CONFIGS, help="comma-separated")
    parser.add_argument("--branches", type=int, default=100_000, help="trace length")
    parser.add_argument("--scale", type=int, default=8, help="capacity scale")
    parser.add_argument(
        "--floor", type=int, default=None, metavar="BR_PER_SEC",
        help="fail (exit 1) if any config's fused rate is below this",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="append this run to the run-history ledger at DIR (read back "
             "with `repro history`; checked against the rolling bench baseline)",
    )
    parser.add_argument(
        "--backend", default="kernels",
        choices=("kernels", "reference", "batched", "compare", "base"),
        help="what to time: per-config kernels (default), the whole "
             "config column on one execution backend (compare times both "
             "and asserts bit-identity), or base: cold-base vs warm-base "
             "batched passes against one artifact store",
    )
    parser.add_argument(
        "--capacity-sweep", type=int, default=0, metavar="LANES",
        help="backend modes only: replace --configs with a LANES-lane "
             "Fig-16 capacity sweep (see --sweep-flavor)",
    )
    parser.add_argument(
        "--sweep-flavor", default="llbpx", choices=("llbpx", "tsl"),
        help="capacity-sweep shape: llbpx = tsl_64k plus LANES-1 "
             "llbpx_0lat lanes sharing one base; tsl = LANES Fig-16b TSL "
             "presets, each its own base",
    )
    parser.add_argument(
        "--batched-floor", type=float, default=None, metavar="RATIO",
        help="compare mode only: fail (exit 1) if the batched speedup "
             "over reference is below RATIO",
    )
    parser.add_argument(
        "--base-floor", type=float, default=None, metavar="RATIO",
        help="base mode only: fail (exit 1) if the warm-base speedup "
             "over the cold-base pass is below RATIO",
    )
    args = parser.parse_args(argv)

    configs = [c.strip() for c in args.configs.split(",") if c.strip()]

    print(
        f"hot path: {args.workload}, {args.branches} branches, "
        f"configs {', '.join(configs)}, cpu_count={os.cpu_count()}"
    )

    bench_start = time.perf_counter()
    backend_section = None
    base_section = None
    rows = []
    if args.backend == "base":
        base_section = bench_base_streams(args, configs)
    elif args.backend != "kernels":
        backend_section = bench_backends(args, configs)
    else:
        runner = Runner(RunnerConfig(scale=args.scale, num_branches=args.branches))
        for name in configs:
            row = bench_config(runner, args.workload, name)
            rows.append(row)
            print(
                f"{name:>10s}: unfused {row['unfused_branches_per_second']:>8d} br/s  "
                f"fused {row['fused_branches_per_second']:>8d} br/s  "
                f"x{row['speedup']:.2f}  ({row['mispredictions']} mispredictions, identical)"
            )

    payload = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "benchmark": {
            "workload": args.workload,
            "branches": args.branches,
            "scale": args.scale,
            "configs": configs,
        },
        "results": rows,
    }
    if backend_section is not None:
        payload["backend_comparison"] = backend_section
    if base_section is not None:
        payload["base_streams"] = base_section
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.ledger:
        append_ledger_record(
            args.ledger,
            args,
            configs,
            rows,
            backend_section,
            base_section,
            time.perf_counter() - bench_start,
        )

    if args.base_floor is not None:
        if base_section is None:
            print("FAIL: --base-floor requires --backend base", file=sys.stderr)
            return 1
        if base_section["warm_speedup"] < args.base_floor:
            print(
                f"FAIL: warm-base speedup x{base_section['warm_speedup']:.2f} "
                f"below floor x{args.base_floor:.2f}",
                file=sys.stderr,
            )
            return 1
        print(
            f"base floor check passed "
            f"(x{base_section['warm_speedup']:.2f} >= x{args.base_floor:.2f})"
        )

    if args.batched_floor is not None:
        if backend_section is None or "speedup" not in backend_section:
            print("FAIL: --batched-floor requires --backend compare", file=sys.stderr)
            return 1
        if backend_section["speedup"] < args.batched_floor:
            print(
                f"FAIL: batched speedup x{backend_section['speedup']:.2f} "
                f"below floor x{args.batched_floor:.2f}",
                file=sys.stderr,
            )
            return 1
        print(f"batched floor check passed (x{backend_section['speedup']:.2f} >= x{args.batched_floor:.2f})")

    if args.floor is not None:
        slow = [r for r in rows if r["fused_branches_per_second"] < args.floor]
        if slow:
            for row in slow:
                print(
                    f"FAIL: {row['config']} fused rate "
                    f"{row['fused_branches_per_second']} br/s below floor {args.floor}",
                    file=sys.stderr,
                )
            return 1
        print(f"floor check passed (all configs >= {args.floor} br/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
