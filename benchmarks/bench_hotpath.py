"""Hot-path benchmark: fused ``step`` kernel vs the two-call loop.

Measures the per-branch simulation loop in isolation (single process, one
predictor instance per timing run) rather than the experiment layer that
``bench_throughput.py`` covers.  For each configuration it times
``simulate(..., use_step=False)`` (the ``predict``/``update`` path) and
``simulate(..., use_step=True)`` (the fused kernel), asserts the two
produce identical misprediction counts, and reports branches/second plus
the fused/unfused speedup.

``--floor N`` turns the benchmark into a regression gate: the run exits
non-zero if any configuration's *fused* rate drops below N branches/sec.
CI uses this on a short trace with a deliberately conservative floor, so
only order-of-magnitude regressions (an accidentally de-specialised
kernel, a resurrected per-branch allocation) trip it on shared runners.

``--backend`` adds an execution-backend axis on top of the kernel one:
``reference`` and ``batched`` time the whole config column as one
``run_cells`` call on that backend; ``compare`` times both, asserts the
results are bit-identical, and reports the batched speedup (gated by
``--batched-floor``).  ``--capacity-sweep N`` swaps the column for the
Fig-16-style group batching was built for: ``tsl_64k`` plus ``N - 1``
``llbpx_0lat`` capacity lanes sharing one base.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --workload nodeapp --branches 40000 --configs tsl_64k,llbp,llbpx \
        --floor 25000 --json BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --backend compare --capacity-sweep 5 --branches 40000 \
        --batched-floor 1.05
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import Runner, RunnerConfig
from repro.core.simulator import BACKEND_BATCHED, BACKEND_REFERENCE, simulate
from repro.experiments.fig16_capacity import FIG16A_CONTEXTS

DEFAULT_CONFIGS = "tsl_64k,llbp,llbpx"


def bench_config(runner: Runner, workload: str, name: str) -> dict:
    """Time both loop kernels for one configuration; assert equivalence.

    Each timing run gets a freshly constructed predictor (the loop trains
    state in place), but the trace tensors -- the expensive precomputation
    -- are shared through the runner's workload bundle.
    """
    bundle = runner.bundle(workload)
    branches = len(bundle.trace)
    rates = {}
    mispredictions = {}
    for use_step, key in ((False, "unfused"), (True, "fused")):
        predictor = runner.build_predictor(name, bundle)
        start = time.perf_counter()
        result = simulate(predictor, bundle.trace, bundle.tensors, use_step=use_step)
        seconds = time.perf_counter() - start
        rates[key] = branches / seconds
        mispredictions[key] = result.mispredictions + result.warmup_mispredictions
    assert mispredictions["fused"] == mispredictions["unfused"], (
        f"{name}: fused kernel diverged "
        f"({mispredictions['fused']} vs {mispredictions['unfused']} mispredictions)"
    )
    return {
        "config": name,
        "branches": branches,
        "unfused_branches_per_second": round(rates["unfused"]),
        "fused_branches_per_second": round(rates["fused"]),
        "speedup": round(rates["fused"] / rates["unfused"], 3),
        "mispredictions": mispredictions["fused"],
    }


def sweep_cells(workload: str, configs: list, lanes: int) -> list:
    """The cell column a group-backend run times.

    Without ``--capacity-sweep`` it is one lane per ``--configs`` entry;
    with it, ``tsl_64k`` plus ``lanes - 1`` LLBP-X capacity points -- the
    shared-base group the batched backend exists for.
    """
    if lanes <= 0:
        return [(workload, name, {}) for name in configs]
    cells = [(workload, "tsl_64k", {})]
    for contexts in FIG16A_CONTEXTS[: lanes - 1]:
        cells.append((workload, "llbpx_0lat", {"num_contexts": contexts, "store_assoc": 64}))
    return cells


def bench_backend(config: RunnerConfig, workload: str, cells: list, backend: str) -> tuple:
    """Time one ``run_cells`` pass of ``cells`` on ``backend``.

    The workload bundle is built before the clock starts: both backends
    pay the same (untimed) precomputation, so the measurement isolates
    the simulation loops.  Returns ``(seconds, results)``.
    """
    runner = Runner(config, backend=backend)
    runner.bundle(workload)
    start = time.perf_counter()
    results = runner.run_cells(cells, release_bundles=False)
    return time.perf_counter() - start, results


def bench_backends(args, configs: list) -> dict:
    """The ``--backend`` modes: per-backend column timing (+ comparison)."""
    cells = sweep_cells(args.workload, configs, args.capacity_sweep)
    run_config = RunnerConfig(scale=args.scale, num_branches=args.branches)
    lanes = len(cells)
    total_branches = lanes * args.branches
    backends = (
        (BACKEND_REFERENCE, BACKEND_BATCHED)
        if args.backend == "compare"
        else (args.backend,)
    )
    label = ", ".join(f"{w}/{n}" for w, n, _ in cells)
    print(f"backend column: {lanes} lane(s) [{label}]")
    section = {"lanes": lanes, "cells": [[w, n, o] for w, n, o in cells], "backends": {}}
    results_by_backend = {}
    for backend in backends:
        seconds, results = bench_backend(run_config, args.workload, cells, backend)
        results_by_backend[backend] = results
        rate = total_branches / seconds
        section["backends"][backend] = {
            "seconds": round(seconds, 4),
            "lane_branches_per_second": round(rate),
        }
        print(f"{backend:>10s}: {seconds:8.3f}s  {rate:>9.0f} lane-branches/s")
    if args.backend == "compare":
        assert results_by_backend[BACKEND_REFERENCE] == results_by_backend[BACKEND_BATCHED], (
            "batched backend diverged from reference"
        )
        speedup = (
            section["backends"][BACKEND_REFERENCE]["seconds"]
            / section["backends"][BACKEND_BATCHED]["seconds"]
        )
        section["speedup"] = round(speedup, 3)
        print(f"   speedup: x{speedup:.2f} (results bit-identical)")
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workload", default="nodeapp", help="workload profile to simulate")
    parser.add_argument("--configs", default=DEFAULT_CONFIGS, help="comma-separated")
    parser.add_argument("--branches", type=int, default=100_000, help="trace length")
    parser.add_argument("--scale", type=int, default=8, help="capacity scale")
    parser.add_argument(
        "--floor", type=int, default=None, metavar="BR_PER_SEC",
        help="fail (exit 1) if any config's fused rate is below this",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--backend", default="kernels",
        choices=("kernels", "reference", "batched", "compare"),
        help="what to time: per-config kernels (default), or the whole "
             "config column on one execution backend (compare times both "
             "and asserts bit-identity)",
    )
    parser.add_argument(
        "--capacity-sweep", type=int, default=0, metavar="LANES",
        help="backend modes only: replace --configs with tsl_64k plus "
             "LANES-1 Fig-16 llbpx_0lat capacity lanes",
    )
    parser.add_argument(
        "--batched-floor", type=float, default=None, metavar="RATIO",
        help="compare mode only: fail (exit 1) if the batched speedup "
             "over reference is below RATIO",
    )
    args = parser.parse_args(argv)

    configs = [c.strip() for c in args.configs.split(",") if c.strip()]

    print(
        f"hot path: {args.workload}, {args.branches} branches, "
        f"configs {', '.join(configs)}, cpu_count={os.cpu_count()}"
    )

    backend_section = None
    rows = []
    if args.backend != "kernels":
        backend_section = bench_backends(args, configs)
    else:
        runner = Runner(RunnerConfig(scale=args.scale, num_branches=args.branches))
        for name in configs:
            row = bench_config(runner, args.workload, name)
            rows.append(row)
            print(
                f"{name:>10s}: unfused {row['unfused_branches_per_second']:>8d} br/s  "
                f"fused {row['fused_branches_per_second']:>8d} br/s  "
                f"x{row['speedup']:.2f}  ({row['mispredictions']} mispredictions, identical)"
            )

    payload = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "benchmark": {
            "workload": args.workload,
            "branches": args.branches,
            "scale": args.scale,
            "configs": configs,
        },
        "results": rows,
    }
    if backend_section is not None:
        payload["backend_comparison"] = backend_section
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.batched_floor is not None:
        if backend_section is None or "speedup" not in backend_section:
            print("FAIL: --batched-floor requires --backend compare", file=sys.stderr)
            return 1
        if backend_section["speedup"] < args.batched_floor:
            print(
                f"FAIL: batched speedup x{backend_section['speedup']:.2f} "
                f"below floor x{args.batched_floor:.2f}",
                file=sys.stderr,
            )
            return 1
        print(f"batched floor check passed (x{backend_section['speedup']:.2f} >= x{args.batched_floor:.2f})")

    if args.floor is not None:
        slow = [r for r in rows if r["fused_branches_per_second"] < args.floor]
        if slow:
            for row in slow:
                print(
                    f"FAIL: {row['config']} fused rate "
                    f"{row['fused_branches_per_second']} br/s below floor {args.floor}",
                    file=sys.stderr,
                )
            return 1
        print(f"floor check passed (all configs >= {args.floor} br/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
