"""Sec VII-E: contribution split of LLBP-X's two optimisations."""

from conftest import run_once

from repro.experiments import format_breakdown, run_breakdown


def test_sec7e_optimization_breakdown(benchmark, runner, report_sink):
    result = run_once(benchmark, lambda: run_breakdown(runner))
    report_sink("sec7e_breakdown", format_breakdown(result))
    assert 0.0 <= result.range_selection_share <= 1.0
