"""Table I: per-workload 64K-TSL branch MPKI."""

from conftest import run_once

from repro.experiments import format_table1, run_table1


def test_table1_workload_mpki(benchmark, runner, report_sink):
    rows = run_once(benchmark, lambda: run_table1(runner))
    report_sink("table1_workloads", format_table1(rows))
    assert len(rows) >= 3
    assert all(row.measured_mpki > 0 for row in rows)
