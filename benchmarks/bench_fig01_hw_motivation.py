"""Fig 1: branch-misprediction stall share on conservative vs aggressive cores."""

from conftest import run_once

from repro.experiments import format_fig01, run_fig01


def test_fig01_hw_motivation(benchmark, runner, report_sink):
    rows = run_once(benchmark, lambda: run_fig01(runner))
    report_sink("fig01_hw_motivation", format_fig01(rows))
    by_machine = {}
    for row in rows:
        by_machine.setdefault(row.machine, []).append(row)
    sky = by_machine["skylake_like"]
    spr = by_machine["sapphire_rapids_like"]
    # the paper's claim: aggressive machine has lower MPKI, higher stall share
    assert sum(r.mpki for r in spr) < sum(r.mpki for r in sky)
    assert sum(r.branch_stall_share for r in spr) > sum(r.branch_stall_share for r in sky)
