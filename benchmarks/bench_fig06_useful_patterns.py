"""Figs 6+7: useful patterns per context and their history lengths."""

from conftest import run_once

from repro.experiments import format_fig06_07, run_fig06_07


def test_fig06_07_context_profile(benchmark, runner, report_sink):
    result = run_once(benchmark, lambda: run_fig06_07(runner))
    report_sink("fig06_07_useful_patterns", format_fig06_07(result))
    profile = result.profile
    # skew: the busiest decile holds far more useful patterns than the median
    counts = profile.counts
    assert counts[0] >= 4 * counts[len(counts) // 2]
    # most contexts are underutilised (paper: 68% hold <= 8)
    assert profile.underutilized_fraction > 0.5
