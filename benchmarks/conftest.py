"""Shared state for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints
its rows (also archived under ``benchmarks/results/``).  The
:class:`~repro.core.Runner` is session-scoped so results shared between
figures (e.g. the 64K-TSL baselines) are simulated once.

Knobs (environment variables):

* ``REPRO_BRANCHES``  -- trace length per workload (default 120000)
* ``REPRO_WORKLOADS`` -- ``quick`` trims every workload set to 3
* ``REPRO_SCALE``     -- capacity scale (default 8; see DESIGN.md §1)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import Runner, RunnerConfig

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(
        RunnerConfig(
            scale=int(os.environ.get("REPRO_SCALE", "8")),
            num_branches=int(os.environ.get("REPRO_BRANCHES", "120000")),
        )
    )


@pytest.fixture(scope="session")
def report_sink():
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return sink


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
