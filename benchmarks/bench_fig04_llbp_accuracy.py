"""Fig 4: LLBP / 512K TSL / Inf TSL misprediction reduction over 64K TSL."""

from conftest import run_once

from repro.experiments import format_fig04, run_fig04


def test_fig04_llbp_accuracy(benchmark, runner, report_sink):
    rows = run_once(benchmark, lambda: run_fig04(runner))
    report_sink("fig04_llbp_accuracy", format_fig04(rows))
    n = len(rows)
    avg = {c: sum(r.reductions[c] for r in rows) / n for c in rows[0].reductions}
    # shape: LLBP gains but stays below the equal-storage ideal TSL
    assert avg["llbp"] > 0
    assert avg["tsl_512k"] > avg["llbp"]
    assert avg["tsl_inf"] >= avg["tsl_512k"] - 0.5
