"""Scaling-law tests for the analytical SRAM energy model.

The model replaces CACTI (DESIGN.md §1); these tests pin the properties
the Fig 15b comparison depends on: monotonicity in capacity, access
width, and associativity, and sensible structure-level ratios at the
paper's full-scale geometries.
"""

import pytest

from repro.llbp import llbp_default, llbpx_default
from repro.metrics.energy import StructureGeometry, _geometries, access_energy


class TestScalingLaws:
    def test_monotone_in_capacity(self):
        energies = [
            access_energy(StructureGeometry("s", bits, 1, 64))
            for bits in (1_000, 10_000, 100_000, 1_000_000, 10_000_000)
        ]
        assert energies == sorted(energies)
        assert energies[-1] > 3 * energies[0]

    def test_linear_in_width(self):
        narrow = access_energy(StructureGeometry("n", 100_000, 1, 64))
        wide = access_energy(StructureGeometry("w", 100_000, 1, 128))
        assert wide == pytest.approx(2 * narrow)

    def test_assoc_surcharge(self):
        direct = access_energy(StructureGeometry("d", 100_000, 1, 64))
        assoc8 = access_energy(StructureGeometry("a", 100_000, 8, 64))
        assert 1.3 < assoc8 / direct < 2.0


class TestGeometries:
    def test_llbp_structures_present(self):
        geometries = _geometries(llbp_default())
        assert set(geometries) == {"pattern_store", "context_directory", "pattern_buffer"}

    def test_llbpx_adds_ctt(self):
        geometries = _geometries(llbpx_default())
        assert "ctt" in geometries

    def test_full_scale_store_dwarfs_buffer(self):
        """At the paper's full-scale sizes a pattern-store access costs
        several times a pattern-buffer access (the CACTI relationship the
        relative-energy figure relies on)."""
        geometries = _geometries(llbp_default(scale=1))
        store = access_energy(geometries["pattern_store"])
        buffer = access_energy(geometries["pattern_buffer"])
        assert store > 2.5 * buffer

    def test_ctt_is_cheap(self):
        geometries = _geometries(llbpx_default(scale=1))
        assert access_energy(geometries["ctt"]) < access_energy(geometries["pattern_buffer"])
