"""Tests for result persistence."""

import pytest

from repro.core.results_io import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.core.simulator import SimulationResult


def sample_result():
    result = SimulationResult(
        workload="kafka",
        predictor="llbpx",
        instructions=90_000,
        conditional_branches=15_000,
        mispredictions=450,
        warmup_mispredictions=210,
        total_instructions=120_000,
    )
    result.stats = {"llbp_provides": 1200, "predictions": 15_000}
    result.extra = {"store_reads": 800.0, "ctt_tracked": 12.0}
    return result


class TestDictRoundtrip:
    def test_roundtrip_preserves_fields(self):
        original = sample_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored == original

    def test_mpki_preserved(self):
        original = sample_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.mpki == original.mpki


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path):
        results = [sample_result(), sample_result()]
        results[1].workload = "nodeapp"
        path = tmp_path / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert loaded == results

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "empty.json"
        save_results([], path)
        assert load_results(path) == []

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "results": []}')
        with pytest.raises(ValueError):
            load_results(path)

    def test_real_simulation_roundtrip(self, quick_runner, tmp_path):
        result = quick_runner.run_one("kafka", "llbp")
        path = tmp_path / "real.json"
        save_results([result], path)
        loaded = load_results(path)[0]
        assert loaded.mpki == result.mpki
        assert loaded.stats == result.stats
