"""Tests for branch behaviour models."""

import pytest

from repro.traces.behaviors import (
    BehaviorContext,
    BiasedBehavior,
    GlobalCorrelatedBehavior,
    LocalPatternBehavior,
    LoopBehavior,
    PathCorrelatedBehavior,
    RandomBehavior,
)


def ctx(hist=0, path=0, occ=0):
    return BehaviorContext(cond_history=hist, path_hash=path, occurrence=occ)


class TestBiased:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BiasedBehavior(1, 1.5)

    def test_deterministic_per_occurrence(self):
        b = BiasedBehavior(42, 0.7)
        assert b.outcome(ctx(occ=5)) == b.outcome(ctx(occ=5))

    def test_frequency_tracks_probability(self):
        b = BiasedBehavior(42, 0.8)
        taken = sum(b.outcome(ctx(occ=i)) for i in range(4000))
        assert 0.75 < taken / 4000 < 0.85

    def test_extremes(self):
        assert all(BiasedBehavior(1, 1.0).outcome(ctx(occ=i)) for i in range(50))
        assert not any(BiasedBehavior(1, 0.0).outcome(ctx(occ=i)) for i in range(50))

    def test_random_alias_tag(self):
        assert RandomBehavior(1, 0.5).tag == "random"
        assert BiasedBehavior(1, 0.5).tag == "biased"


class TestLoop:
    def test_exit_every_trip(self):
        b = LoopBehavior(1, trip_count=4)
        outcomes = [b.outcome(ctx(occ=i)) for i in range(8)]
        assert outcomes == [True, True, True, False] * 2

    def test_rejects_short_trip(self):
        with pytest.raises(ValueError):
            LoopBehavior(1, trip_count=1)


class TestLocalPattern:
    def test_periodicity(self):
        b = LocalPatternBehavior(9, length=5)
        first = [b.outcome(ctx(occ=i)) for i in range(5)]
        second = [b.outcome(ctx(occ=i + 5)) for i in range(5)]
        assert first == second

    def test_not_degenerate_for_len_ge_2(self):
        for seed in range(30):
            b = LocalPatternBehavior(seed, length=6)
            outcomes = {b.outcome(ctx(occ=i)) for i in range(6)}
            assert len(outcomes) == 2

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            LocalPatternBehavior(1, 0)


class TestGlobalCorrelated:
    def test_function_of_history_window(self):
        b = GlobalCorrelatedBehavior(5, k=4)
        # same low-4 history bits -> same outcome, regardless of upper bits
        assert b.outcome(ctx(hist=0b10110)) == b.outcome(ctx(hist=0b00110))

    def test_depends_on_window(self):
        b = GlobalCorrelatedBehavior(5, k=8)
        outcomes = {b.outcome(ctx(hist=h)) for h in range(256)}
        assert outcomes == {True, False}

    def test_noise_flips_sometimes(self):
        clean = GlobalCorrelatedBehavior(5, k=4, noise=0.0)
        noisy = GlobalCorrelatedBehavior(5, k=4, noise=0.5)
        diffs = sum(
            clean.outcome(ctx(hist=1, occ=i)) != noisy.outcome(ctx(hist=1, occ=i))
            for i in range(400)
        )
        assert 100 < diffs < 300

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GlobalCorrelatedBehavior(1, k=0)
        with pytest.raises(ValueError):
            GlobalCorrelatedBehavior(1, k=4, noise=1.0)


class TestPathCorrelated:
    def test_function_of_path(self):
        b = PathCorrelatedBehavior(5, hist_k=0)
        assert b.outcome(ctx(path=123)) == b.outcome(ctx(path=123, occ=9))

    def test_different_paths_differ_somewhere(self):
        b = PathCorrelatedBehavior(5, hist_k=0)
        outcomes = {b.outcome(ctx(path=p)) for p in range(64)}
        assert outcomes == {True, False}

    def test_hist_window_matters_when_enabled(self):
        b = PathCorrelatedBehavior(5, hist_k=3)
        outcomes = {b.outcome(ctx(path=1, hist=h)) for h in range(8)}
        assert len(outcomes) == 2

    def test_describe_mentions_params(self):
        assert "hist_k=2" in PathCorrelatedBehavior(1, 2).describe()
