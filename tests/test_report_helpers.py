"""Tests for the experiment report utilities and env knobs."""

from repro.experiments.report import (
    default_branches,
    default_workloads,
    format_table,
    hrule,
    pct,
)
from repro.traces.workloads import GEM5_WORKLOAD_NAMES, WORKLOAD_NAMES


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["a", "bb"], [["1", "22"], ["333", "4"]])
        assert "a" in text and "bb" in text and "333" in text

    def test_title_line(self):
        text = format_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["col"], [["1"], ["100"]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_non_string_cells_coerced(self):
        text = format_table(["n"], [[42]])
        assert "42" in text


class TestPct:
    def test_signed(self):
        assert pct(3.14) == "+3.1%"
        assert pct(-2.0) == "-2.0%"

    def test_unsigned(self):
        assert pct(3.14, signed=False) == "3.1%"


class TestHrule:
    def test_width(self):
        assert hrule(10) == "-" * 10


class TestDefaultWorkloads:
    def test_all_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
        assert default_workloads("all") == list(WORKLOAD_NAMES)

    def test_gem5_set(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
        assert default_workloads("gem5") == list(GEM5_WORKLOAD_NAMES)

    def test_subset(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
        subset = default_workloads("subset")
        assert len(subset) == 3
        assert set(subset) <= set(WORKLOAD_NAMES)

    def test_quick_knob_trims(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOADS", "quick")
        assert len(default_workloads("all")) == 3
        assert len(default_workloads("gem5")) == 3


class TestDefaultBranches:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BRANCHES", raising=False)
        assert default_branches() == 120_000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BRANCHES", "5000")
        assert default_branches() == 5000
