"""Cross-cutting property-based tests on core invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.simulator import simulate
from repro.llbp.pattern import PatternSet
from repro.llbp.pattern_buffer import PatternBuffer
from repro.llbp.pattern_store import PatternStore
from repro.llbp.rcr import rolling_window_hashes
from repro.tage import TageSCL, TraceTensors, tsl_64k
from tests.conftest import TEST_SCALE, make_cond_trace


class TestSimulationDeterminism:
    def test_same_trace_same_result(self):
        trace = make_cond_trace([bool((i * 7) % 3) for i in range(1500)])
        results = []
        for _ in range(2):
            tensors = TraceTensors(trace)
            result = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors)
            results.append((result.mispredictions, result.instructions))
        assert results[0] == results[1]


class TestStructuralInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 40), st.booleans()),  # (context id, dirty?)
            max_size=120,
        )
    )
    def test_store_residency_bounded(self, ops):
        store = PatternStore(num_contexts=12, assoc=3, context_tag_bits=6)
        for cid, _dirty in ops:
            ps = PatternSet(capacity=16)
            ps.allocate(0, cid, True)
            store.insert(cid, ps)
            assert store.resident_sets() <= store.num_sets * store.assoc

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 100)),  # (cid, now)
            max_size=150,
        )
    )
    def test_pattern_buffer_capacity_invariant(self, ops):
        pb = PatternBuffer(8)
        for cid, now in ops:
            if cid % 3 == 0:
                pb.insert(cid, PatternSet(capacity=4), now, from_prefetch=bool(cid & 1))
            else:
                pb.get(cid, now)
            assert len(pb) <= 8

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.integers(0, 2**32), min_size=3, max_size=60),
        window=st.integers(1, 8),
    )
    def test_window_hash_equality_implies_window_equality(self, values, window):
        hashes = rolling_window_hashes(values, window)
        for i in range(window - 1, len(values)):
            for j in range(window - 1, i):
                win_i = tuple(values[i - window + 1 : i + 1])
                win_j = tuple(values[j - window + 1 : j + 1])
                if win_i == win_j:
                    assert hashes[i] == hashes[j]

    @settings(max_examples=25, deadline=None)
    @given(
        allocations=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 500), st.booleans()),
            max_size=100,
        ),
        capacity=st.integers(1, 16),
    )
    def test_pattern_set_capacity_invariant(self, allocations, capacity):
        ps = PatternSet(capacity=capacity)
        for length_index, tag, taken in allocations:
            ps.allocate(length_index, tag, taken)
            assert len(ps) <= capacity
            # counters always stay in the 3-bit range
            assert all(ps.ctr_min <= p.ctr <= ps.ctr_max for p in ps.patterns)

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 1000))
    def test_tage_never_crashes_on_random_streams(self, seed):
        rng = random.Random(seed)
        trace = make_cond_trace([rng.random() < 0.5 for _ in range(400)])
        tensors = TraceTensors(trace)
        result = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors)
        assert 0 <= result.mispredictions <= result.conditional_branches
