"""Persistent shared-base streams: record once, replay forever.

The artifact store persists each batched group's recorded base stream
keyed by (bundle digest, canonical base config digest,
``BASE_STREAM_VERSION``); later runs -- and peer ``--join`` hosts --
adopt the stored stream and run tail-only.  This suite is the warm
path's correctness contract: replay from a *loaded* stream must be
bit-identical to a fresh recording (and to the reference backend) for
every workload and batchable family; a persisted base admits singleton
batched groups; a version bump or a torn file invalidates cleanly; and
cooperating hosts share exactly one recording.

Note the deliberate asymmetry with ``tests/test_batched_equivalence``:
warm-path assertions compare *results*, never predictor table state --
an adopted base leaves the shared core/loop untrained by design (the
tails never read them).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ArtifactStore, ResultCache, Runner, RunnerConfig
from repro.core.batched import base_config, plan_batches, run_group
from repro.obs.metrics import registry as obs_registry
from repro.tage.batched_state import BASE_STREAM_DTYPE, BASE_STREAM_VERSION, SharedBase
from repro.traces.workloads import WORKLOAD_NAMES
from tests.conftest import TEST_SCALE

CONFIG_NAMES = ("tsl_64k", "llbp", "llbpx")
NUM_BRANCHES = 2_000
SMALL = RunnerConfig(scale=TEST_SCALE, num_branches=NUM_BRANCHES)


# -- bit-identity: loaded replay == fresh record == reference --------------------


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_loaded_replay_is_bit_identical(workload, tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    cells = [(workload, name, {}) for name in CONFIG_NAMES]
    plan = plan_batches(cells, TEST_SCALE)
    assert [len(g) for g in plan.groups] == [len(CONFIG_NAMES)]

    recorded = run_group(Runner(SMALL, artifacts=store), workload, plan.groups[0])
    assert store.base_writes == 1 and store.base_loads == 0
    assert all(not outcome.base_warm for outcome in recorded)

    replayed = run_group(Runner(SMALL, artifacts=store), workload, plan.groups[0])
    assert store.base_loads == 1 and store.base_writes == 1  # no re-record
    assert all(outcome.base_warm for outcome in replayed)

    reference = Runner(SMALL)
    for rec, rep in zip(recorded, replayed):
        _, name, _ = rec.cell
        expected = reference.run_one(workload, name, use_cache=False)
        assert rec.result == expected
        assert rep.result == expected


def test_stream_on_disk_round_trips_exactly(tmp_path):
    """The persisted array is byte-for-byte the recorded stream."""
    store = ArtifactStore(tmp_path / "artifacts")
    runner = Runner(SMALL, artifacts=store)
    bundle = runner.bundle("kafka")
    base = base_config("llbp", TEST_SCALE)
    shared = SharedBase(base, bundle.tensors)
    shared.record(bundle.trace, bundle.tensors)
    stream = shared.packed_stream()
    assert stream.dtype == BASE_STREAM_DTYPE

    store.save_base_stream("kafka", SMALL, base, stream)
    loaded = store.load_base_stream("kafka", SMALL, base, expected_length=len(bundle.trace))
    assert loaded is not None and loaded.dtype == BASE_STREAM_DTYPE
    assert np.array_equal(np.asarray(loaded), stream)

    adopted = SharedBase(base, bundle.tensors)
    adopted.adopt_stream(loaded)
    assert adopted.recorded and adopted.adopted
    assert adopted.footprint_bytes() == stream.nbytes


# -- singleton warm-base planning ------------------------------------------------


def test_plan_admits_warm_singletons():
    cells = [("kafka", "tsl_16k", {})]
    cold = plan_batches(cells, TEST_SCALE, min_lanes=2)
    assert cold.groups == [] and cold.singles == cells

    warm = plan_batches(cells, TEST_SCALE, min_lanes=2, base_warm=lambda w, c: True)
    assert [len(g) for g in warm.groups] == [1] and warm.singles == []
    assert warm.fallbacks == 0

    # the predicate never admits structurally non-batchable cells
    inf = plan_batches(
        [("kafka", "tsl_inf", {})], TEST_SCALE, min_lanes=2, base_warm=lambda w, c: True
    )
    assert inf.groups == [] and inf.fallbacks == 1


def test_singleton_with_persisted_base_runs_batched(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    base = base_config("llbp", TEST_SCALE)
    built, skipped = store.warm_bases(["kafka"], SMALL, [base])
    assert (built, skipped) == (1, 0)

    expected = Runner(SMALL).run_one("kafka", "llbp", use_cache=False)
    runner = Runner(SMALL, artifacts=store)  # default backend: auto
    assert runner.run_cells([("kafka", "llbp", {})]) == [expected]
    assert runner.report.batched_group_sizes == [1]
    assert runner.report.totals()["base_warm"] == 1
    assert any(entry.base_warm for entry in runner.report.cells())
    assert "base_warm=1" in runner.report.summary()
    assert store.base_loads >= 1 and store.base_writes == 1  # only the warm pass wrote

    # without a persisted base, the same singleton is still demoted
    cold = Runner(SMALL)
    cold.run_cells([("kafka", "llbp", {})])
    assert cold.report.batched_group_sizes == []


def test_warm_bases_skips_existing_and_unbatchable(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    base = base_config("llbp", TEST_SCALE)
    from repro.tage.config import preset_by_name

    infinite = preset_by_name("tsl_inf", scale=TEST_SCALE)
    built, skipped = store.warm_bases(["kafka"], SMALL, [base, infinite])
    assert (built, skipped) == (1, 1)
    built, skipped = store.warm_bases(["kafka"], SMALL, [base, infinite])
    assert (built, skipped) == (0, 2)


# -- invalidation ----------------------------------------------------------------


def test_version_bump_invalidates_persisted_streams(tmp_path, monkeypatch):
    store = ArtifactStore(tmp_path / "artifacts")
    base = base_config("llbp", TEST_SCALE)
    store.warm_bases(["kafka"], SMALL, [base])
    assert store.has_base_stream("kafka", SMALL, base)

    monkeypatch.setattr("repro.core.artifacts.BASE_STREAM_VERSION", BASE_STREAM_VERSION + 1)
    assert not store.has_base_stream("kafka", SMALL, base)
    assert store.load_base_stream("kafka", SMALL, base) is None
    built, skipped = store.warm_bases(["kafka"], SMALL, [base])
    assert (built, skipped) == (1, 0)  # re-recorded under the new key


def test_torn_stream_is_quarantined_and_regenerated(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    cells = [("kafka", name, {}) for name in ("llbp", "llbpx")]
    plan = plan_batches(cells, TEST_SCALE)
    outcomes = run_group(Runner(SMALL, artifacts=store), "kafka", plan.groups[0])

    base = base_config("llbp", TEST_SCALE)
    path = store.base_stream_path("kafka", SMALL, base)
    assert path.is_file()
    path.write_bytes(b"\x93NUMPY torn mid-write")
    assert store.load_base_stream("kafka", SMALL, base) is None
    assert store.quarantined == 1
    assert path.with_name(f"{path.name}.corrupt").is_file() and not path.is_file()

    # the next group records a fresh stream over the same name, results intact
    regenerated = run_group(Runner(SMALL, artifacts=store), "kafka", plan.groups[0])
    assert all(not outcome.base_warm for outcome in regenerated)
    assert [o.result for o in regenerated] == [o.result for o in outcomes]
    assert store.load_base_stream("kafka", SMALL, base) is not None


def test_wrong_length_stream_is_quarantined(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts")
    base = base_config("llbp", TEST_SCALE)
    runner = Runner(SMALL, artifacts=store)
    bundle = runner.bundle("kafka")
    store.save_base_stream(
        "kafka", SMALL, base, np.zeros(7, dtype=BASE_STREAM_DTYPE)
    )
    assert (
        store.load_base_stream("kafka", SMALL, base, expected_length=len(bundle.trace))
        is None
    )
    assert store.quarantined == 1


# -- cooperating hosts share one recording ---------------------------------------


def test_join_hosts_share_one_recording(tmp_path):
    from repro.core.sched import CoopScheduler, HostLedger

    cache_dir = tmp_path / "cache"
    hosts_dir = tmp_path / "hosts"
    art_dir = tmp_path / "artifacts"

    def make_host(host_id):
        runner = Runner(
            SMALL, cache=ResultCache(cache_dir), artifacts=ArtifactStore(art_dir)
        )
        runner.coop = CoopScheduler(HostLedger(hosts_dir, host_id=host_id), claim_batch=2)
        return runner

    records_before = obs_registry().counter("backend.base_records").value

    # host A claims its same-base pair as one batched group: one recording
    host_a = make_host("hostA")
    group_cells = [("kafka", "llbp", {}), ("kafka", "llbpx", {})]
    results_a = host_a.run_cells(group_cells)
    assert host_a.artifacts.base_writes == 1 and host_a.artifacts.base_loads == 0

    # hosts B and C drain same-base cells later: warm singletons, zero records
    host_b = make_host("hostB")
    results_b = host_b.run_cells([("kafka", "llbp_0lat", {})])
    assert host_b.artifacts.base_writes == 0 and host_b.artifacts.base_loads == 1
    assert host_b.report.totals()["base_warm"] == 1
    assert host_b.report.batched_group_sizes == [1]

    host_c = make_host("hostC")
    results_c = host_c.run_cells([("kafka", "llbpx_0lat", {})])
    assert host_c.artifacts.base_writes == 0 and host_c.artifacts.base_loads == 1

    # exactly one recording total, one stream file on disk, serving all hosts
    assert obs_registry().counter("backend.base_records").value == records_before + 1
    assert len(list(art_dir.rglob("base_*.npy"))) == 1

    reference = Runner(SMALL)
    for (workload, name, _), result in zip(group_cells, results_a):
        assert result == reference.run_one(workload, name, use_cache=False)
    assert results_b == [reference.run_one("kafka", "llbp_0lat", use_cache=False)]
    assert results_c == [reference.run_one("kafka", "llbpx_0lat", use_cache=False)]
