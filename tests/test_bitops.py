"""Unit and property tests for repro.common.bitops."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import FoldedHistory, GlobalHistory, PathHistory, mask, mix64, mix_many


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(13) == 0x1FFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_differs_for_nearby_inputs(self):
        assert mix64(1) != mix64(2)

    def test_stays_in_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1, 2**200):
            assert 0 <= mix64(value) < 2**64

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_avalanche_flips_many_bits(self, value):
        flipped = mix64(value) ^ mix64(value ^ 1)
        # a single input-bit flip changes a third of output bits or more
        assert bin(flipped).count("1") >= 12

    def test_zero_not_fixed_point_of_nonzero(self):
        assert mix64(1) != 0


class TestMixMany:
    def test_order_sensitive(self):
        assert mix_many([1, 2, 3]) != mix_many([3, 2, 1])

    def test_length_sensitive(self):
        assert mix_many([1, 2]) != mix_many([1, 2, 0])

    def test_empty_sequence_defined(self):
        assert isinstance(mix_many([]), int)


class TestFoldedHistory:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FoldedHistory(0, 4)
        with pytest.raises(ValueError):
            FoldedHistory(4, 0)

    def test_initial_value_zero(self):
        assert FoldedHistory(10, 4).value == 0

    def test_single_bit_window(self):
        fh = FoldedHistory(1, 3)
        fh.update(1, 0)
        assert fh.value == 1
        fh.update(0, 1)  # the 1 ages out immediately
        assert fh.value == 0

    def test_reset(self):
        fh = FoldedHistory(8, 4)
        for _ in range(10):
            fh.update(1, 0)
        fh.reset()
        assert fh.value == 0

    def test_value_bounded_by_width(self):
        fh = FoldedHistory(64, 5)
        for i in range(200):
            fh.update(i & 1, 0 if i < 64 else (i - 64) & 1)
            assert 0 <= fh.value < 32

    @settings(max_examples=60, deadline=None)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=300),
        length=st.integers(1, 80),
        width=st.integers(1, 16),
    )
    def test_incremental_matches_naive_fold(self, bits, length, width):
        fh = FoldedHistory(length, width)
        history = []
        for bit in bits:
            history.insert(0, bit)
            old = history[length] if len(history) > length else 0
            fh.update(bit, old)
        window = history[:length] + [0] * max(0, length - len(history))
        assert fh.value == FoldedHistory.fold_naive(window, width)


class TestGlobalHistory:
    def test_append_and_bit(self):
        gh = GlobalHistory(8)
        for bit in (1, 0, 1, 1):
            gh.append(bit)
        assert gh.bit(0) == 1
        assert gh.bit(1) == 1
        assert gh.bit(2) == 0
        assert gh.bit(3) == 1

    def test_recent_order_newest_first(self):
        gh = GlobalHistory(8)
        for bit in (1, 0, 0):
            gh.append(bit)
        assert gh.recent(3) == [0, 0, 1]

    def test_wraps_capacity(self):
        gh = GlobalHistory(4)
        for i in range(10):
            gh.append(i & 1)
        assert len(gh) == 4

    def test_bit_out_of_range_raises(self):
        gh = GlobalHistory(4)
        with pytest.raises(IndexError):
            gh.bit(4)

    def test_reset(self):
        gh = GlobalHistory(4)
        gh.append(1)
        gh.reset()
        assert len(gh) == 0
        assert gh.bit(0) == 0


class TestPathHistory:
    def test_update_changes_value(self):
        ph = PathHistory()
        before = ph.value
        ph.update(0x1234)
        assert ph.value != before or (0x1234 & 3) == 0

    def test_hashed_width(self):
        ph = PathHistory()
        for pc in range(0, 400, 4):
            ph.update(pc)
            assert 0 <= ph.hashed(10) < 1024

    def test_reset(self):
        ph = PathHistory()
        ph.update(0xFFFF)
        ph.reset()
        assert ph.value == 0
