"""Tests for the structured cache keys and the persistent result cache."""

import dataclasses

import pytest

from repro.core import ResultCache, Runner, RunnerConfig, cache_digest, cache_key, result_key
from repro.core.results_io import freeze_overrides
from repro.core.simulator import SimulationResult

SMALL = RunnerConfig(scale=4, num_branches=3000)


def sample_result(workload="kafka", predictor="tsl_16k"):
    return SimulationResult(
        workload=workload,
        predictor=predictor,
        instructions=90_000,
        conditional_branches=15_000,
        mispredictions=450,
        warmup_mispredictions=210,
        total_instructions=120_000,
        stats={"predictions": 15_000},
        extra={"store_reads": 800.0},
    )


class TestResultKey:
    def test_structured_fields(self):
        assert result_key("kafka", "llbp", {"b": 2, "a": 1}) == (
            "kafka",
            "llbp",
            (("a", 1), ("b", 2)),
        )

    def test_no_name_override_concatenation_collisions(self):
        # the old string key was name + repr(sorted(overrides.items())):
        # these two cells collided under it
        a = result_key("w", "llbp", {})
        b = result_key("w", "llbp[]", {})
        assert a != b

    def test_overrides_distinguish(self):
        assert result_key("w", "llbp", {"x": 1}) != result_key("w", "llbp", {"x": 2})
        assert result_key("w", "llbp", {}) != result_key("w", "llbp", {"x": 1})

    def test_key_is_hashable_with_nested_overrides(self):
        key = result_key("w", "llbpx", {"oracle_depths": {3: True, 1: False}, "ls": [1, 2]})
        assert hash(key)  # dicts/lists frozen to tuples

    def test_freeze_is_order_insensitive(self):
        assert freeze_overrides({"a": 1, "b": {"y": 2, "x": 1}}) == freeze_overrides(
            {"b": {"x": 1, "y": 2}, "a": 1}
        )


class TestCacheDigest:
    def test_stable_for_equal_keys(self):
        k1 = cache_key("kafka", "llbp", {"a": 1}, SMALL)
        k2 = cache_key("kafka", "llbp", {"a": 1}, SMALL)
        assert cache_digest(k1) == cache_digest(k2)

    def test_runner_config_changes_digest(self):
        base = cache_digest(cache_key("kafka", "llbp", {}, SMALL))
        for changed in (
            dataclasses.replace(SMALL, num_branches=4000),
            dataclasses.replace(SMALL, scale=8),
            dataclasses.replace(SMALL, warmup_fraction=0.5),
            dataclasses.replace(SMALL, seed=7),
        ):
            assert cache_digest(cache_key("kafka", "llbp", {}, changed)) != base

    def test_generator_version_invalidates(self):
        old = cache_digest(cache_key("kafka", "llbp", {}, SMALL, generator_version=1))
        new = cache_digest(cache_key("kafka", "llbp", {}, SMALL, generator_version=2))
        assert old != new


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"k": "v"}, sample_result())
        assert cache.get("deadbeef") == sample_result()
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "writes": 1,
            "quarantined": 0,
            "temps_swept": 0,
        }

    def test_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa", {}, sample_result())
        assert cache.invalidate("aa") is True
        assert cache.invalidate("aa") is False
        assert cache.get("aa") is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa", {}, sample_result())
        cache.put("bb", {}, sample_result("nodeapp"))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "abcd.json").write_text("{ not json")
        assert cache.get("abcd") is None

    def test_unknown_version_is_a_miss_without_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "abcd.json").write_text('{"version": 99}')
        assert cache.get("abcd") is None
        # a foreign layout version is not damage: the file stays put
        assert cache.quarantined == 0
        assert (tmp_path / "abcd.json").exists()

    def test_undecodable_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "abcd.json").write_text("{ not json")
        assert cache.get("abcd") is None
        assert cache.quarantined == 1
        assert not (tmp_path / "abcd.json").exists()
        assert (tmp_path / "abcd.json.corrupt").exists()

    def test_right_version_missing_result_is_quarantined(self, tmp_path):
        # the truncated-then-completed-write shape: well-formed JSON,
        # current version, but no usable result payload
        cache = ResultCache(tmp_path)
        (tmp_path / "abcd.json").write_text('{"version": 1, "key": {}}')
        assert cache.get("abcd") is None
        assert cache.quarantined == 1
        assert (tmp_path / "abcd.json.corrupt").exists()

    def test_malformed_result_field_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "abcd.json").write_text('{"version": 1, "result": 42}')
        assert cache.get("abcd") is None
        assert cache.quarantined == 1

    def test_quarantined_entry_can_be_rewritten(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "abcd.json").write_text('{"version": 1}')
        assert cache.get("abcd") is None
        cache.put("abcd", {}, sample_result())
        assert cache.get("abcd") == sample_result()

    def test_quarantined_files_do_not_count_as_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "abcd.json").write_text('{"version": 1}')
        cache.get("abcd")
        assert len(cache) == 0


class TestTempSweep:
    def test_stale_temp_swept_on_init(self, tmp_path):
        (tmp_path / "abcd.json.tmp.999999999").write_text("partial")
        cache = ResultCache(tmp_path)
        assert cache.temps_swept == 1
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_unparseable_temp_suffix_swept(self, tmp_path):
        (tmp_path / "abcd.json.tmp.bogus").write_text("partial")
        assert ResultCache(tmp_path).temps_swept == 1

    def test_live_pid_temp_kept(self, tmp_path):
        import os

        live = tmp_path / f"abcd.json.tmp.{os.getpid()}"
        live.write_text("in flight")
        cache = ResultCache(tmp_path)
        assert cache.temps_swept == 0
        assert live.exists()

    def test_clear_sweeps_temps_and_corrupt_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa", {}, sample_result())
        (tmp_path / "bb.json.tmp.999999999").write_text("partial")
        (tmp_path / "cc.json").write_text("{ broken")
        cache.get("cc")  # quarantines to cc.json.corrupt
        assert cache.clear() == 1
        assert list(tmp_path.iterdir()) == []

    def test_temps_are_invisible_to_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa", {}, sample_result())
        (tmp_path / f"bb.json.tmp.{__import__('os').getpid()}").write_text("x")
        assert len(cache) == 1


class TestRunnerCacheIntegration:
    def test_warm_cache_performs_zero_simulations(self, tmp_path):
        cold = Runner(SMALL, cache=ResultCache(tmp_path))
        expected = cold.run_matrix(["kafka"], ["tsl_16k", "llbp"])
        assert cold.sim_count == 2

        warm = Runner(SMALL, cache=ResultCache(tmp_path))
        got = warm.run_matrix(["kafka"], ["tsl_16k", "llbp"])
        assert warm.sim_count == 0
        assert warm.cache.hits == 2
        assert got == expected

    def test_warm_cache_covers_overrides(self, tmp_path):
        cold = Runner(SMALL, cache=ResultCache(tmp_path))
        expected = cold.run_one("kafka", "llbp", num_contexts=1024)
        warm = Runner(SMALL, cache=ResultCache(tmp_path))
        assert warm.run_one("kafka", "llbp", num_contexts=1024) == expected
        assert warm.sim_count == 0

    def test_different_run_parameters_miss(self, tmp_path):
        Runner(SMALL, cache=ResultCache(tmp_path)).run_one("kafka", "tsl_16k")
        other = Runner(
            dataclasses.replace(SMALL, num_branches=4000), cache=ResultCache(tmp_path)
        )
        other.run_one("kafka", "tsl_16k")
        assert other.sim_count == 1  # not served by the 3000-branch entry

    def test_use_cache_false_bypasses_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(SMALL, cache=cache)
        runner.run_one("kafka", "tsl_16k", use_cache=False)
        assert len(cache) == 0 and runner.sim_count == 1

    def test_parallel_results_are_persisted_by_parent(self, tmp_path):
        cold = Runner(SMALL, cache=ResultCache(tmp_path))
        cold.run_matrix(["kafka", "nodeapp"], ["tsl_16k"], jobs=2)
        warm = Runner(SMALL, cache=ResultCache(tmp_path))
        warm.run_matrix(["kafka", "nodeapp"], ["tsl_16k"], jobs=2)
        assert warm.sim_count == 0


class TestRunnerMemoryManagement:
    def test_clear_cache_drops_results(self):
        runner = Runner(SMALL)
        runner.run_one("kafka", "tsl_16k")
        runner.run_one("kafka", "tsl_16k", num_contexts=512)
        assert runner.clear_cache() == 2
        assert runner._results == {}

    def test_clear_cache_can_drop_bundles(self):
        runner = Runner(SMALL)
        runner.run_one("kafka", "tsl_16k")
        runner.clear_cache(bundles=True)
        assert runner._bundles == {}

    def test_release_with_results_drops_only_that_workload(self):
        runner = Runner(SMALL)
        runner.run_one("kafka", "tsl_16k")
        runner.run_one("nodeapp", "tsl_16k")
        runner.release("kafka", results=True)
        assert [k[0] for k in runner._results] == ["nodeapp"]

    def test_release_keeps_results_by_default(self):
        runner = Runner(SMALL)
        runner.run_one("kafka", "tsl_16k")
        runner.release("kafka")
        assert len(runner._results) == 1
