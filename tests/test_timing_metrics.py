"""Tests for the timing models and cost metrics."""

import pytest

from repro.core.simulator import SimulationResult
from repro.llbp import llbp_default, llbpx_default
from repro.metrics import (
    BITS_PER_TRANSACTION,
    access_energy,
    bandwidth_report,
    energy_report,
    llbp_budget,
    overhead_percent,
    prefetch_report,
    tsl_budget,
)
from repro.metrics.energy import StructureGeometry
from repro.tage import tsl_512k, tsl_64k
from repro.timing import (
    evaluate_timing,
    sapphire_rapids_like,
    skylake_like,
    speedup,
    table_ii_machine,
)


def fake_result(mispredictions=100, instructions=100_000, **kw):
    result = SimulationResult(
        workload="w",
        predictor=kw.get("predictor", "p"),
        instructions=instructions,
        conditional_branches=instructions // 6,
        mispredictions=mispredictions,
        warmup_mispredictions=0,
        total_instructions=instructions,
    )
    result.stats = kw.get("stats", {})
    result.extra = kw.get("extra", {})
    return result


class TestTiming:
    def test_cycle_accounting(self):
        machine = table_ii_machine()
        timing = evaluate_timing(fake_result(), machine)
        assert timing.base_cycles == pytest.approx(100_000 / machine.width)
        assert timing.branch_stall_cycles == pytest.approx(100 * machine.flush_penalty)
        assert timing.total_cycles > timing.base_cycles

    def test_fewer_mispredictions_speed_up(self):
        machine = table_ii_machine()
        base = fake_result(mispredictions=1000)
        better = fake_result(mispredictions=500)
        assert speedup(base, better, machine) > 0
        assert speedup(base, base, machine) == 0

    def test_branch_stall_share_bounded(self):
        timing = evaluate_timing(fake_result(mispredictions=10_000), table_ii_machine())
        assert 0 < timing.branch_stall_share < 1

    def test_overriding_adds_stalls(self):
        machine = table_ii_machine()
        stats = {"predictions": 1000, "fast_path_overrides": 400}
        result = fake_result(stats=stats)
        plain = evaluate_timing(result, machine, model_overriding=False)
        overriding = evaluate_timing(result, machine, model_overriding=True)
        assert overriding.total_cycles > plain.total_cycles

    def test_machines_ordered_by_aggressiveness(self):
        sky, spr = skylake_like(), sapphire_rapids_like()
        assert spr.width > sky.width
        assert spr.other_stall_cpi < sky.other_stall_cpi
        assert spr.predictor_scale < sky.predictor_scale


class TestBandwidth:
    def test_bits_per_instruction(self):
        result = fake_result(extra={"store_reads": 100.0, "store_writes": 25.0})
        report = bandwidth_report(result)
        expected = BITS_PER_TRANSACTION * 125 / 100_000
        assert report.bits_per_instruction == pytest.approx(expected)
        assert report.read_bits_per_instruction > report.write_bits_per_instruction

    def test_requires_llbp_result(self):
        with pytest.raises(ValueError):
            bandwidth_report(fake_result())


class TestEnergy:
    def test_access_energy_grows_with_size(self):
        small = StructureGeometry("s", capacity_bits=8 * 1024, assoc=1, access_bits=64)
        large = StructureGeometry("l", capacity_bits=4_000_000, assoc=1, access_bits=64)
        assert access_energy(large) > access_energy(small)

    def test_access_energy_grows_with_assoc_and_width(self):
        base = StructureGeometry("b", 100_000, assoc=1, access_bits=64)
        assoc = StructureGeometry("a", 100_000, assoc=8, access_bits=64)
        wide = StructureGeometry("w", 100_000, assoc=1, access_bits=288)
        assert access_energy(assoc) > access_energy(base)
        assert access_energy(wide) > access_energy(base)

    def test_llbpx_includes_ctt(self):
        extra = {"store_reads": 10.0, "store_writes": 2.0}
        stats = {"unconditional_branches": 5000}
        llbp = energy_report(fake_result(extra=extra, stats=stats), llbp_default(scale=8))
        llbpx = energy_report(fake_result(extra=extra, stats=stats), llbpx_default(scale=8))
        assert "ctt" not in llbp.per_structure
        assert "ctt" in llbpx.per_structure
        assert llbpx.total > llbp.total  # same accesses + the CTT cost


class TestPrefetchReport:
    def test_fractions(self):
        stats = {"prefetch_timely": 80, "prefetch_late": 10, "prefetch_unused": 10}
        report = prefetch_report(fake_result(stats=stats))
        assert report.timely_fraction == pytest.approx(0.8)
        assert report.coverage == pytest.approx(0.9)
        assert report.unused_fraction == pytest.approx(0.1)

    def test_empty_run(self):
        report = prefetch_report(fake_result())
        assert report.total == 0 and report.coverage == 0.0


class TestStorage:
    def test_llbpx_overhead_small(self):
        base = llbp_budget(llbp_default(), tsl_64k())
        extended = llbp_budget(llbpx_default(), tsl_64k())
        overhead = overhead_percent(base, extended)
        assert 0 < overhead < 5  # paper: +1.8%

    def test_512k_vs_64k(self):
        small = tsl_budget(tsl_64k())
        large = tsl_budget(tsl_512k())
        assert large.total_bits > 6 * small.total_bits

    def test_rcr_extension_counted(self):
        llbp = llbp_budget(llbp_default(), tsl_64k())
        llbpx = llbp_budget(llbpx_default(), tsl_64k())
        assert llbpx.rcr_bits > llbp.rcr_bits
