"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import KNOWN_CONFIGS, KNOWN_REPORTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_workload_and_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom", "--config", "llbp"])

    def test_run_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "kafka", "--config", "magic"])

    def test_report_choices(self):
        args = build_parser().parse_args(["report", "fig12"])
        assert args.name == "fig12"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "fig99"])

    def test_workloads_csv_parsing(self):
        args = build_parser().parse_args(["report", "fig12", "--workloads", "kafka,nodeapp"])
        assert args.workloads == ["kafka", "nodeapp"]

    def test_workloads_csv_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "fig12", "--workloads", "kafka,doom"])

    def test_common_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "kafka", "--config", "llbp", "--branches", "500", "--scale", "4"]
        )
        assert args.branches == 500 and args.scale == 4


class TestExecution:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kafka" in out and "llbpx" in out

    def test_run_prints_summaries(self, capsys):
        code = main(
            ["run", "--workload", "kafka", "--config", "tsl_64k", "--config", "llbp",
             "--branches", "8000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MPKI" in out and "vs tsl_64k" in out

    def test_report_table2(self, capsys):
        assert main(["report", "table2"]) == 0
        assert "576 ROB" in capsys.readouterr().out

    def test_report_table1_small(self, capsys):
        code = main(["report", "table1", "--workloads", "kafka", "--branches", "8000"])
        assert code == 0
        assert "kafka" in capsys.readouterr().out


class TestConstants:
    def test_known_configs_cover_paper_designs(self):
        for required in ("tsl_64k", "tsl_512k", "llbp", "llbpx", "llbpx_optw"):
            assert required in KNOWN_CONFIGS

    def test_known_reports_cover_every_figure(self):
        for required in ("table1", "fig04", "fig05", "fig12", "fig13", "fig15", "fig16"):
            assert required in KNOWN_REPORTS
