"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import KNOWN_CONFIGS, KNOWN_REPORTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_workload_and_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom", "--config", "llbp"])

    def test_run_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "kafka", "--config", "magic"])

    def test_report_choices(self):
        args = build_parser().parse_args(["report", "fig12"])
        assert args.name == "fig12"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "fig99"])

    def test_workloads_csv_parsing(self):
        args = build_parser().parse_args(["report", "fig12", "--workloads", "kafka,nodeapp"])
        assert args.workloads == ["kafka", "nodeapp"]

    def test_workloads_csv_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "fig12", "--workloads", "kafka,doom"])

    def test_common_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "kafka", "--config", "llbp", "--branches", "500", "--scale", "4"]
        )
        assert args.branches == 500 and args.scale == 4

    def test_parallelism_and_cache_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "kafka", "--config", "llbp",
             "--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.jobs == 4 and args.cache_dir == "/tmp/c" and args.no_cache

    def test_parallelism_defaults(self):
        args = build_parser().parse_args(["report", "fig12"])
        assert args.jobs == 1 and args.cache_dir is None and not args.no_cache

    def test_artifact_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "kafka", "--config", "llbp",
             "--artifact-dir", "/tmp/a", "--warm-artifacts"]
        )
        assert args.artifact_dir == "/tmp/a" and args.warm_artifacts
        defaults = build_parser().parse_args(["report", "fig12"])
        assert defaults.artifact_dir is None and not defaults.warm_artifacts

    def test_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "kafka", "--config", "llbp",
             "--retries", "5", "--cell-timeout", "2.5", "--report", "/tmp/r.json"]
        )
        assert args.retries == 5 and args.cell_timeout == 2.5 and args.report == "/tmp/r.json"
        defaults = build_parser().parse_args(["report", "fig12"])
        assert defaults.retries == 3 and defaults.cell_timeout is None
        assert defaults.report is None  # the figure name lives in args.name

    def test_profile_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "kafka", "--config", "llbp", "--profile", "--profile-top", "10"]
        )
        assert args.profile and args.profile_top == 10
        defaults = build_parser().parse_args(["report", "fig12"])
        assert not defaults.profile and defaults.profile_top == 25

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["run", "--workload", "kafka", "--config", "llbp",
             "--telemetry", "/tmp/t", "--sample-interval", "5000",
             "--metrics-out", "/tmp/m.json", "--log-level", "info"]
        )
        assert args.telemetry == "/tmp/t" and args.sample_interval == 5000
        assert args.metrics_out == "/tmp/m.json" and args.log_level == "info"
        defaults = build_parser().parse_args(["report", "fig12"])
        assert defaults.telemetry is None and defaults.sample_interval == 0
        assert defaults.metrics_out is None and defaults.log_level == "warning"

    def test_obs_report_flags(self):
        args = build_parser().parse_args(["obs-report", "/tmp/t", "--top", "5"])
        assert args.command == "obs-report"
        assert args.directory == "/tmp/t" and args.top == 5


class TestExecution:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kafka" in out and "llbpx" in out

    def test_run_prints_summaries(self, capsys):
        code = main(
            ["run", "--workload", "kafka", "--config", "tsl_64k", "--config", "llbp",
             "--branches", "8000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MPKI" in out and "vs tsl_64k" in out

    def test_report_table2(self, capsys):
        assert main(["report", "table2"]) == 0
        assert "576 ROB" in capsys.readouterr().out

    def test_report_table1_small(self, capsys):
        code = main(["report", "table1", "--workloads", "kafka", "--branches", "8000"])
        assert code == 0
        assert "kafka" in capsys.readouterr().out

    def test_run_with_profile_reports_hot_functions(self, capsys):
        code = main(
            ["run", "--workload", "kafka", "--config", "tsl_64k",
             "--branches", "5000", "--profile", "--profile-top", "5"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "MPKI" in captured.out
        assert "cumulative" in captured.err  # pstats header went to stderr

    def test_run_parallel_matches_serial_output(self, capsys):
        argv = ["run", "--workload", "kafka", "--workload", "nodeapp",
                "--config", "tsl_64k", "--config", "llbp", "--branches", "5000"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_run_with_cache_dir_reuses_results(self, capsys, tmp_path):
        argv = ["run", "--workload", "kafka", "--config", "tsl_64k",
                "--branches", "5000", "--cache-dir", str(tmp_path), "--log-level", "info"]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "1 hits, 0 misses" in second.err

    def test_run_with_artifact_dir_reuses_bundles(self, capsys, tmp_path):
        argv = ["run", "--workload", "kafka", "--config", "tsl_64k",
                "--branches", "5000", "--artifact-dir", str(tmp_path), "--log-level", "info"]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "1 bundle writes" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "(0 bundle builds" in second.err

    def test_run_prints_report_summary_line(self, capsys):
        assert main(["run", "--workload", "kafka", "--config", "tsl_64k",
                     "--branches", "5000", "--log-level", "info"]) == 0
        err = capsys.readouterr().err
        assert "run report:" in err and "retries=0" in err and "quarantined=0" in err

    def test_default_log_level_keeps_stderr_quiet(self, capsys):
        assert main(["run", "--workload", "kafka", "--config", "tsl_64k",
                     "--branches", "5000"]) == 0
        captured = capsys.readouterr()
        assert "MPKI" in captured.out
        assert "run report:" not in captured.err  # info lines hidden by default

    def test_run_writes_report_json(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "report.json"
        code = main(["run", "--workload", "kafka", "--config", "tsl_64k",
                     "--branches", "5000", "--report", str(report_path),
                     "--log-level", "info"])
        assert code == 0
        assert f"run report written to {report_path}" in capsys.readouterr().err
        payload = json.loads(report_path.read_text())
        assert payload["version"] == 1
        assert payload["totals"] == {
            "cells": 1, "cached": 0, "simulated": 1, "attempts": 1,
            "retries": 0, "interruptions": 0, "failures": 0,
            "seconds": payload["totals"]["seconds"],
            "batched_groups": 0, "batched_lanes": 0, "base_warm": 0,
        }
        assert payload["simulations"] == 1
        assert payload["cells"][0]["workload"] == "kafka"

    def test_run_recovers_from_injected_crash(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv(
            "REPRO_FAULT_SPEC",
            f"ledger={tmp_path / 'ledger'};crash:kafka/tsl_64k:1",
        )
        code = main(["run", "--workload", "kafka", "--workload", "nodeapp",
                     "--config", "tsl_64k", "--branches", "5000", "--jobs", "2",
                     "--report", str(tmp_path / "r.json"), "--log-level", "info"])
        assert code == 0
        err = capsys.readouterr().err
        assert "pool_rebuilds=" in err
        payload = json.loads((tmp_path / "r.json").read_text())
        assert payload["totals"]["retries"] >= 1
        assert payload["pool_rebuilds"] >= 1

    def test_run_with_telemetry_and_obs_report(self, capsys, tmp_path):
        import json

        tel_dir = tmp_path / "tel"
        metrics_path = tmp_path / "metrics.json"
        code = main(["run", "--workload", "kafka", "--config", "tsl_64k",
                     "--branches", "5000", "--telemetry", str(tel_dir),
                     "--sample-interval", "1000", "--metrics-out", str(metrics_path)])
        assert code == 0
        capsys.readouterr()
        # telemetry directory has per-pid event + metrics files
        assert list(tel_dir.glob("events-*.jsonl"))
        assert (tel_dir / "meta.json").exists()
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["runner.simulations"] == 1
        assert metrics["counters"]["runner.branches"] == 5000
        assert "span.simulate.seconds" in metrics["histograms"]
        # sampling gauges were recorded (interval 1000 over 5000 branches)
        assert any(name.startswith("predictor.tsl_64k.") for name in metrics["gauges"])
        # obs-report renders the run with a populated span tree
        assert main(["obs-report", str(tel_dir)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out and "simulate" in out and "cli" in out
        assert "runner.simulations" in out

    def test_obs_report_missing_directory_errors(self, capsys, tmp_path):
        assert main(["obs-report", str(tmp_path / "nope")]) == 1
        assert "telemetry directory not found" in capsys.readouterr().err

    def test_run_no_cache_skips_cache(self, capsys, tmp_path):
        argv = ["run", "--workload", "kafka", "--config", "tsl_64k", "--branches",
                "5000", "--cache-dir", str(tmp_path), "--no-cache"]
        assert main(argv) == 0
        assert list(tmp_path.glob("*.json")) == []


class TestConstants:
    def test_known_configs_cover_paper_designs(self):
        for required in ("tsl_64k", "tsl_512k", "llbp", "llbpx", "llbpx_optw"):
            assert required in KNOWN_CONFIGS

    def test_known_reports_cover_every_figure(self):
        for required in ("table1", "fig04", "fig05", "fig12", "fig13", "fig15", "fig16"):
            assert required in KNOWN_REPORTS
