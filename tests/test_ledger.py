"""Run-history ledger and regression watchdog.

Covers the observability tentpole end to end: crash-safe JSONL storage
(torn tails skipped, index advisory only), automatic appends from
``run_matrix`` and the CLI session fallback, the check-before-update
baseline ordering, synthetic slowdown / digest-flip flagging, the
Prometheus text renderer's format invariants, dead-pid telemetry
compaction, and the ``repro history`` CLI verbs.
"""

import json
import os

import pytest

from repro.__main__ import main as cli_main
from repro.core import ResultCache, Runner, RunnerConfig
from repro.obs.events import compact_events
from repro.obs.ledger import (
    LEDGER_DIRNAME,
    RunLedger,
    build_run_record,
    matrix_digest,
    result_digest,
)
from repro.obs.metrics import MetricsRegistry, to_prometheus
from repro.obs.regress import (
    BASELINES_FILENAME,
    baseline_key,
    check_and_update,
    check_record,
    load_baselines,
    update_baseline,
)

BRANCHES = 4_000
SCALE = 2
WORKLOADS = ["nodeapp"]
CONFIGS = ["tsl_8k", "tsl_16k"]


def _runner(cache_dir):
    return Runner(RunnerConfig(scale=SCALE, num_branches=BRANCHES), cache=ResultCache(cache_dir))


def _bench_record(**overrides):
    """A minimal synthetic record (bench shape: no embedded report)."""
    record = {
        "source": "bench",
        "backend": "auto",
        "matrix_digest": "m" * 16,
        "result_digest": "r" * 16,
        "cells": 2,
        "cache_hit_rate": 1.0,
        "retries": 0,
        "wall_seconds": 1.0,
        "cpu_seconds": 1.0,
        "branches_per_sec": 100_000.0,
        "host": "testhost",
    }
    record.update(overrides)
    return record


# -- storage ----------------------------------------------------------------


def test_append_and_read_round_trip(tmp_path):
    ledger = RunLedger(tmp_path / LEDGER_DIRNAME)
    first = ledger.append(_bench_record())
    second = ledger.append(_bench_record(branches_per_sec=90_000.0))
    assert first["run_id"] != second["run_id"]
    records = ledger.records()
    assert [r["run_id"] for r in records] == [first["run_id"], second["run_id"]]
    assert ledger.count() == 2


def test_torn_tail_recovery(tmp_path):
    """A SIGKILL mid-append tears only the final line; reads skip it."""
    ledger = RunLedger(tmp_path / LEDGER_DIRNAME)
    kept = ledger.append(_bench_record())
    segment = next(ledger.directory.glob("segment-*.jsonl"))
    with open(segment, "a") as handle:
        handle.write('{"run_id": "torn", "ts": 99')  # no newline, no close
    records = ledger.records()
    assert [r["run_id"] for r in records] == [kept["run_id"]]
    # count() must not trust the now-stale index size for this segment
    assert ledger.count() == 1
    # appends continue cleanly after the torn line
    after = ledger.append(_bench_record())
    assert [r["run_id"] for r in ledger.records()] == [kept["run_id"], after["run_id"]]


def test_get_by_prefix_and_ambiguity(tmp_path):
    ledger = RunLedger(tmp_path / LEDGER_DIRNAME)
    record = ledger.append(_bench_record())
    assert ledger.get(record["run_id"][:6])["run_id"] == record["run_id"]
    with pytest.raises(KeyError):
        ledger.get("no-such-run")


def test_concurrent_segments_merge_in_time_order(tmp_path):
    """Records from several writer pids interleave by timestamp on read."""
    directory = tmp_path / LEDGER_DIRNAME
    ledger = RunLedger(directory)
    ledger.append(_bench_record(ts=2.0))
    foreign = directory / "segment-424242.jsonl"
    foreign.write_text(
        json.dumps(_bench_record(ts=1.0, run_id="aaa", pid=424242, regressions=[])) + "\n"
        + json.dumps(_bench_record(ts=3.0, run_id="bbb", pid=424242, regressions=[])) + "\n"
    )
    ts_order = [r["ts"] for r in ledger.records()]
    assert ts_order == sorted(ts_order)
    assert ledger.count() == 3


# -- automatic appends ------------------------------------------------------


def test_run_matrix_appends_one_record_per_run(tmp_path):
    cache_dir = tmp_path / "cache"
    for expected in (1, 2):
        runner = _runner(cache_dir)
        runner.run_matrix(WORKLOADS, CONFIGS)
        assert runner.ledger_appends == 1
        ledger = RunLedger(cache_dir / LEDGER_DIRNAME)
        assert ledger.count() == expected

    records = ledger.records()
    cold, warm = records[0], records[1]
    # identical matrices, identical outputs across the cold/warm pair
    assert cold["matrix_digest"] == warm["matrix_digest"]
    assert cold["result_digest"] == warm["result_digest"]
    assert cold["cache_hit_rate"] == 0.0
    assert warm["cache_hit_rate"] == 1.0
    # a fully cached replay must not report (or baseline) a throughput
    assert cold["branches_per_sec"] > 0
    assert warm["branches_per_sec"] == 0.0
    assert not cold["regressions"] and not warm["regressions"]
    assert cold["report"]["totals"]["simulated"] == len(WORKLOADS) * len(CONFIGS)
    assert "counters" in cold["metrics"]


def test_no_cache_means_no_ledger(tmp_path):
    runner = Runner(RunnerConfig(scale=SCALE, num_branches=BRANCHES))
    assert runner.ledger is None
    runner.run_matrix(WORKLOADS, ["tsl_8k"])
    assert runner.ledger_appends == 0


def test_session_fallback_covers_run_cells_harnesses(tmp_path):
    """Harnesses driving run_cells directly still get one session record."""
    cache_dir = tmp_path / "cache"
    runner = _runner(cache_dir)
    runner.run_cells([(WORKLOADS[0], name, {}) for name in CONFIGS])
    assert runner.ledger_appends == 0  # run_cells itself never appends
    runner.ledger_append_session(1.5, 0.5, context={"command": "report"})
    assert runner.ledger_appends == 1
    record = RunLedger(cache_dir / LEDGER_DIRNAME).records()[0]
    assert record["cells"] == len(CONFIGS)
    assert record["context"]["command"] == "report"
    # a second call is a no-op: the session is already recorded
    runner.ledger_append_session(1.5, 0.5)
    assert runner.ledger_appends == 1


def test_session_fallback_digest_is_deterministic(tmp_path):
    digests = []
    for sub in ("a", "b"):
        runner = _runner(tmp_path / sub)
        runner.run_cells([(WORKLOADS[0], name, {}) for name in CONFIGS])
        runner.ledger_append_session(1.0, 1.0)
        record = RunLedger(tmp_path / sub / LEDGER_DIRNAME).records()[0]
        digests.append((record["matrix_digest"], record["result_digest"]))
    assert digests[0] == digests[1]


# -- regression watchdog ----------------------------------------------------


def test_first_run_establishes_baseline_silently(tmp_path):
    flags = check_and_update(tmp_path, _bench_record())
    assert flags == []
    baselines = load_baselines(tmp_path)
    assert len(baselines) == 1


def test_check_happens_before_update(tmp_path):
    """A regressed run is flagged against PRE-regression history, exactly once
    -- it must not be folded into its own comparison baseline first."""
    check_and_update(tmp_path, _bench_record())
    slow = _bench_record(branches_per_sec=40_000.0)  # 60% drop
    flags = check_and_update(tmp_path, slow)
    assert [f["kind"] for f in flags] == ["throughput"]
    assert slow["regressions"] == flags  # persisted inside the record
    key = baseline_key(slow)
    folded = load_baselines(tmp_path)[key]
    # the slow run WAS folded in afterwards (EMA moved down)
    assert folded["branches_per_sec"] < 100_000.0
    assert folded["runs"] == 2


def test_digest_flip_is_correctness_alarm_and_one_shot(tmp_path):
    check_and_update(tmp_path, _bench_record())
    flipped = _bench_record(result_digest="f" * 16)
    flags = check_and_update(tmp_path, flipped)
    assert [(f["kind"], f["severity"]) for f in flags] == [("result_digest", "correctness")]
    # the baseline adopts the new digest: an identical re-run is clean
    again = _bench_record(result_digest="f" * 16)
    assert check_and_update(tmp_path, again) == []
    # ...but the historical flag stays in the flipped record itself
    assert flipped["regressions"]


def test_identical_rerun_is_clean(tmp_path):
    check_and_update(tmp_path, _bench_record())
    assert check_and_update(tmp_path, _bench_record()) == []


def test_hit_rate_and_retry_flags(tmp_path):
    check_and_update(tmp_path, _bench_record(cache_hit_rate=1.0, retries=0))
    bad = _bench_record(cache_hit_rate=0.25, retries=5, branches_per_sec=0.0)
    kinds = {f["kind"] for f in check_and_update(tmp_path, bad)}
    assert kinds == {"cache_hit_rate", "retries"}


def test_cached_replay_never_distorts_throughput_baseline(tmp_path):
    check_and_update(tmp_path, _bench_record(branches_per_sec=100_000.0))
    replay = _bench_record(branches_per_sec=0.0)  # warm cache, nothing simulated
    assert check_and_update(tmp_path, replay) == []
    key = baseline_key(replay)
    assert load_baselines(tmp_path)[key]["branches_per_sec"] == 100_000.0


def test_cached_report_gates_throughput_check():
    """A record whose report says simulated=0 is never a throughput flag."""
    baseline = update_baseline(None, _bench_record())
    replayed = _bench_record(
        branches_per_sec=1.0, report={"totals": {"simulated": 0}}
    )
    assert check_record(replayed, baseline) == []


def test_baselines_tolerate_corruption(tmp_path):
    (tmp_path / BASELINES_FILENAME).write_text("{not json")
    assert load_baselines(tmp_path) == {}
    assert check_and_update(tmp_path, _bench_record()) == []


def test_watchdog_failure_never_breaks_the_run(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    runner = _runner(cache_dir)
    import repro.obs.ledger as ledger_mod

    def boom(*args, **kwargs):
        raise RuntimeError("synthetic ledger failure")

    monkeypatch.setattr(ledger_mod, "build_run_record", boom)
    table = runner.run_matrix(WORKLOADS, ["tsl_8k"])  # must not raise
    assert table[WORKLOADS[0]]["tsl_8k"].mpki >= 0
    assert runner.ledger_appends == 0


# -- digests ----------------------------------------------------------------


def test_digest_helpers_are_order_insensitive_and_stable():
    assert matrix_digest(["b", "a"]) == matrix_digest(["a", "b"])
    assert matrix_digest(["a"]) != matrix_digest(["a", "b"])
    one = result_digest([{"x": 1, "y": 2}])
    assert one == result_digest([{"y": 2, "x": 1}])
    assert one != result_digest([{"x": 1, "y": 3}])


def test_run_record_carries_full_context(tmp_path):
    runner = _runner(tmp_path / "cache")
    cells = [(WORKLOADS[0], name, {}) for name in CONFIGS]
    results = runner.run_cells(cells)
    record = build_run_record(runner, cells, results, 2.0, 1.0, source="api", context={"k": "v"})
    assert record["source"] == "api"
    assert record["context"] == {"k": "v"}
    assert record["workloads"] == WORKLOADS
    assert record["configs"] == CONFIGS
    assert record["branches"] == len(cells) * BRANCHES
    assert record["report"]["totals"]["cells"] == len(cells)


# -- Prometheus exposition --------------------------------------------------


def test_prometheus_format_validity():
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(3)
    registry.gauge("jobs.queue_depth").set(2.0)
    registry.gauge('jobs.tenant{tenant="alice",state="queued"}').set(1.0)
    registry.histogram("jobs.wait.seconds").observe(0.004)
    registry.histogram("jobs.wait.seconds").observe(70.0)
    text = to_prometheus(registry.snapshot())

    assert text.endswith("\n")
    assert "# TYPE repro_cache_hits counter\nrepro_cache_hits 3\n" in text
    assert "repro_jobs_queue_depth 2\n" in text
    assert 'repro_jobs_tenant{tenant="alice",state="queued"} 1\n' in text

    buckets = []
    for line in text.splitlines():
        assert not line.startswith("#") or line.startswith("# TYPE"), line
        if line.startswith("repro_jobs_wait_seconds_bucket"):
            buckets.append(int(line.rsplit(" ", 1)[1]))
    # cumulative and monotone, +Inf bucket equals the observation count
    assert buckets == sorted(buckets)
    assert 'le="+Inf"} 2' in text
    assert "repro_jobs_wait_seconds_count 2" in text
    # metric names are prometheus-legal
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name = line.split("{")[0].split(" ")[0]
        assert name.replace("_", "").replace(":", "").isalnum(), name


# -- telemetry compaction ---------------------------------------------------


def test_compact_merges_dead_pids_and_spares_live_ones(tmp_path):
    dead = 999_999_999 % 4_194_304  # synthetic, certainly-dead pid
    (tmp_path / f"events-{dead}.jsonl").write_text(
        json.dumps({"ts": 1.0, "event": "dead-evt", "seq": 1}) + "\n"
    )
    (tmp_path / f"metrics-{dead}.json").write_text(
        json.dumps({"counters": {"a": 1.0}, "gauges": {}, "histograms": {}})
    )
    live = tmp_path / f"events-{os.getpid()}.jsonl"
    live.write_text(json.dumps({"ts": 2.0, "event": "live-evt"}) + "\n")

    stats = compact_events(tmp_path)
    assert stats == {"event_files": 1, "events": 1, "metrics_files": 1}
    assert live.exists()
    assert not (tmp_path / f"events-{dead}.jsonl").exists()

    from repro.obs.events import read_events
    from repro.obs.telemetry import merged_metrics

    events = read_events(tmp_path)
    assert {e["event"] for e in events} == {"dead-evt", "live-evt"}
    assert merged_metrics(tmp_path)["counters"]["a"] == 1.0

    # idempotent: merged segments are never re-compacted
    again = compact_events(tmp_path)
    assert again["event_files"] == 0 and again["metrics_files"] == 0
    assert merged_metrics(tmp_path)["counters"]["a"] == 1.0


# -- CLI --------------------------------------------------------------------


@pytest.fixture()
def two_run_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    for _ in range(2):
        argv = [
            "run", "--workload", WORKLOADS[0], "--config", CONFIGS[0], "--config", CONFIGS[1],
            "--branches", str(BRANCHES), "--scale", str(SCALE), "--cache-dir", str(cache_dir),
        ]
        assert cli_main(argv) == 0
    return cache_dir


def test_cli_history_list_and_json(two_run_cache, capsys):
    assert cli_main(["history", "list", "--cache-dir", str(two_run_cache)]) == 0
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) == 2

    assert cli_main(["history", "list", "--cache-dir", str(two_run_cache), "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert len(records) == 2
    assert records[0]["source"] == "cli"
    assert records[0]["matrix_digest"] == records[1]["matrix_digest"]
    assert records[0]["result_digest"] == records[1]["result_digest"]


def test_cli_history_show_and_diff(two_run_cache, capsys):
    ledger = RunLedger(two_run_cache / LEDGER_DIRNAME)
    run_id = ledger.records()[0]["run_id"]
    assert cli_main(["history", "show", run_id[:6], "--cache-dir", str(two_run_cache)]) == 0
    shown = json.loads(capsys.readouterr().out)
    assert shown["run_id"] == run_id

    assert cli_main(["history", "diff", "--cache-dir", str(two_run_cache)]) == 0
    out = capsys.readouterr().out
    assert "identical matrix, identical results" in out
    assert "result_digest" in out


def test_cli_history_regressions_clean_then_flagged(two_run_cache, capsys):
    assert cli_main(["history", "regressions", "--cache-dir", str(two_run_cache)]) == 0
    assert "no flagged runs" in capsys.readouterr().out

    # force a digest flip against the established baseline
    ledger = RunLedger(two_run_cache / LEDGER_DIRNAME)
    base = ledger.records()[0]
    flipped = {
        key: base[key]
        for key in (
            "source", "backend", "matrix_digest", "cells", "cache_hit_rate",
            "retries", "wall_seconds", "cpu_seconds", "branches_per_sec", "host",
        )
    }
    flipped["result_digest"] = "0badc0de0badc0de"
    ledger.prepare(flipped)
    check_and_update(ledger.directory, flipped)
    ledger.append(flipped)

    assert cli_main(["history", "regressions", "--cache-dir", str(two_run_cache)]) == 1
    out = capsys.readouterr().out
    assert "result_digest" in out


def test_cli_history_requires_a_ledger_location(capsys):
    with pytest.raises(SystemExit):
        cli_main(["history", "list"])


def test_cli_obs_compact(tmp_path, capsys):
    (tmp_path / "events-424242.jsonl").write_text(
        json.dumps({"ts": 1.0, "event": "x", "seq": 1}) + "\n"
    )
    assert cli_main(["obs-compact", str(tmp_path)]) == 0
    assert "compacted 1 event file(s)" in capsys.readouterr().out
    assert (tmp_path / "events-merged.jsonl").exists()
