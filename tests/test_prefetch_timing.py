"""Tests for LLBP's prefetch-ahead semantics (the D-UB window).

The defining trick of LLBP: when a (context-forming) unconditional
branch executes, the hash of the most recent W UBs names the context
that becomes *active* only after D further UBs -- giving the pattern
store D UB-executions of time to deliver the set.  These tests pin that
identity down and check the latency accounting around it.
"""

from repro.core.simulator import simulate
from repro.llbp import LLBP, ContextStreams, llbp_default
from repro.llbp.rcr import CONTEXT_KINDS
from repro.tage import TraceTensors, tsl_64k
from tests.conftest import TEST_SCALE
from tests.test_llbp import path_correlated_trace


def build(trace, **overrides):
    tensors = TraceTensors(trace)
    contexts = ContextStreams(tensors)
    predictor = LLBP(
        llbp_default(scale=TEST_SCALE, **overrides), tsl_64k(scale=TEST_SCALE), tensors, contexts
    )
    return predictor, tensors, contexts


class TestPrefetchWindowIdentity:
    def test_prefetch_id_matches_context_d_ubs_later(self):
        trace = path_correlated_trace(300)
        predictor, tensors, contexts = build(trace)
        distance = predictor.config.prefetch_distance
        # for every context-forming UB k, the prefetch id computed at k
        # equals the active context of any branch with exactly k+1+D UBs
        # before it
        ub_positions = [
            t for t in range(len(trace)) if tensors.kinds[t] in CONTEXT_KINDS
        ]
        checked = 0
        for k, t_ub in enumerate(ub_positions[: len(ub_positions) - distance - 2]):
            pcid = predictor._prefetch_id(k)
            # find a record whose ub_prefix == k + 1 + D
            for t in range(t_ub + 1, len(trace)):
                if predictor._ub_prefix[t] == k + 1 + distance:
                    assert predictor._context_of(t, trace.pcs[t]) == pcid
                    checked += 1
                    break
            if checked > 40:
                break
        assert checked > 10

    def test_cold_context_is_minus_one(self):
        trace = path_correlated_trace(50)
        predictor, _, _ = build(trace)
        assert predictor._context_of(0, trace.pcs[0]) == -1


class TestLatencyAccounting:
    # a 2-entry PB forces constant store traffic so the latency paths are
    # exercised (the toy trace's few contexts otherwise all stay resident)
    def test_late_hits_exist_with_tiny_distance(self):
        # D=0 removes the latency-hiding window entirely: prefetches are
        # triggered by the UB immediately preceding the context activation
        # and cannot arrive in time
        trace = path_correlated_trace(600)
        predictor, tensors, _ = build(
            trace, prefetch_distance=0, access_latency=50, pattern_buffer_entries=2
        )
        result = simulate(predictor, trace, tensors)
        assert result.extra["pb_late_hits"] > 0

    def test_generous_window_hides_latency(self):
        trace = path_correlated_trace(600)
        predictor, tensors, _ = build(
            trace, prefetch_distance=6, access_latency=1, pattern_buffer_entries=2
        )
        result = simulate(predictor, trace, tensors)
        timely = result.stats.get("prefetch_timely", 0)
        late = result.stats.get("prefetch_late", 0)
        assert timely > late

    def test_higher_latency_more_late_arrivals(self):
        trace = path_correlated_trace(600)
        fast, tensors, _ = build(trace, access_latency=1, pattern_buffer_entries=2)
        slow, _, _ = build(trace, access_latency=200, pattern_buffer_entries=2)
        fast_result = simulate(fast, trace, tensors)
        slow_result = simulate(slow, trace, tensors)
        assert (
            slow_result.extra["pb_late_hits"] >= fast_result.extra["pb_late_hits"]
        )
