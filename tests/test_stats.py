"""Tests for statistics accumulators."""

import pytest

from repro.common.stats import RatioStat, StatCounter, StatGroup, mpki


class TestMpki:
    def test_basic(self):
        assert mpki(5, 1000) == 5.0

    def test_zero_mispredictions(self):
        assert mpki(0, 1000) == 0.0

    def test_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            mpki(1, 0)


class TestStatCounter:
    def test_add_default(self):
        c = StatCounter("x")
        c.add()
        c.add(4)
        assert c.value == 5
        assert int(c) == 5

    def test_reset(self):
        c = StatCounter("x")
        c.add(3)
        c.reset()
        assert c.value == 0


class TestRatioStat:
    def test_ratio(self):
        r = RatioStat("hits")
        for hit in (True, False, True, True):
            r.record(hit)
        assert r.ratio == 0.75

    def test_empty_ratio_zero(self):
        assert RatioStat("hits").ratio == 0.0

    def test_reset(self):
        r = RatioStat("hits")
        r.record(True)
        r.reset()
        assert r.total == 0 and r.hits == 0


class TestStatGroup:
    def test_counter_created_on_first_use(self):
        g = StatGroup("g")
        g.add("events")
        g.add("events", 2)
        assert g.get("events") == 3

    def test_get_missing_is_zero(self):
        assert StatGroup("g").get("nope") == 0

    def test_as_dict_sorted(self):
        g = StatGroup("g")
        g.add("zulu")
        g.add("alpha")
        assert list(g.as_dict()) == ["alpha", "zulu"]

    def test_reset_all(self):
        g = StatGroup("g")
        g.add("a", 5)
        g.reset()
        assert g.get("a") == 0

    def test_iteration(self):
        g = StatGroup("g")
        g.add("a")
        g.add("b")
        assert len(list(g)) == 2
