"""Tests for the Fig 6-9 analysis reductions."""

import pytest

from repro.core.analysis import (
    context_profile,
    depth_sweep_relative,
    duplication_by_depth,
    useful_by_depth,
)
from repro.tage.config import HISTORY_LENGTHS


class TestContextProfile:
    def test_profile_sorted_descending(self, quick_runner):
        profile = context_profile(quick_runner, "kafka")
        assert profile.counts == sorted(profile.counts, reverse=True)

    def test_lengths_align_with_counts(self, quick_runner):
        profile = context_profile(quick_runner, "kafka")
        assert len(profile.avg_lengths) == len(profile.counts)
        assert all(
            HISTORY_LENGTHS[0] <= length <= HISTORY_LENGTHS[-1]
            for length in profile.avg_lengths
        )

    def test_fractions_bounded(self, quick_runner):
        profile = context_profile(quick_runner, "kafka")
        assert 0 <= profile.over_capacity_fraction <= 1
        assert 0 <= profile.underutilized_fraction <= 1

    def test_capacity_comes_from_config(self, quick_runner):
        profile = context_profile(quick_runner, "kafka")
        assert profile.pattern_set_capacity == 16


class TestDuplication:
    def test_depth_keys(self, quick_runner):
        dup = duplication_by_depth(quick_runner, "kafka", depths=(2, 8))
        assert set(dup) == {2, 8}

    def test_fractions_bounded(self, quick_runner):
        dup = duplication_by_depth(quick_runner, "kafka", depths=(2,))
        for per_length in dup.values():
            for value in per_length.values():
                assert 0.0 <= value < 1.0

    def test_lengths_are_canonical(self, quick_runner):
        dup = duplication_by_depth(quick_runner, "kafka", depths=(8,))
        assert set(dup[8]) <= set(HISTORY_LENGTHS)


class TestDepthSweep:
    def test_relative_to_baseline(self, quick_runner):
        raw = useful_by_depth(quick_runner, "kafka", depths=(8,))
        ratios = depth_sweep_relative(quick_runner, "kafka", depths=(8,), baseline_depth=8)
        # W=8 relative to itself is exactly 1 at every length
        for length, ratio in ratios[8].items():
            assert ratio == pytest.approx(1.0)
        assert set(ratios[8]) == {l for l, c in raw[8].items() if c > 0}

    def test_zero_baseline_lengths_skipped(self, quick_runner):
        ratios = depth_sweep_relative(quick_runner, "kafka", depths=(2,), baseline_depth=8)
        assert all(ratio >= 0 for ratio in ratios[2].values())
