"""Experiment service daemon: HTTP round-trips, quotas, cancellation.

These tests run the real asyncio HTTP server on an ephemeral port with
the real executor drain thread -- only the clock-sensitive quota test
stubs the executor (to hold a job in the running state deterministically
instead of racing a timer).
"""

import http.client
import json
import os
import threading
import time

import pytest

from repro.core import Runner, RunnerConfig
from repro.core.results_io import result_to_dict
from repro.service import (
    ExperimentService,
    ServiceClient,
    ServiceError,
    ServiceServer,
)

BRANCHES = 6_000
SCALE = 8
WORKLOADS = ["kafka", "chirper"]
CONFIGS = ["tsl_64k", "llbp"]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("service")
    service = ExperimentService(tmp / "cache", branches=BRANCHES, scale=SCALE)
    srv = ServiceServer(service, port=0)
    srv.start_background()
    yield srv
    srv.stop_background()


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(f"http://127.0.0.1:{server.port}")


def test_round_trip_bit_identical(client):
    """submit -> poll -> fetch returns exactly what run_matrix returns."""
    job = client.submit({"workloads": WORKLOADS, "configs": CONFIGS})
    assert job["state"] in ("queued", "running")
    final = client.wait(job["id"], timeout=300)
    assert final["state"] == "done"
    assert len(final["cells"]) == len(WORKLOADS) * len(CONFIGS)
    assert final["report"]["simulations"] == len(final["cells"])
    assert final["report"]["interrupted"] is False

    direct = Runner(RunnerConfig(scale=SCALE, num_branches=BRANCHES)).run_matrix(
        WORKLOADS, CONFIGS
    )
    for cell in final["cells"]:
        fetched = client.result(cell["digest"])
        expected = direct[cell["workload"]][cell["config"]]
        assert result_to_dict(fetched) == result_to_dict(expected)


def test_concurrent_clients_share_without_duplicate_work(server):
    """Two clients with overlapping matrices: every unique cell simulates once."""
    url = f"http://127.0.0.1:{server.port}"
    specs = [
        {"workloads": ["kafka"], "configs": ["tsl_8k", "tsl_16k"]},
        {"workloads": ["kafka"], "configs": ["tsl_16k", "tsl_32k"]},  # tsl_16k overlaps
    ]
    finals = [None, None]

    def submit_and_wait(index):
        own_client = ServiceClient(url)
        job = own_client.submit(specs[index])
        finals[index] = own_client.wait(job["id"], timeout=300)

    threads = [threading.Thread(target=submit_and_wait, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert all(final is not None and final["state"] == "done" for final in finals)

    unique_digests = {cell["digest"] for final in finals for cell in final["cells"]}
    assert len(unique_digests) == 3  # tsl_16k shared
    total_simulations = sum(final["report"]["simulations"] for final in finals)
    assert total_simulations == len(unique_digests)  # zero duplicate simulations

    checker = ServiceClient(url)
    for digest in unique_digests:
        assert checker.result(digest).mpki >= 0.0


def test_malformed_specs_rejected_with_400(client):
    bad_specs = [
        ["not", "an", "object"],
        {},
        {"workloads": [], "configs": CONFIGS},
        {"workloads": ["no-such-workload"], "configs": CONFIGS},
        {"workloads": WORKLOADS, "configs": ["no-such-config"]},
        {"workloads": WORKLOADS, "configs": CONFIGS, "branches": -5},
        {"workloads": WORKLOADS, "configs": CONFIGS, "backend": "quantum"},
        {"workloads": WORKLOADS, "configs": CONFIGS, "frobnicate": 1},
    ]
    for spec in bad_specs:
        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec)
        assert excinfo.value.status == 400, spec


def test_unparseable_body_and_unknown_routes(server, client):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    conn.request(
        "POST", "/jobs", body=b"{not json", headers={"Content-Type": "application/json"}
    )
    response = conn.getresponse()
    assert response.status == 400
    response.read()
    conn.close()

    with pytest.raises(ServiceError) as excinfo:
        client.job("job-999999")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.result("0" * 32)
    assert excinfo.value.status == 404


def test_torn_event_stream_tolerated(server, client):
    """A torn tail line in the event file must not break the stream."""
    job = client.submit({"workloads": ["kafka"], "configs": CONFIGS})
    final = client.wait(job["id"], timeout=300)
    assert final["state"] == "done"

    # simulate a writer killed mid-line: garbage tail in the sink file
    with open(server.service.sink.path, "a", encoding="utf-8") as handle:
        handle.write('{"ts": 1.0, "type": "job-cell", "job": "' + job["id"])

    events = client.events(job["id"])
    kinds = [event["type"] for event in events]
    assert kinds.count("job-cell") == len(CONFIGS)
    assert kinds[-1] == "job-done"
    # the cursor resumes past already-seen events
    tail = client.events(job["id"], after=events[-2]["seq"])
    assert [event["type"] for event in tail] == ["job-done"]


def test_quota_rejects_with_429_until_released(tmp_path):
    """quota=1: a tenant's second active job is rejected; others are not."""
    service = ExperimentService(tmp_path / "cache", branches=BRANCHES, scale=SCALE, quota=1)
    hold = threading.Event()
    real_execute = service._execute

    def gated_execute(job):  # hold jobs in `running` deterministically
        hold.wait(60)
        real_execute(job)

    service._execute = gated_execute
    srv = ServiceServer(service, port=0)
    srv.start_background()
    try:
        client = ServiceClient(f"http://127.0.0.1:{srv.port}")
        spec = {"workloads": ["kafka"], "configs": ["tsl_64k"]}
        first = client.submit(spec)

        with pytest.raises(ServiceError) as excinfo:
            client.submit(spec)  # same (default) tenant: over quota
        assert excinfo.value.status == 429

        other = client.submit(spec, tenant="other-team")  # different tenant: fine
        assert other["spec"]["tenant"] == "other-team"

        client.cancel(first["id"])
        client.cancel(other["id"])
        hold.set()
        final = client.wait(first["id"], timeout=60)
        assert final["state"] == "cancelled"
        # quota released: the tenant can submit again
        again = client.submit(spec)
        final = client.wait(again["id"], timeout=300)
        assert final["state"] == "done"
    finally:
        hold.set()
        srv.stop_background()


def test_healthz_reports_observability_fields(server, client):
    health = client.health()
    assert health["ok"] is True
    assert health["queue_depth"] >= 0
    assert isinstance(health["jobs"], dict)
    assert health["uptime_seconds"] > 0
    before = health["ledger_records"]

    job = client.submit({"workloads": ["kafka"], "configs": ["tsl_8k"]})
    final = client.wait(job["id"], timeout=300)
    assert final["state"] == "done"
    assert final["cells_done"] == 1

    after = client.health()
    assert after["ledger_records"] == before + 1
    assert after["jobs"].get("done", 0) >= 1


def test_service_jobs_append_ledger_records(server, client):
    before = server.service.ledger.count()
    job = client.submit({"workloads": ["chirper"], "configs": ["tsl_8k"]})
    final = client.wait(job["id"], timeout=300)
    assert final["state"] == "done"
    record = server.service.ledger.records()[-1]
    assert server.service.ledger.count() == before + 1
    assert record["source"] == "service"
    assert record["context"]["job"] == job["id"]
    assert record["context"]["tenant"] == "default"
    assert record["report"]["totals"]["cells"] == 1


def test_progress_endpoint(server, client):
    job = client.submit({"workloads": ["kafka"], "configs": CONFIGS})
    final = client.wait(job["id"], timeout=300)
    assert final["state"] == "done"
    progress = client.progress(job["id"])
    assert progress["state"] == "done"
    assert progress["cells_done"] == progress["cells_total"] == len(CONFIGS)
    assert progress["eta_seconds"] is None
    assert progress["branches_per_sec"] > 0

    with pytest.raises(ServiceError) as excinfo:
        client.progress("job-999999")
    assert excinfo.value.status == 404


def test_metrics_endpoint_prometheus_under_live_job(tmp_path):
    """/metrics is valid Prometheus text while a job is queued/running."""
    service = ExperimentService(tmp_path / "cache", branches=BRANCHES, scale=SCALE)
    hold = threading.Event()
    real_execute = service._execute

    def gated_execute(job):
        hold.wait(60)
        real_execute(job)

    service._execute = gated_execute
    srv = ServiceServer(service, port=0)
    srv.start_background()

    def metric_value(text, name):
        for line in text.splitlines():
            if line.startswith(name + " "):
                return float(line.rsplit(" ", 1)[1])
        return 0.0

    try:
        client = ServiceClient(f"http://127.0.0.1:{srv.port}")
        # the metrics registry is process-global: compare deltas, not totals
        wait_before = metric_value(client.metrics(), "repro_jobs_wait_seconds_count")
        exec_before = metric_value(client.metrics(), "repro_jobs_exec_seconds_count")
        spec = {"workloads": ["kafka"], "configs": ["tsl_8k"]}
        first = client.submit(spec, tenant="metrics-team")
        second = client.submit(spec, tenant="metrics-team")  # stays queued

        text = client.metrics()
        lines = text.splitlines()
        assert "# TYPE repro_jobs_queue_depth gauge" in lines
        assert "repro_jobs_queue_depth 1" in lines
        assert "repro_service_uptime_seconds" in text
        assert 'repro_jobs_tenant{tenant="metrics-team",state="queued"} 1' in lines
        assert 'repro_jobs_tenant{tenant="metrics-team",state="running"} 1' in lines
        assert any('_bucket{le="' in line for line in lines)
        # every non-comment line is `name[{labels}] value`
        for line in lines:
            if line.startswith("#"):
                assert line.startswith("# TYPE "), line
                continue
            name, value = line.rsplit(" ", 1)
            float(value)

        # content type is the Prometheus text exposition
        conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=10)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        assert response.status == 200
        assert "text/plain" in response.getheader("Content-Type", "")
        response.read()
        conn.close()

        hold.set()
        assert client.wait(first["id"], timeout=300)["state"] == "done"
        assert client.wait(second["id"], timeout=300)["state"] == "done"
        # histograms observed job wait + exec latency
        text = client.metrics()
        assert metric_value(text, "repro_jobs_wait_seconds_count") == wait_before + 2
        assert metric_value(text, "repro_jobs_exec_seconds_count") == exec_before + 2
        assert "repro_jobs_queue_depth 0" in text.splitlines()
    finally:
        hold.set()
        srv.stop_background()


def test_terminal_event_poll_returns_immediately(server, client):
    """A long-poll against a finished job must not sleep out its wait."""
    job = client.submit({"workloads": ["kafka"], "configs": ["tsl_8k"]})
    final = client.wait(job["id"], timeout=300)
    assert final["state"] == "done"

    start = time.monotonic()
    events = client.events(job["id"], after=0, wait=30)
    elapsed = time.monotonic() - start
    assert elapsed < 5.0, f"terminal long-poll slept {elapsed:.1f}s"
    assert events[-1]["type"] == "job-done"

    # past-the-end cursor: empty body, immediate, cursor echoed in header
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    start = time.monotonic()
    conn.request("GET", f"/jobs/{job['id']}/events?after=999999&wait=30")
    response = conn.getresponse()
    body = response.read()
    elapsed = time.monotonic() - start
    conn.close()
    assert response.status == 200
    assert body == b""
    assert elapsed < 5.0, f"empty terminal long-poll slept {elapsed:.1f}s"
    assert int(response.getheader("X-Repro-Cursor")) >= 999999


def test_startup_compacts_dead_telemetry(tmp_path):
    """Service start rolls dead-pid event/metrics files into merged segments."""
    events_dir = tmp_path / "events"
    events_dir.mkdir()
    (events_dir / "events-424242.jsonl").write_text(
        json.dumps({"ts": 1.0, "type": "job-cell", "job": "job-000001", "seq": 1}) + "\n"
    )
    (events_dir / "metrics-424242.json").write_text(
        json.dumps({"counters": {"stale": 1.0}, "gauges": {}, "histograms": {}})
    )
    service = ExperimentService(
        tmp_path / "cache", events_dir=events_dir, branches=BRANCHES, scale=SCALE
    )
    service.start()
    try:
        assert not (events_dir / "events-424242.jsonl").exists()
        assert (events_dir / "events-merged.jsonl").exists()
        from repro.obs.events import read_events

        merged = read_events(events_dir, where={"job": "job-000001"})
        assert [event["seq"] for event in merged] == [1]
    finally:
        service.stop()


def test_cancellation_releases_multihost_claims(tmp_path):
    """Cancelling a running join-mode job must leave zero claim files."""
    hosts_dir = tmp_path / "hosts"
    service = ExperimentService(
        tmp_path / "cache",
        branches=100_000,  # slow enough that cancel lands mid-run
        scale=SCALE,
        join=True,
        hosts_dir=hosts_dir,
        claim_batch=1,  # cell-granular claims: the cancel check fires per cell
    )
    srv = ServiceServer(service, port=0)
    srv.start_background()
    try:
        client = ServiceClient(f"http://127.0.0.1:{srv.port}")
        # reference backend: cells execute one at a time, so the cancel
        # lands with most of the matrix still pending (the batched path
        # can finish a whole shared-base group between poll and cancel)
        job = client.submit(
            {
                "workloads": WORKLOADS,
                "configs": ["tsl_64k", "llbp", "tsl_8k"],
                "backend": "reference",
            }
        )
        # long-poll until the first cell completes, then cancel: at least
        # four of the six cells are still pending (each takes ~1s)
        events = client.events(job["id"], wait=60)
        assert any(event["type"] == "job-cell" for event in events)
        client.cancel(job["id"])
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "cancelled"
        assert final["report"]["interrupted"] is True
        assert list(hosts_dir.glob("*.claim")) == []  # nothing left claimed
        # completed cells were published before the cancel and stay servable
        served = 0
        for cell in final["cells"]:
            try:
                client.result(cell["digest"])
                served += 1
            except ServiceError as exc:
                assert exc.status == 404
        assert 0 < served < len(final["cells"])
    finally:
        srv.stop_background()
