"""Fused-kernel equivalence: ``step`` must match ``predict``/``update`` bit for bit.

The fused hot-path kernels (``TageCore.fused_step``,
``StatisticalCorrector.fused_step``, ``TageSCL.step``, ``LLBP.step``)
re-implement the per-branch loop with hoisted locals and no prediction
records.  This suite is their correctness contract: for every workload
profile and every predictor family, in both finite and infinite TAGE
modes, a simulation driven by the fused kernel must produce *identical*
misprediction counts, statistics, derived metrics, and -- the strong
form -- identical internal predictor state down to every table entry.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

import pytest

from repro.core.simulator import simulate
from repro.llbp import LLBP, LLBPX, ContextStreams, llbp_default, llbpx_default
from repro.tage import TageSCL, TraceTensors, tsl_64k, tsl_infinite
from repro.traces.workloads import WORKLOAD_NAMES, generate_workload
from tests.conftest import TEST_SCALE

CONFIG_NAMES = ("tsl_64k", "llbp", "llbpx")
NUM_BRANCHES = 2_000


# -- state digests --------------------------------------------------------------


def _pattern_set_state(pset):
    return (
        pset.capacity,
        pset.dirty,
        tuple((p.length_index, p.tag, p.ctr, p.useful) for p in pset.patterns),
    )


def _tage_state(core):
    if core.config.infinite:
        tables = tuple(
            tuple(sorted((key, tuple(entry)) for key, entry in table.items()))
            for table in core._inf_tables
        )
    else:
        tables = (
            tuple(bytes(a) for a in core._tags),
            tuple(bytes(a) for a in core._ctrs),
            tuple(bytes(a) for a in core._useful),
        )
    return (
        tables,
        bytes(core._bimodal),
        core._use_alt,
        core._tick,
        core._alloc_rand,
    )


def _sc_state(sc):
    return (
        bytes(sc._bias),
        tuple(bytes(t) for t in sc._tables),
        bytes(sc._local_table),
        bytes(sc._local_hist),
        sc._theta,
        sc._theta_counter,
    )


def _loop_state(loop):
    return tuple(
        (e.tag, e.past_iter, e.current_iter, e.confidence, e.age, e.direction)
        for e in loop._entries
    )


def _tsl_state(tsl):
    return (
        _tage_state(tsl.tage),
        _sc_state(tsl.sc) if tsl.sc is not None else None,
        _loop_state(tsl.loop) if tsl.loop is not None else None,
    )


def _store_state(store):
    if store.infinite:
        return tuple(sorted((cid, _pattern_set_state(s)) for cid, s in store._flat.items()))
    return tuple(
        sorted(
            (si, tuple((tag, _pattern_set_state(s)) for tag, s in ways))
            for si, ways in store._sets.items()
        )
    )


def _pb_state(pb):
    # OrderedDict iteration order IS the LRU order -- part of the state
    return tuple(
        (cid, e.available_at, e.used, e.late, e.from_prefetch, e.false_path,
         _pattern_set_state(e.pattern_set))
        for cid, e in pb.items()
    )


def _ctt_state(ctt):
    return tuple(
        sorted(
            (si, tuple((tag, e.avg_hist_len, e.deep) for tag, e in ways.items()))
            for si, ways in ctt._sets.items()
        )
    )


def _predictor_state(predictor):
    if isinstance(predictor, LLBP):
        return (
            _tsl_state(predictor.tsl),
            _store_state(predictor.store),
            _pb_state(predictor.pattern_buffer),
            tuple(sorted((cid, _pattern_set_state(s)) for cid, s in predictor._direct.items())),
            tuple(sorted(predictor.tracker.useful.items())) if predictor.tracker else None,
            _ctt_state(predictor.ctt) if isinstance(predictor, LLBPX) else None,
        )
    return _tsl_state(predictor)


# -- construction ---------------------------------------------------------------


def _build(config_name: str, tage_config, tensors, contexts):
    if config_name == "tsl_64k":
        return TageSCL(tage_config, tensors)
    if config_name == "llbp":
        return LLBP(llbp_default(scale=TEST_SCALE), tage_config, tensors, contexts)
    return LLBPX(llbpx_default(scale=TEST_SCALE), tage_config, tensors, contexts)


@pytest.fixture(scope="module")
def bundles() -> Dict[str, tuple]:
    """One small (trace, tensors, contexts) bundle per workload profile."""
    out = {}
    for name in WORKLOAD_NAMES:
        trace = generate_workload(name, num_branches=NUM_BRANCHES, use_cache=False)
        tensors = TraceTensors(trace)
        out[name] = (trace, tensors, ContextStreams(tensors))
    return out


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("mode", ("finite", "infinite"))
def test_fused_step_is_bit_identical(bundles, workload, config_name, mode):
    trace, tensors, contexts = bundles[workload]
    if mode == "finite":
        tage_config = tsl_64k(scale=TEST_SCALE)
    else:
        tage_config = replace(tsl_infinite(), name=f"tsl_inf_{config_name}")

    fused_predictor = _build(config_name, tage_config, tensors, contexts)
    fused = simulate(fused_predictor, trace, tensors, use_step=True)
    reference_predictor = _build(config_name, tage_config, tensors, contexts)
    reference = simulate(reference_predictor, trace, tensors, use_step=False)

    assert fused.mispredictions == reference.mispredictions
    assert fused.warmup_mispredictions == reference.warmup_mispredictions
    assert fused.conditional_branches == reference.conditional_branches
    assert fused.stats == reference.stats
    assert fused.extra == reference.extra
    assert _predictor_state(fused_predictor) == _predictor_state(reference_predictor)


def test_use_step_true_requires_kernel(bundles):
    trace, tensors, _ = bundles[WORKLOAD_NAMES[0]]

    class Bare:
        name = "bare"

        def predict(self, t, pc):
            raise AssertionError("unused")

        def update(self, t, pc, taken, prediction):
            raise AssertionError("unused")

        def on_unconditional(self, t, pc, target):
            pass

    with pytest.raises(ValueError, match="no fused step"):
        simulate(Bare(), trace, tensors, use_step=True)
