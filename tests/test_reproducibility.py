"""Golden-value reproducibility tests.

The reproduction's claims rest on determinism: the same (workload, seed,
length) must generate bit-identical traces across processes and versions.
These hashes pin the committed generator behaviour; if a change to the
generator or behaviour models is *intentional*, regenerate the constants
(see the commands in each test) and re-run the benchmark suite so
EXPERIMENTS.md stays in sync.
"""

import hashlib

from repro.traces import generate_workload

GOLDEN_TRACE_HASHES = {
    "kafka": "408356a506b3348c",
    "nodeapp": "6260d57eb547d0b3",
}


def trace_digest(trace) -> str:
    # aslists normalises list- and array-backed columns to the identical
    # Python-scalar form, so these hashes are invariant to the backing
    # (they pinned list columns before traces became numpy-backed).
    h = hashlib.sha256()
    h.update(bytes(str(trace.aslists("pcs", "taken", "kinds", "targets")), "utf8"))
    return h.hexdigest()[:16]


class TestGoldenTraces:
    def test_trace_hashes_stable(self):
        """Regenerate with:
        python -c "from tests.test_reproducibility import *; \
        [print(w, trace_digest(generate_workload(w, num_branches=5000, use_cache=False))) \
        for w in GOLDEN_TRACE_HASHES]"
        """
        for workload, expected in GOLDEN_TRACE_HASHES.items():
            trace = generate_workload(workload, num_branches=5000, use_cache=False)
            assert trace_digest(trace) == expected, (
                f"{workload} trace changed; if intentional, update "
                "GOLDEN_TRACE_HASHES and re-run the benchmark suite"
            )

    def test_regeneration_is_deterministic(self):
        a = generate_workload("kafka", num_branches=3000, use_cache=False)
        b = generate_workload("kafka", num_branches=3000, use_cache=False)
        assert trace_digest(a) == trace_digest(b)
