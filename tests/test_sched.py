"""Elastic multi-host scheduling: claims, reaping, cooperative drains.

The tentpole guarantees pinned here:

* two processes racing over one claim set partition it **exactly once**
  (no cell claimed twice, no cell unclaimed);
* a claimant that dies holding claims has them reaped and its cells
  re-run, and the final matrix is **bit-identical** to a single-host
  run;
* two cooperating hosts drain a cold matrix with **zero duplicate
  simulations** and results bit-identical to a single-host run.

The tests fork real processes (claims are an inter-process protocol);
everything is same-machine, so reaping exercises the authoritative
``pid_alive`` path.  Workloads are short (8K branches) to keep this in
tier-1 time.
"""

import multiprocessing
import os
import time
import unittest

import pytest

from repro.core import (
    CoopScheduler,
    HostLedger,
    ResultCache,
    Runner,
    RunnerConfig,
)
from repro.core.sched import drain_cooperative

BRANCHES = 8_000
WORKLOADS = ["kafka", "chirper"]
CONFIGS = ["tsl_64k", "llbp"]


def _mpki_table(matrix):
    return {f"{w}/{c}": matrix[w][c].mpki for w in matrix for c in matrix[w]}


def _solo_matrix():
    runner = Runner(RunnerConfig(num_branches=BRANCHES))
    return _mpki_table(runner.run_matrix(WORKLOADS, CONFIGS))


def _claim_racer(root, tokens, host_id, barrier, queue):
    ledger = HostLedger(root, host_id=host_id)
    barrier.wait(timeout=30)
    won = [token for token in tokens if ledger.claim(token)]
    queue.put((host_id, won))


def _coop_host(cache_dir, host_id, queue, claim_batch=1):
    runner = Runner(RunnerConfig(num_branches=BRANCHES), cache=ResultCache(cache_dir))
    ledger = HostLedger(os.path.join(cache_dir, ".hosts"), host_id=host_id)
    runner.coop = CoopScheduler(ledger, claim_batch=claim_batch)
    matrix = runner.run_matrix(WORKLOADS, CONFIGS)
    queue.put(
        (
            host_id,
            runner.sim_count,
            runner.report.claims,
            runner.report.peer_results,
            _mpki_table(matrix),
        )
    )


def _doomed_claimant(cache_dir, tokens, first_cell, queue):
    """Claim every token, publish ONE result, then die holding the rest."""
    runner = Runner(RunnerConfig(num_branches=BRANCHES), cache=ResultCache(cache_dir))
    ledger = HostLedger(os.path.join(cache_dir, ".hosts"), host_id="doomed")
    ledger.beat()
    for token in tokens:
        ledger.claim(token)
    workload, name = first_cell
    runner.run_one(workload, name)  # publishes to the shared cache
    ledger.release(runner._digest(workload, name, {}))
    queue.put("claims-held")
    queue.close()
    queue.join_thread()  # flush before the abrupt exit
    os._exit(0)  # dies without releasing the remaining claims


class TestHostLedger:
    def test_claim_is_exclusive(self, tmp_path):
        ledger = HostLedger(tmp_path, host_id="a")
        assert ledger.claim("cell-1")
        assert not ledger.claim("cell-1")
        assert ledger.claim("cell-2")

    def test_release_makes_reclaimable(self, tmp_path):
        ledger = HostLedger(tmp_path, host_id="a")
        assert ledger.claim("cell-1")
        ledger.release("cell-1")
        assert ledger.claim("cell-1")

    def test_own_live_claim_never_stale(self, tmp_path):
        ledger = HostLedger(tmp_path, host_id="a", heartbeat_ttl=0.0)
        ledger.claim("cell-1")
        assert ledger.reap_stale(["cell-1"]) == 0
        assert not ledger.claim("cell-1")

    def test_live_peer_claim_not_reaped(self, tmp_path):
        peer = HostLedger(tmp_path, host_id="peer")
        peer.beat()
        peer.claim("cell-1")
        me = HostLedger(tmp_path, host_id="me")
        assert me.reap_stale(["cell-1"]) == 0

    def test_dead_pid_claim_reaped_immediately(self, tmp_path):
        # a forked child claims and exits; same-machine reaping needs no TTL
        def child(root):
            HostLedger(root, host_id="short-lived").claim("cell-1")

        proc = multiprocessing.Process(target=child, args=(tmp_path,))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 0
        me = HostLedger(tmp_path, host_id="me")
        assert me.reap_stale(["cell-1"]) == 1
        assert me.claim("cell-1")

    def test_heartbeat_lists_fresh_hosts(self, tmp_path):
        a = HostLedger(tmp_path, host_id="a")
        b = HostLedger(tmp_path, host_id="b")
        a.beat()
        b.beat()
        assert a.hosts() == ["a", "b"]


class TestClaimContention:
    def test_two_processes_partition_exactly_once(self, tmp_path):
        tokens = [f"cell-{i}" for i in range(24)]
        barrier = multiprocessing.Barrier(2)
        queue = multiprocessing.Queue()
        procs = [
            multiprocessing.Process(
                target=_claim_racer, args=(tmp_path, tokens, f"h{i}", barrier, queue)
            )
            for i in range(2)
        ]
        for proc in procs:
            proc.start()
        outcomes = dict(queue.get(timeout=60) for _ in procs)
        for proc in procs:
            proc.join(timeout=30)
        all_won = [token for won in outcomes.values() for token in won]
        assert sorted(all_won) == sorted(tokens)  # every cell claimed...
        assert len(all_won) == len(set(all_won))  # ...by exactly one host


class TestCooperativeDrain(unittest.TestCase):
    def test_two_hosts_zero_duplicates_bit_identical(self):
        import tempfile

        with tempfile.TemporaryDirectory() as cache_dir:
            queue = multiprocessing.Queue()
            procs = [
                multiprocessing.Process(target=_coop_host, args=(cache_dir, f"h{i}", queue))
                for i in range(2)
            ]
            for proc in procs:
                proc.start()
            outcomes = [queue.get(timeout=280) for _ in procs]
            for proc in procs:
                proc.join(timeout=30)
            total_cells = len(WORKLOADS) * len(CONFIGS)
            total_sims = sum(sims for _, sims, _, _, _ in outcomes)
            self.assertEqual(total_sims, total_cells)  # zero duplicates
            total_claims = sum(claims for _, _, claims, _, _ in outcomes)
            # every cell claimed at least once (a claim raced against a
            # publish may add a claim that resolves from cache -- still
            # zero duplicate simulations)
            self.assertGreaterEqual(total_claims, total_cells)
            self.assertEqual(outcomes[0][4], outcomes[1][4])  # hosts agree
            self.assertEqual(outcomes[0][4], _solo_matrix())  # == single-host

    def test_killed_claimant_cells_reclaimed_and_rerun(self):
        import tempfile

        with tempfile.TemporaryDirectory() as cache_dir:
            # the doomed host claims every cell, completes one, and dies
            # (os._exit) still holding the other claims
            cells = [(w, c) for w in WORKLOADS for c in CONFIGS]
            probe = Runner(RunnerConfig(num_branches=BRANCHES))
            tokens = [probe._digest(w, c, {}) for w, c in cells]
            queue = multiprocessing.Queue()
            doomed = multiprocessing.Process(
                target=_doomed_claimant, args=(cache_dir, tokens, cells[0], queue)
            )
            doomed.start()
            self.assertEqual(queue.get(timeout=280), "claims-held")
            doomed.join(timeout=30)
            hosts_dir = os.path.join(cache_dir, ".hosts")
            held = [t for t in tokens if (HostLedger(hosts_dir).claim_path(t)).exists()]
            self.assertEqual(len(held), len(cells) - 1)

            # the survivor must reap the dead host's claims and finish
            runner = Runner(RunnerConfig(num_branches=BRANCHES), cache=ResultCache(cache_dir))
            runner.coop = CoopScheduler(HostLedger(hosts_dir, host_id="survivor"))
            matrix = runner.run_matrix(WORKLOADS, CONFIGS)
            self.assertEqual(runner.report.reaped_claims, len(cells) - 1)
            # the doomed host's completed cell arrives as an up-front
            # cache hit, so only the reclaimed cells simulate
            self.assertEqual(runner.sim_count, len(cells) - 1)
            self.assertEqual(_mpki_table(matrix), _solo_matrix())  # bit-identical

    def test_drain_requires_cache(self):
        runner = Runner(RunnerConfig(num_branches=BRANCHES))
        import tempfile

        with tempfile.TemporaryDirectory() as hosts_dir:
            runner.coop = CoopScheduler(HostLedger(hosts_dir, host_id="a"))
            with self.assertRaises(ValueError):
                list(drain_cooperative(runner, [("kafka", "tsl_64k", {})]))


class TestFileAgeClamp:
    def test_future_mtimes_clamp_to_zero(self):
        # clock skew on shared filesystems can stamp files in the future;
        # a negative age must never make a claim look fresh forever
        from repro.core.sched import file_age

        now = time.time()
        assert file_age(now + 3600) == 0.0
        assert file_age(100.0, now=90.0) == 0.0
        assert file_age(90.0, now=100.0) == pytest.approx(10.0)
        assert file_age(now - 5) >= 5.0

    def test_reap_tolerates_future_claim_file(self, tmp_path):
        # a claim stamped in the future by a skewed writer is still
        # reapable once its owner pid is dead (same-machine probe)
        import json as _json

        ledger = HostLedger(tmp_path, host_id="skewed")
        digest = "f" * 32
        assert ledger.claim(digest)
        # fake a dead owner: rewrite the claim with an impossible pid,
        # stamped an hour in the future
        path = ledger.claim_path(digest)
        owner = _json.loads(path.read_text())
        owner["host"], owner["pid"] = "ghost", 2**22 + 1  # beyond real pid space
        path.write_text(_json.dumps(owner))
        future = time.time() + 3600
        os.utime(path, (future, future))
        assert ledger.reap_stale([digest]) == 1
        assert not path.exists()


class TestSingleHostUnchanged:
    def test_coop_single_host_equals_plain(self, tmp_path):
        # one host with --join behaves exactly like a plain cached run
        plain = _solo_matrix()
        runner = Runner(RunnerConfig(num_branches=BRANCHES), cache=ResultCache(tmp_path / "c"))
        runner.coop = CoopScheduler(HostLedger(tmp_path / "c" / ".hosts", host_id="only"))
        matrix = runner.run_matrix(WORKLOADS, CONFIGS)
        assert _mpki_table(matrix) == plain
        assert runner.report.claims == len(WORKLOADS) * len(CONFIGS)
        assert runner.report.peer_results == 0
        # warm re-run: everything cached, nothing claimed
        rerun = Runner(RunnerConfig(num_branches=BRANCHES), cache=ResultCache(tmp_path / "c"))
        rerun.coop = CoopScheduler(HostLedger(tmp_path / "c" / ".hosts", host_id="again"))
        assert _mpki_table(rerun.run_matrix(WORKLOADS, CONFIGS)) == plain
        assert rerun.sim_count == 0
        assert rerun.report.claims == 0


if __name__ == "__main__":
    unittest.main()
