"""Trace (de)serialisation tests, including a property-based round-trip.

Loaded traces are numpy-backed (no element-by-element list rebuild), so
column comparisons go through ``Trace.aslists``, which normalises either
backing to plain Python scalars.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.traces.io import load_trace, save_trace
from repro.traces.record import BranchKind, Trace

COLUMNS = ("pcs", "targets", "kinds", "taken", "inst_gaps")


def assert_same_columns(a: Trace, b: Trace) -> None:
    assert a.aslists(*COLUMNS) == b.aslists(*COLUMNS)


def test_roundtrip_basic(tmp_path):
    trace = Trace(name="demo", seed=5, meta={"workload": "demo", "n": 2})
    trace.append(0x100, 0x200, BranchKind.COND, True, 3)
    trace.append(0x104, 0x400, BranchKind.CALL, True, 0)
    path = tmp_path / "demo.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == "demo"
    assert loaded.seed == 5
    assert loaded.meta == {"workload": "demo", "n": 2}
    assert_same_columns(loaded, trace)
    assert loaded == trace  # Trace.__eq__ compares across backings


def test_loaded_columns_stay_numpy(tmp_path):
    trace = Trace(name="s")
    trace.append(4, 8, BranchKind.JUMP, True, 0)
    save_trace(trace, tmp_path / "t.npz")
    loaded = load_trace(tmp_path / "t.npz")
    for column in COLUMNS:
        assert isinstance(getattr(loaded, column), np.ndarray)


def test_load_appends_npz_suffix(tmp_path):
    trace = Trace(name="s")
    trace.append(4, 8, BranchKind.JUMP, True, 0)
    save_trace(trace, tmp_path / "t")  # numpy appends .npz
    loaded = load_trace(tmp_path / "t")
    assert loaded.aslists("pcs")[0] == [4]


def test_load_retries_suffix_when_path_is_directory(tmp_path):
    # a directory named like the extensionless path must not shadow the
    # archive next to it
    (tmp_path / "t").mkdir()
    trace = Trace(name="s")
    trace.append(4, 8, BranchKind.JUMP, True, 0)
    save_trace(trace, tmp_path / "t")  # writes t.npz
    loaded = load_trace(tmp_path / "t")
    assert loaded.aslists("pcs")[0] == [4]


def test_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_trace(tmp_path / "nothing.npz")


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    rows=st.lists(
        st.tuples(
            st.integers(0, 2**40),
            st.integers(0, 2**40),
            st.sampled_from(list(BranchKind)),
            st.booleans(),
            st.integers(0, 50),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_roundtrip_property(tmp_path, rows):
    trace = Trace(name="prop", seed=1)
    for pc, target, kind, taken, gap in rows:
        trace.append(pc, target, kind, taken if kind == BranchKind.COND else True, gap)
    path = tmp_path / "prop.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert_same_columns(loaded, trace)
