"""Tests for the pattern buffer (LRU + transfer latency)."""

from repro.llbp.pattern import PatternSet
from repro.llbp.pattern_buffer import PatternBuffer


def ps():
    return PatternSet(capacity=16)


class TestPatternBuffer:
    def test_insert_and_get(self):
        pb = PatternBuffer(4)
        pattern_set = ps()
        pb.insert(1, pattern_set, available_at=10, from_prefetch=True)
        got, late = pb.get(1, now=10)
        assert got is pattern_set and not late

    def test_in_flight_is_late(self):
        pb = PatternBuffer(4)
        pb.insert(1, ps(), available_at=20, from_prefetch=True)
        got, late = pb.get(1, now=15)
        assert got is None and late
        assert pb.peek(1).late

    def test_late_then_used(self):
        pb = PatternBuffer(4)
        pb.insert(1, ps(), available_at=20, from_prefetch=True)
        pb.get(1, now=15)
        got, late = pb.get(1, now=25)
        assert got is not None and not late
        entry = pb.peek(1)
        assert entry.used and entry.late

    def test_missing_context(self):
        pb = PatternBuffer(4)
        got, late = pb.get(99, now=0)
        assert got is None and not late

    def test_lru_eviction_order(self):
        pb = PatternBuffer(2)
        pb.insert(1, ps(), 0, from_prefetch=False)
        pb.insert(2, ps(), 0, from_prefetch=False)
        pb.get(1, now=5)  # touch 1 so 2 becomes LRU
        evicted = pb.insert(3, ps(), 0, from_prefetch=False)
        assert evicted is not None and evicted[0] == 2

    def test_reinsert_refreshes_availability(self):
        pb = PatternBuffer(4)
        pb.insert(1, ps(), available_at=50, from_prefetch=True)
        pb.insert(1, ps(), available_at=10, from_prefetch=True)
        got, late = pb.get(1, now=20)
        assert got is not None

    def test_drain_empties_buffer(self):
        pb = PatternBuffer(4)
        for cid in range(3):
            pb.insert(cid, ps(), 0, from_prefetch=True)
        drained = list(pb.drain())
        assert len(drained) == 3
        assert len(pb) == 0

    def test_capacity_respected(self):
        pb = PatternBuffer(8)
        for cid in range(50):
            pb.insert(cid, ps(), 0, from_prefetch=False)
        assert len(pb) == 8
        assert pb.stats.get("evictions") == 42

    def test_rejects_zero_capacity(self):
        import pytest

        with pytest.raises(ValueError):
            PatternBuffer(0)

    def test_contains(self):
        pb = PatternBuffer(2)
        pb.insert(5, ps(), 0, from_prefetch=False)
        assert 5 in pb and 6 not in pb
