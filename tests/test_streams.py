"""Tests for vectorised stream precomputation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import FoldedHistory
from repro.tage.config import HISTORY_LENGTHS
from repro.tage.streams import (
    TraceTensors,
    build_index_streams,
    build_tag_streams,
    folded_stream,
    history_bits,
    xor_fold,
)
from repro.traces.record import BranchKind, Trace
from tests.conftest import make_mixed_trace


class TestFoldedStream:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 200),
        length=st.integers(1, 64),
        width=st.integers(1, 14),
        seed=st.integers(0, 10_000),
    )
    def test_matches_incremental(self, n, length, width, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=n).astype(np.uint8)
        vec = folded_stream(bits, length, width)
        fh = FoldedHistory(length, width)
        for t in range(n):
            assert fh.value == vec[t]
            old = int(bits[t - length]) if t - length >= 0 else 0
            fh.update(int(bits[t]), old)

    def test_longer_than_trace(self):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        out = folded_stream(bits, 3000, 11)
        assert len(out) == 3

    def test_rejects_bad_args(self):
        bits = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError):
            folded_stream(bits, 0, 4)
        with pytest.raises(ValueError):
            folded_stream(bits, 4, 0)


class TestXorFold:
    def test_identity_when_wide_enough(self):
        values = np.array([5, 9, 1000], dtype=np.int64)
        assert list(xor_fold(values, 14, 14)) == [5, 9, 1000]

    def test_fold_preserves_low_bit_dependence(self):
        values = np.arange(1 << 10, dtype=np.int64)
        folded = xor_fold(values, 20, 5)
        assert folded.max() < 32
        assert len(np.unique(folded)) == 32

    def test_fold_depends_on_high_bits(self):
        a = xor_fold(np.array([0], dtype=np.int64), 20, 6)[0]
        b = xor_fold(np.array([1 << 18], dtype=np.int64), 20, 6)[0]
        assert a != b


class TestHistoryBits:
    def test_conditional_uses_outcome(self):
        trace = Trace()
        trace.append(0x100, 0x200, BranchKind.COND, True, 0)
        trace.append(0x100, 0x200, BranchKind.COND, False, 0)
        bits = history_bits(trace)
        assert bits[0] == 1 and bits[1] == 0

    def test_unconditional_uses_target(self):
        trace = Trace()
        trace.append(0x100, 0x0, BranchKind.CALL, True, 0)
        trace.append(0x100, 0x4, BranchKind.CALL, True, 0)
        bits = history_bits(trace)
        # different targets can produce different history bits
        assert set(bits) <= {0, 1}


class TestTraceTensors:
    def test_instr_index_monotonic(self):
        tensors = TraceTensors(make_mixed_trace(500))
        diffs = np.diff(tensors.instr_index)
        assert (diffs >= 1).all()

    def test_fold_cache_reused(self):
        tensors = TraceTensors(make_mixed_trace(200))
        a = tensors.fold(37, 14)
        b = tensors.fold(37, 14)
        assert a is b
        tensors.release_folds()
        c = tensors.fold(37, 14)
        assert c is not a
        assert (c == a).all()


class TestTableStreams:
    def test_shapes_and_ranges(self):
        tensors = TraceTensors(make_mixed_trace(300))
        idx = build_index_streams(tensors, HISTORY_LENGTHS, [7] * len(HISTORY_LENGTHS))
        tag = build_tag_streams(tensors, HISTORY_LENGTHS, [13] * len(HISTORY_LENGTHS))
        assert len(idx) == len(HISTORY_LENGTHS)
        assert all(len(row) == tensors.num_records for row in idx)
        assert all(0 <= v < 128 for v in idx[0])
        assert all(0 <= v < 8192 for v in tag[20])

    def test_mismatched_args_rejected(self):
        tensors = TraceTensors(make_mixed_trace(50))
        with pytest.raises(ValueError):
            build_index_streams(tensors, [6, 12], [7])
        with pytest.raises(ValueError):
            build_tag_streams(tensors, [6], [13, 13])

    def test_tables_produce_distinct_streams(self):
        tensors = TraceTensors(make_mixed_trace(300))
        idx = build_index_streams(tensors, [6, 3000], [7, 7])
        assert list(idx[0]) != list(idx[1])
