"""Behavioural tests for LLBP-X."""

from dataclasses import replace

import pytest

from repro.core.simulator import simulate
from repro.llbp import DEEP_BIT, LLBPX, ContextStreams, llbpx_default
from repro.tage import TraceTensors, tsl_64k
from repro.tage.config import DEEP_HISTORY_LENGTHS, SHALLOW_HISTORY_LENGTHS, history_length_index
from tests.conftest import TEST_SCALE
from tests.test_llbp import path_correlated_trace


def build_llbpx(trace, tensors=None, **overrides):
    tensors = tensors or TraceTensors(trace)
    contexts = ContextStreams(tensors)
    config = llbpx_default(scale=TEST_SCALE, **overrides)
    return LLBPX(config, tsl_64k(scale=TEST_SCALE), tensors, contexts), tensors


class TestConfig:
    def test_depth_defaults(self):
        config = llbpx_default()
        assert config.shallow_depth == 2
        assert config.deep_depth == 64

    def test_shallow_deep_length_ranges(self):
        config = llbpx_default()
        assert config.shallow_lengths == SHALLOW_HISTORY_LENGTHS
        assert config.deep_lengths == DEEP_HISTORY_LENGTHS

    def test_ranges_disabled_fall_back(self):
        config = replace(llbpx_default(), use_history_ranges=False)
        assert config.shallow_lengths == config.history_lengths
        assert config.deep_lengths == config.history_lengths

    def test_depth_ordering_enforced(self):
        with pytest.raises(ValueError):
            llbpx_default(shallow_depth=64, deep_depth=2)

    def test_overflow_threshold_bounds(self):
        with pytest.raises(ValueError):
            llbpx_default(overflow_threshold=17)

    def test_ctt_scaling(self):
        assert llbpx_default(scale=8).effective_ctt_entries == 6144 // 8

    def test_storage_overhead_over_llbp(self):
        from repro.llbp import llbp_default

        assert llbpx_default().storage_bits() > llbp_default().storage_bits()


class TestDepthSelection:
    def test_default_context_is_shallow(self):
        trace = path_correlated_trace(200)
        predictor, tensors = build_llbpx(trace)
        # find a record with enough UB history
        t = next(i for i in range(len(trace)) if predictor._ub_prefix[i] > 10)
        cid = predictor._context_of(t, trace.pcs[t])
        assert cid != -1 and not (cid & DEEP_BIT)

    def test_oracle_forces_deep(self):
        trace = path_correlated_trace(200)
        tensors = TraceTensors(trace)
        shallow_pred, _ = build_llbpx(trace, tensors)
        t = next(i for i in range(len(trace)) if shallow_pred._ub_prefix[i] > 10)
        shallow_id = shallow_pred._shallow_context_of(t)
        oracle_pred, _ = build_llbpx(trace, tensors, oracle_depths={shallow_id: True})
        cid = oracle_pred._context_of(t, trace.pcs[t])
        assert cid & DEEP_BIT

    def test_deep_and_shallow_id_spaces_disjoint(self):
        trace = path_correlated_trace(200)
        predictor, _ = build_llbpx(trace)
        t = next(i for i in range(len(trace)) if predictor._ub_prefix[i] > 70)
        shallow = predictor._shallow_context_of(t)
        assert shallow < DEEP_BIT

    def test_active_indices_by_depth(self):
        trace = path_correlated_trace(50)
        predictor, _ = build_llbpx(trace)
        shallow_idx = predictor._active_indices_for(123)
        deep_idx = predictor._active_indices_for(123 | DEEP_BIT)
        assert shallow_idx == [history_length_index(l) for l in SHALLOW_HISTORY_LENGTHS]
        assert deep_idx == [history_length_index(l) for l in DEEP_HISTORY_LENGTHS]

    def test_allocation_dropped_outside_range(self):
        trace = path_correlated_trace(50)
        predictor, _ = build_llbpx(trace)
        # deep context attempting a too-short length -> dropped
        target, attempted = predictor._choose_allocation_index(DEEP_BIT | 1, provider_index=-1)
        assert target == -1 and attempted == 0
        # shallow context attempting a too-long length -> dropped
        target, attempted = predictor._choose_allocation_index(1, provider_index=17)
        assert target == -1 and attempted == 18

    def test_allocation_inside_range_kept(self):
        trace = path_correlated_trace(50)
        predictor, _ = build_llbpx(trace)
        target, attempted = predictor._choose_allocation_index(1, provider_index=3)
        assert target == attempted == 4


class TestAdaptation:
    def test_simulation_populates_ctt(self, small_bundle):
        trace, tensors, contexts = small_bundle
        predictor = LLBPX(
            llbpx_default(scale=TEST_SCALE), tsl_64k(scale=TEST_SCALE), tensors, contexts
        )
        result = simulate(predictor, trace, tensors)
        assert result.extra["ctt_tracked"] > 0

    def test_oracle_disables_adaptation(self, small_bundle):
        trace, tensors, contexts = small_bundle
        predictor = LLBPX(
            replace(llbpx_default(scale=TEST_SCALE), oracle_depths={}),
            tsl_64k(scale=TEST_SCALE),
            tensors,
            contexts,
        )
        result = simulate(predictor, trace, tensors)
        assert result.extra["ctt_tracked"] == 0
        assert result.stats.get("depth_to_deep", 0) == 0

    def test_deep_history_records_transitions(self, small_bundle):
        trace, tensors, contexts = small_bundle
        # aggressive thresholds to force transitions on a small trace
        config = llbpx_default(
            scale=TEST_SCALE, history_threshold=6, hist_counter_step=8, overflow_threshold=1
        )
        predictor = LLBPX(config, tsl_64k(scale=TEST_SCALE), tensors, contexts)
        result = simulate(predictor, trace, tensors)
        assert result.stats.get("depth_to_deep", 0) > 0
        assert len(predictor.deep_history) > 0

    def test_collect_extra_reports_depth_state(self, small_bundle):
        trace, tensors, contexts = small_bundle
        predictor = LLBPX(
            llbpx_default(scale=TEST_SCALE), tsl_64k(scale=TEST_SCALE), tensors, contexts
        )
        result = simulate(predictor, trace, tensors)
        for key in ("ctt_tracked", "ctt_deep", "deep_contexts_seen"):
            assert key in result.extra


class TestAccuracy:
    def test_llbpx_improves_over_baseline(self, small_bundle):
        trace, tensors, contexts = small_bundle
        from repro.tage import TageSCL

        baseline = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors)
        predictor = LLBPX(
            llbpx_default(scale=TEST_SCALE), tsl_64k(scale=TEST_SCALE), tensors, contexts
        )
        llbpx = simulate(predictor, trace, tensors)
        assert llbpx.mispredictions < baseline.mispredictions
