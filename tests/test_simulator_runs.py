"""Equivalence tests for the run-based simulation loop.

``simulate`` iterates precomputed same-kind record runs (split at the
warmup boundary) instead of testing ``kinds[t] == COND`` and
``t >= warmup_end`` per record.  These tests pin that the optimisation
changes nothing: a straight per-record reference loop produces the exact
same ``SimulationResult`` for both a TAGE-SC-L and an LLBP predictor.
"""

import numpy as np

from repro.core import Runner, RunnerConfig
from repro.core.simulator import SimulationResult, simulate
from repro.tage.streams import TraceTensors
from repro.traces import generate_workload
from repro.traces.record import BranchKind

SMALL = RunnerConfig(scale=4, num_branches=3000)


def reference_simulate(predictor, trace, tensors, warmup_fraction=0.25) -> SimulationResult:
    """The original per-record loop, kept verbatim as the oracle."""
    cond_kind = int(BranchKind.COND)
    pcs, kinds, takens, targets = trace.pcs, trace.kinds, trace.taken, trace.targets
    n = len(pcs)
    warmup_end = int(n * warmup_fraction)
    mispredictions = warmup_mispredictions = cond_measured = 0
    for t in range(n):
        if kinds[t] == cond_kind:
            pc, taken = pcs[t], takens[t]
            prediction = predictor.predict(t, pc)
            if prediction.pred != taken:
                if t >= warmup_end:
                    mispredictions += 1
                else:
                    warmup_mispredictions += 1
            if t >= warmup_end:
                cond_measured += 1
            predictor.update(t, pc, taken, prediction)
        else:
            predictor.on_unconditional(t, pcs[t], targets[t])
    instr = tensors.instr_index
    total_instr = int(instr[-1]) if n else 0
    warmup_instr = int(instr[warmup_end - 1]) if warmup_end > 0 else 0
    result = SimulationResult(
        workload=trace.name,
        predictor=predictor.name,
        instructions=total_instr - warmup_instr,
        conditional_branches=cond_measured,
        mispredictions=mispredictions,
        warmup_mispredictions=warmup_mispredictions,
        total_instructions=total_instr,
    )
    stats = getattr(predictor, "stats", None)
    if stats is not None:
        result.stats = stats.as_dict()
    collect_extra = getattr(predictor, "collect_extra", None)
    if collect_extra is not None:
        result.extra = collect_extra()
    return result


class TestKindRuns:
    def test_runs_partition_the_trace(self):
        trace = generate_workload("kafka", num_branches=3000, use_cache=False)
        tensors = TraceTensors(trace)
        runs = tensors.kind_runs()
        assert runs[0][0] == 0 and runs[-1][1] == len(trace)
        for (_, prev_end, prev_cond), (start, _, cond) in zip(runs, runs[1:]):
            assert start == prev_end
            assert cond != prev_cond  # runs are maximal
        cond_kind = int(BranchKind.COND)
        for start, end, is_cond in runs:
            assert all((trace.kinds[t] == cond_kind) == is_cond for t in range(start, end))

    def test_runs_cached(self):
        trace = generate_workload("kafka", num_branches=1000, use_cache=False)
        tensors = TraceTensors(trace)
        assert tensors.kind_runs() is tensors.kind_runs()

    def test_empty_trace(self):
        trace = generate_workload("kafka", num_branches=1000, use_cache=False)
        tensors = TraceTensors(trace)
        tensors.num_records = 0
        assert tensors.kind_runs() == []


class TestLoopEquivalence:
    def _equivalence(self, config_name, warmup_fraction=0.25, **overrides):
        runner = Runner(SMALL)
        bundle = runner.bundle("kafka")
        fast = simulate(
            runner.build_predictor(config_name, bundle, **overrides),
            bundle.trace,
            bundle.tensors,
            warmup_fraction=warmup_fraction,
        )
        reference = reference_simulate(
            runner.build_predictor(config_name, bundle, **overrides),
            bundle.trace,
            bundle.tensors,
            warmup_fraction=warmup_fraction,
        )
        assert fast == reference

    def test_tage_equivalent(self):
        self._equivalence("tsl_16k")

    def test_llbp_equivalent(self):
        self._equivalence("llbp")

    def test_llbpx_equivalent(self):
        self._equivalence("llbpx")

    def test_zero_warmup(self):
        self._equivalence("tsl_16k", warmup_fraction=0.0)

    def test_large_warmup(self):
        self._equivalence("tsl_16k", warmup_fraction=0.9)

    def test_warmup_boundary_alignment(self):
        # sweep warmup fractions so the boundary lands inside conditional
        # and unconditional runs alike
        for fraction in (0.1, 0.33, 0.5, 0.66):
            self._equivalence("tsl_16k", warmup_fraction=fraction)
