"""Tests for patterns, pattern sets, bucketing, and useful tracking."""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llbp.pattern import Pattern, PatternSet, UsefulTracker, make_bucket_ranges
from repro.tage.config import HISTORY_LENGTHS


def tag_streams_for(t_value: int, mapping):
    """Fake per-length tag streams: mapping[length_index] -> tag at time t."""
    streams = []
    for i in range(len(HISTORY_LENGTHS)):
        streams.append(array("l", [mapping.get(i, -999)] * (t_value + 1)))
    return streams


class TestPattern:
    def test_initial_weak_state(self):
        assert Pattern(3, 0x1F, taken=True).ctr == 0
        assert Pattern(3, 0x1F, taken=False).ctr == -1

    def test_update_saturates(self):
        p = Pattern(0, 1, taken=True)
        for _ in range(10):
            p.update(True, 3, -4)
        assert p.ctr == 3
        for _ in range(20):
            p.update(False, 3, -4)
        assert p.ctr == -4

    def test_confidence_and_confident(self):
        p = Pattern(0, 1, taken=True)
        assert p.confidence() == 0 and not p.is_confident(3)
        p.ctr = 2
        assert p.is_confident(3)
        p.ctr = -3
        assert p.is_confident(3)


class TestPatternSetUnbucketed:
    def test_allocate_and_find(self):
        ps = PatternSet(capacity=4)
        ps.allocate(2, 0x10, True)
        assert ps.find(2, 0x10) is not None
        assert ps.find(2, 0x11) is None

    def test_allocate_existing_reinforces(self):
        ps = PatternSet(capacity=4)
        first = ps.allocate(2, 0x10, True)
        again = ps.allocate(2, 0x10, True)
        assert first is again
        assert again.ctr == 1  # reinforced, not reset

    def test_capacity_evicts_least_confident(self):
        ps = PatternSet(capacity=2)
        strong = ps.allocate(1, 0x1, True)
        strong.ctr = 3
        ps.allocate(2, 0x2, True)  # weak
        ps.allocate(3, 0x3, False)  # evicts the weak one
        assert ps.find(1, 0x1) is not None
        assert ps.find(2, 0x2) is None
        assert ps.find(3, 0x3) is not None

    def test_unlimited_capacity(self):
        ps = PatternSet(capacity=0)
        for i in range(100):
            ps.allocate(i % 21, i, True)
        assert len(ps) == 100

    def test_lookup_longest_match(self):
        ps = PatternSet(capacity=8)
        ps.allocate(2, 0x10, True)
        ps.allocate(9, 0x20, False)
        streams = tag_streams_for(0, {2: 0x10, 9: 0x20})
        best = ps.lookup(0, streams, [])
        assert best is not None and best.length_index == 9

    def test_lookup_no_match(self):
        ps = PatternSet(capacity=8)
        ps.allocate(2, 0x10, True)
        streams = tag_streams_for(0, {2: 0x999})
        assert ps.lookup(0, streams, []) is None

    def test_dirty_flag_set_on_allocation(self):
        ps = PatternSet(capacity=4)
        assert not ps.dirty
        ps.allocate(1, 2, True)
        assert ps.dirty

    def test_confident_count(self):
        ps = PatternSet(capacity=4)
        a = ps.allocate(1, 1, True)
        b = ps.allocate(2, 2, True)
        a.ctr = 3
        assert ps.confident_count() == 1
        b.ctr = -4
        assert ps.confident_count() == 2


class TestBucketing:
    def test_make_bucket_ranges_covers_everything(self):
        indices = sorted(range(0, 21, 2))
        ranges = make_bucket_ranges(indices, 4, 4)
        assert ranges[0][0] == 0
        assert ranges[-1][1] >= 20
        for i in range(21):
            assert any(lo <= i <= hi for lo, hi, _ in ranges)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_bucket_ranges([], 4, 4)

    def test_bucket_conflicts_stay_local(self):
        ranges = make_bucket_ranges(list(range(16)), 4, 2)
        ps = PatternSet(capacity=8, bucket_ranges=ranges)
        # fill bucket 0 (indices 0..3) beyond its 2 slots
        ps.allocate(0, 1, True)
        ps.allocate(1, 2, True)
        ps.allocate(2, 3, True)  # evicts within bucket 0
        # bucket 3 resident untouched
        far = ps.allocate(15, 9, True)
        assert far is not None
        bucket0 = [p for p in ps.patterns if p.length_index <= 3]
        assert len(bucket0) == 2

    def test_out_of_bucket_allocation_dropped(self):
        ranges = [(0, 3, 2)]  # only short lengths allowed
        ps = PatternSet(capacity=2, bucket_ranges=ranges)
        assert ps.allocate(10, 5, True) is None
        assert len(ps) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        allocations=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 255), st.booleans()),
            max_size=80,
        )
    )
    def test_bucket_occupancy_never_exceeds_slots(self, allocations):
        indices = list(range(21))
        ranges = make_bucket_ranges(indices, 4, 4)
        ps = PatternSet(capacity=16, bucket_ranges=ranges)
        for length_index, tag, taken in allocations:
            ps.allocate(length_index, tag, taken)
            for lo, hi, slots in ranges:
                residents = [p for p in ps.patterns if lo <= p.length_index <= hi]
                assert len(residents) <= slots


class TestUsefulTracker:
    def test_per_context_counts_distinct_patterns(self):
        tracker = UsefulTracker()
        p1 = Pattern(2, 0x10, True)
        p2 = Pattern(3, 0x20, True)
        tracker.record(100, p1)
        tracker.record(100, p1)  # same pattern twice
        tracker.record(100, p2)
        tracker.record(200, p1)
        counts = tracker.per_context_counts()
        assert counts[100] == 2 and counts[200] == 1

    def test_per_context_lengths(self):
        tracker = UsefulTracker()
        tracker.record(1, Pattern(0, 1, True))  # length 6
        tracker.record(1, Pattern(5, 2, True))  # length 37
        lengths = tracker.per_context_lengths(list(HISTORY_LENGTHS))
        assert lengths[1] == (6 + 37) / 2

    def test_duplication_counts_cross_context_copies(self):
        tracker = UsefulTracker()
        shared = Pattern(0, 0x7, True)
        tracker.record(1, shared)
        tracker.record(2, shared)
        tracker.record(3, Pattern(0, 0x8, True))
        dup = tracker.duplication_by_length(list(HISTORY_LENGTHS))
        assert dup[6] == pytest.approx(1 - 2 / 3)

    def test_useful_by_length_sums_occurrences(self):
        tracker = UsefulTracker()
        p = Pattern(5, 1, True)
        tracker.record(1, p)
        tracker.record(1, p)
        assert tracker.useful_by_length(list(HISTORY_LENGTHS))[37] == 2
