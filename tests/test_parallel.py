"""Tests for the process-parallel experiment execution layer.

The load-bearing guarantee: ``run_matrix(jobs=N)`` is *bit-identical* to
the serial path -- every field of every ``SimulationResult``, including
predictor stats and extra metrics -- because trace generation and the
predictors are deterministic functions of the pickled ``RunnerConfig``.
"""

import pytest

from repro.core import Runner, RunnerConfig
from repro.core.parallel import chunk_cells, run_chunks, simulate_chunk

WORKLOADS = ("kafka", "nodeapp")
CONFIGS = ("tsl_16k", "tsl_64k", "llbp")

SMALL = RunnerConfig(scale=4, num_branches=4000)


@pytest.fixture(scope="module")
def serial_matrix():
    runner = Runner(SMALL)
    return runner.run_matrix(WORKLOADS, CONFIGS)


class TestParallelEqualsSerial:
    def test_two_jobs_bit_identical(self, serial_matrix):
        runner = Runner(SMALL)
        parallel = runner.run_matrix(WORKLOADS, CONFIGS, jobs=2)
        assert parallel == serial_matrix  # full dataclass equality: counts, stats, extra

    def test_more_jobs_than_workloads(self, serial_matrix):
        runner = Runner(SMALL)
        parallel = runner.run_matrix(WORKLOADS, CONFIGS, jobs=8)
        assert parallel == serial_matrix

    def test_jobs_one_uses_serial_path(self, serial_matrix):
        runner = Runner(SMALL)
        assert runner.run_matrix(WORKLOADS, CONFIGS, jobs=1) == serial_matrix

    def test_parallel_results_are_memoised(self):
        runner = Runner(SMALL)
        runner.run_matrix(WORKLOADS, CONFIGS, jobs=2)
        first_sims = runner.sim_count
        runner.run_matrix(WORKLOADS, CONFIGS, jobs=2)
        assert runner.sim_count == first_sims  # second call is pure memo hits


class TestRunCells:
    def test_cells_with_overrides_match_run_one(self):
        cells = [
            ("kafka", "llbp", {"num_contexts": 1024}),
            ("nodeapp", "tsl_16k", {}),
            ("kafka", "tsl_16k", {}),
        ]
        serial = Runner(SMALL)
        expected = [serial.run_one(w, n, **o) for w, n, o in cells]
        parallel = Runner(SMALL)
        assert parallel.run_cells(cells, jobs=2) == expected

    def test_results_in_cell_order(self):
        cells = [(w, c, {}) for c in CONFIGS for w in WORKLOADS]  # config-major input
        runner = Runner(SMALL)
        results = runner.run_cells(cells, jobs=2)
        for (workload, name, _), result in zip(cells, results):
            assert result.workload == workload
            assert result.predictor == name

    def test_progress_fires_once_per_cell(self):
        runner = Runner(SMALL)
        seen = []
        runner.run_matrix(
            WORKLOADS, CONFIGS, jobs=2, progress=lambda w, c, r: seen.append((w, c))
        )
        assert sorted(seen) == sorted((w, c) for w in WORKLOADS for c in CONFIGS)

    def test_progress_fires_for_cached_cells(self):
        runner = Runner(SMALL)
        runner.run_matrix(WORKLOADS, CONFIGS, jobs=2)
        seen = []
        runner.run_matrix(
            WORKLOADS, CONFIGS, jobs=2, progress=lambda w, c, r: seen.append((w, c))
        )
        assert len(seen) == len(WORKLOADS) * len(CONFIGS)


class TestChunking:
    def test_chunk_cells_is_workload_major(self):
        cells = [("a", "x", {}), ("b", "x", {}), ("a", "y", {"k": 1})]
        chunks = chunk_cells(cells)
        assert chunks == {"a": [("x", {}), ("y", {"k": 1})], "b": [("x", {})]}

    def test_simulate_chunk_matches_runner(self):
        expected = Runner(SMALL).run_one("kafka", "tsl_16k")
        results = simulate_chunk(SMALL, "kafka", [("tsl_16k", {})])
        assert results == [expected]

    def test_run_chunks_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            list(run_chunks(SMALL, {"kafka": [("tsl_16k", {})]}, jobs=0))

    def test_run_chunks_empty_is_noop(self):
        assert list(run_chunks(SMALL, {}, jobs=2)) == []
