"""Tests for the process-parallel experiment execution layer.

The load-bearing guarantee: ``run_matrix(jobs=N)`` is *bit-identical* to
the serial path -- every field of every ``SimulationResult``, including
predictor stats and extra metrics -- because trace generation and the
predictors are deterministic functions of the pickled ``RunnerConfig``.
"""

import json

import pytest

from repro.core import ArtifactStore, ResultCache, Runner, RunnerConfig, TimingStore
from repro.core.parallel import (
    CostModel,
    chunk_cells,
    config_weight,
    run_cells_parallel,
    run_chunks,
    simulate_cell,
    simulate_chunk,
)

WORKLOADS = ("kafka", "nodeapp")
CONFIGS = ("tsl_16k", "tsl_64k", "llbp")

SMALL = RunnerConfig(scale=4, num_branches=4000)


@pytest.fixture(scope="module")
def serial_matrix():
    runner = Runner(SMALL)
    return runner.run_matrix(WORKLOADS, CONFIGS)


class TestParallelEqualsSerial:
    def test_two_jobs_bit_identical(self, serial_matrix):
        runner = Runner(SMALL)
        parallel = runner.run_matrix(WORKLOADS, CONFIGS, jobs=2)
        assert parallel == serial_matrix  # full dataclass equality: counts, stats, extra

    def test_more_jobs_than_workloads(self, serial_matrix):
        runner = Runner(SMALL)
        parallel = runner.run_matrix(WORKLOADS, CONFIGS, jobs=8)
        assert parallel == serial_matrix

    def test_jobs_one_uses_serial_path(self, serial_matrix):
        runner = Runner(SMALL)
        assert runner.run_matrix(WORKLOADS, CONFIGS, jobs=1) == serial_matrix

    def test_parallel_results_are_memoised(self):
        runner = Runner(SMALL)
        runner.run_matrix(WORKLOADS, CONFIGS, jobs=2)
        first_sims = runner.sim_count
        runner.run_matrix(WORKLOADS, CONFIGS, jobs=2)
        assert runner.sim_count == first_sims  # second call is pure memo hits


class TestRunCells:
    def test_cells_with_overrides_match_run_one(self):
        cells = [
            ("kafka", "llbp", {"num_contexts": 1024}),
            ("nodeapp", "tsl_16k", {}),
            ("kafka", "tsl_16k", {}),
        ]
        serial = Runner(SMALL)
        expected = [serial.run_one(w, n, **o) for w, n, o in cells]
        parallel = Runner(SMALL)
        assert parallel.run_cells(cells, jobs=2) == expected

    def test_results_in_cell_order(self):
        cells = [(w, c, {}) for c in CONFIGS for w in WORKLOADS]  # config-major input
        runner = Runner(SMALL)
        results = runner.run_cells(cells, jobs=2)
        for (workload, name, _), result in zip(cells, results):
            assert result.workload == workload
            assert result.predictor == name

    def test_progress_fires_once_per_cell(self):
        runner = Runner(SMALL)
        seen = []
        runner.run_matrix(
            WORKLOADS, CONFIGS, jobs=2, progress=lambda w, c, r: seen.append((w, c))
        )
        assert sorted(seen) == sorted((w, c) for w in WORKLOADS for c in CONFIGS)

    def test_progress_fires_for_cached_cells(self):
        runner = Runner(SMALL)
        runner.run_matrix(WORKLOADS, CONFIGS, jobs=2)
        seen = []
        runner.run_matrix(
            WORKLOADS, CONFIGS, jobs=2, progress=lambda w, c, r: seen.append((w, c))
        )
        assert len(seen) == len(WORKLOADS) * len(CONFIGS)


class TestCellGranularScheduling:
    def test_duplicate_cells_simulate_once(self):
        cells = [("kafka", "tsl_16k", {})] * 3 + [("nodeapp", "tsl_16k", {})]
        runner = Runner(SMALL)
        results = runner.run_cells(cells, jobs=2)
        assert runner.sim_count == 2  # unique cells only
        assert results[0] == results[1] == results[2]

    def test_simulate_cell_matches_runner(self):
        expected = Runner(SMALL).run_one("kafka", "tsl_16k")
        result, seconds = simulate_cell(SMALL, "kafka", "tsl_16k", {})
        assert result == expected
        assert seconds > 0

    def test_run_cells_parallel_with_artifact_store(self, tmp_path):
        cells = [(w, c, {}) for w in WORKLOADS for c in ("tsl_16k", "llbp")]
        expected = {
            (w, c): Runner(SMALL).run_one(w, c) for w, c, _ in cells
        }
        got = dict(
            ((w, c), r)
            for (w, c, _), r in run_cells_parallel(
                SMALL, cells, jobs=2, artifact_dir=str(tmp_path)
            )
        )
        assert got == expected
        # workers populated the shared store
        assert len(ArtifactStore(tmp_path)) == len(WORKLOADS)

    def test_parallel_path_uses_artifact_store_of_runner(self, tmp_path):
        store = ArtifactStore(tmp_path)
        runner = Runner(SMALL, artifacts=store)
        runner.run_matrix(WORKLOADS, ("tsl_16k",), jobs=2)
        assert len(store) == len(WORKLOADS)

    def test_timings_persist_next_to_result_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(SMALL, cache=cache)
        runner.run_matrix(WORKLOADS, ("tsl_16k",), jobs=2)
        timings = TimingStore(tmp_path / "timings.meta")
        assert timings.get("kafka", "tsl_16k") is not None
        # the timing file is invisible to the result cache's entry count
        assert len(cache) == len(WORKLOADS)


class TestCostModel:
    def test_config_weight_prefix_order(self):
        assert config_weight("llbpx_optw") > config_weight("llbpx")
        assert config_weight("llbpx") > config_weight("llbp")
        assert config_weight("llbp") > config_weight("tsl_64k") == 1.0

    def test_static_estimate_scales_with_length_and_weight(self):
        model = CostModel()
        assert model.estimate("kafka", "llbpx", 8000) > model.estimate("kafka", "llbp", 8000)
        assert model.estimate("kafka", "llbp", 16000) > model.estimate("kafka", "llbp", 8000)

    def test_observed_timing_overrides_static(self):
        timings = TimingStore()
        timings.observe("kafka", "tsl_16k", 123.0)
        model = CostModel(timings)
        assert model.estimate("kafka", "tsl_16k", 8000) == 123.0
        assert model.estimate("nodeapp", "tsl_16k", 8000) < 1.0  # static fallback


class TestTimingStore:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "timings.meta"
        store = TimingStore(path)
        store.observe("kafka", "llbp", 2.0)
        store.save()
        reloaded = TimingStore(path)
        assert reloaded.get("kafka", "llbp") == 2.0

    def test_ema_blends_observations(self):
        store = TimingStore(alpha=0.5)
        store.observe("w", "c", 2.0)
        store.observe("w", "c", 4.0)
        assert store.get("w", "c") == pytest.approx(3.0)

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "timings.meta"
        path.write_text("not json {")
        store = TimingStore(path)
        assert len(store) == 0
        store.observe("w", "c", 1.0)
        store.save()
        assert json.loads(path.read_text())["seconds"] == {"w/c@reference": 1.0}

    def test_in_memory_save_is_noop(self):
        TimingStore().save()  # must not raise


class TestChunking:
    def test_chunk_cells_is_workload_major(self):
        cells = [("a", "x", {}), ("b", "x", {}), ("a", "y", {"k": 1})]
        chunks = chunk_cells(cells)
        assert chunks == {"a": [("x", {}), ("y", {"k": 1})], "b": [("x", {})]}

    def test_simulate_chunk_matches_runner(self):
        expected = Runner(SMALL).run_one("kafka", "tsl_16k")
        results = simulate_chunk(SMALL, "kafka", [("tsl_16k", {})])
        assert results == [expected]

    def test_run_chunks_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            list(run_chunks(SMALL, {"kafka": [("tsl_16k", {})]}, jobs=0))

    def test_run_chunks_empty_is_noop(self):
        assert list(run_chunks(SMALL, {}, jobs=2)) == []
