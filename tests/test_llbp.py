"""Behavioural tests for the LLBP predictor."""

from dataclasses import replace

import pytest

from repro.core.simulator import simulate
from repro.llbp import LLBP, ContextStreams, llbp_default, llbp_zero_latency
from repro.tage import TraceTensors, tsl_64k
from repro.traces.record import BranchKind, Trace
from tests.conftest import TEST_SCALE


def path_correlated_trace(n_requests=800, seed=0):
    """Two call paths to a shared branch whose outcome is the path.

    The path choice is a pseudo-random (but deterministic) function of the
    request index, so global outcome history alone cannot predict the
    branch -- only the call path (visible to TAGE via long history target
    bits and to LLBP via its context) can.  The canonical LLBP-win case.
    """
    from repro.common.bitops import mix64

    trace = Trace(name="pathy")
    shared_pc = 0x9000
    for i in range(n_requests):
        path_a = bool(mix64(seed ^ (i * 0x9E37)) & 1)
        caller = 0x2000 if path_a else 0x3000
        trace.append(0x1000, caller, BranchKind.CALL, True, 2)
        trace.append(caller + 8, 0x8000, BranchKind.CALL, True, 2)
        # a few easy branches inside the shared function
        trace.append(0x8008, 0x8040, BranchKind.COND, True, 2)
        trace.append(shared_pc, 0x9040, BranchKind.COND, path_a, 2)
        trace.append(0x8010, caller + 12, BranchKind.RETURN, True, 2)
        trace.append(caller + 16, 0x1004, BranchKind.RETURN, True, 2)
    return trace


def build_llbp(trace, **overrides):
    tensors = TraceTensors(trace)
    contexts = ContextStreams(tensors)
    config = llbp_default(scale=TEST_SCALE, **overrides)
    return LLBP(config, tsl_64k(scale=TEST_SCALE), tensors, contexts), tensors


class TestLLBPPrediction:
    def test_runs_and_collects_stats(self):
        trace = path_correlated_trace(300)
        predictor, tensors = build_llbp(trace)
        result = simulate(predictor, trace, tensors)
        assert result.stats["predictions"] > 0
        assert "unconditional_branches" in result.stats

    def test_llbp_provides_predictions(self):
        trace = path_correlated_trace(600)
        predictor, tensors = build_llbp(trace)
        result = simulate(predictor, trace, tensors)
        assert result.stats.get("llbp_provides", 0) > 0

    def test_context_cold_start_no_crash(self):
        trace = path_correlated_trace(5)
        predictor, tensors = build_llbp(trace)
        simulate(predictor, trace, tensors)

    def test_prefetch_categories_accounted(self):
        trace = path_correlated_trace(600)
        predictor, tensors = build_llbp(trace)
        result = simulate(predictor, trace, tensors)
        issued = result.stats.get("prefetches_issued", 0)
        settled = (
            result.stats.get("prefetch_timely", 0)
            + result.stats.get("prefetch_late", 0)
            + result.stats.get("prefetch_unused", 0)
        )
        assert issued == settled  # finalize() settles everything

    def test_zero_latency_on_demand(self):
        trace = path_correlated_trace(600)
        predictor, tensors = build_llbp(trace, zero_latency=True)
        result = simulate(predictor, trace, tensors)
        # no prefetch pipeline in 0-lat mode
        assert result.stats.get("prefetches_issued", 0) == 0
        assert result.stats.get("llbp_provides", 0) > 0

    def test_zero_latency_not_worse(self):
        trace = path_correlated_trace(800)
        lat, tensors = build_llbp(trace)
        r_lat = simulate(lat, trace, tensors)
        zero, _ = build_llbp(trace, zero_latency=True)
        r_zero = simulate(zero, trace, tensors)
        assert r_zero.mispredictions <= r_lat.mispredictions + 5

    def test_no_contextualization_mode(self):
        trace = path_correlated_trace(400)
        predictor, tensors = build_llbp(trace, no_contextualization=True)
        result = simulate(predictor, trace, tensors)
        assert result.stats.get("set_creations", 0) > 0
        assert result.stats.get("prefetches_issued", 0) == 0

    def test_infinite_patterns_uncaps_sets(self):
        trace = path_correlated_trace(500)
        predictor, tensors = build_llbp(trace, infinite_patterns=True, use_bucketing=False)
        result = simulate(predictor, trace, tensors)
        # collect_extra finalises the run: sets live in the store afterwards
        assert result.extra["resident_sets"] > 0
        assert result.stats.get("pattern_allocations", 0) > 0


class TestLLBPTraining:
    def test_allocations_happen_on_mispredicts(self):
        trace = path_correlated_trace(500)
        predictor, tensors = build_llbp(trace)
        result = simulate(predictor, trace, tensors)
        assert result.stats.get("pattern_allocations", 0) > 0

    def test_writebacks_reach_store(self):
        trace = path_correlated_trace(800)
        predictor, tensors = build_llbp(trace)
        simulate(predictor, trace, tensors)
        predictor.finalize()
        assert predictor.store.resident_sets() > 0

    def test_finalize_idempotent(self):
        trace = path_correlated_trace(100)
        predictor, tensors = build_llbp(trace)
        simulate(predictor, trace, tensors)
        predictor.finalize()
        first = predictor.store.resident_sets()
        predictor.finalize()
        assert predictor.store.resident_sets() == first

    def test_collect_extra_fields(self):
        trace = path_correlated_trace(300)
        predictor, tensors = build_llbp(trace)
        result = simulate(predictor, trace, tensors)
        for key in ("store_reads", "store_writes", "resident_sets"):
            assert key in result.extra

    def test_useful_tracking_optional(self):
        trace = path_correlated_trace(600)
        predictor, tensors = build_llbp(trace, track_useful=True)
        simulate(predictor, trace, tensors)
        assert predictor.tracker is not None
        off, _ = build_llbp(trace)
        assert off.tracker is None


class TestLLBPAccuracy:
    def test_improves_on_path_correlated_workload(self):
        trace = path_correlated_trace(1000)
        tensors = TraceTensors(trace)
        from repro.tage import TageSCL

        baseline = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors)
        predictor, _ = build_llbp(trace, zero_latency=True)
        llbp = simulate(predictor, trace, tensors)
        assert llbp.mispredictions <= baseline.mispredictions

    def test_improves_on_server_workload(self, small_bundle):
        trace, tensors, contexts = small_bundle
        from repro.tage import TageSCL

        baseline = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors)
        predictor = LLBP(
            llbp_default(scale=TEST_SCALE), tsl_64k(scale=TEST_SCALE), tensors, contexts
        )
        llbp = simulate(predictor, trace, tensors)
        assert llbp.mispredictions < baseline.mispredictions


class TestFalsePath:
    def test_false_path_prefetches_issued(self):
        trace = path_correlated_trace(600)
        predictor, tensors = build_llbp(trace, model_false_path=True)
        result = simulate(predictor, trace, tensors)
        assert result.stats.get("false_path_issued", 0) > 0

    def test_flushing_removes_false_path_entries(self, small_bundle):
        trace, tensors, contexts = small_bundle
        flush = LLBP(
            llbp_default(scale=TEST_SCALE, model_false_path=True, flush_false_path=True),
            tsl_64k(scale=TEST_SCALE),
            tensors,
            contexts,
        )
        r_flush = simulate(flush, trace, tensors)
        assert r_flush.stats.get("false_path_issued", 0) > 0
        assert r_flush.stats.get("false_path_flushed", 0) > 0
        # nothing false-path-tagged survives in the PB after a flushing run
        resident_fp = sum(1 for _, e in flush.pattern_buffer.items() if e.false_path)
        assert resident_fp == 0


class TestConfigValidation:
    def test_zero_latency_preset(self):
        assert llbp_zero_latency().effective_latency == 0
        assert llbp_default().effective_latency == 6

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            llbp_default(context_depth=-1)

    def test_bucket_divisibility(self):
        with pytest.raises(ValueError):
            llbp_default(patterns_per_set=15)

    def test_scaled_contexts(self):
        assert llbp_default(scale=8).effective_contexts == llbp_default().effective_contexts // 8

    def test_history_subset_toggle(self):
        assert len(llbp_default().history_lengths) == 16
        assert len(replace(llbp_default(), restrict_histories=False).history_lengths) == 21

    def test_storage_budget_plausible(self):
        kib = llbp_default().storage_bits() / 8192
        assert 300 < kib < 900
