"""Smoke tests: the example scripts run end-to-end (with tiny inputs)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_runs():
    proc = run_example("quickstart.py", "kafka", "8000")
    assert proc.returncode == 0, proc.stderr
    assert "MPKI" in proc.stdout
    assert "LLBP-X internals" in proc.stdout


@pytest.mark.slow
def test_design_space_exploration_runs():
    proc = run_example("design_space_exploration.py", "kafka", timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert "context-depth sweep" in proc.stdout


def test_custom_workload_runs():
    proc = run_example("custom_workload.py")
    assert proc.returncode == 0, proc.stderr
    assert "vs baseline" in proc.stdout


@pytest.mark.slow
def test_small_tage_study_runs():
    proc = run_example("small_tage_study.py", "kafka", timeout=600)
    assert proc.returncode == 0, proc.stderr
    assert "MPKI +LLBP-X" in proc.stdout
