"""Tests for CSV figure-series export."""

import csv

import pytest

from repro.core.analysis import ContextProfile
from repro.experiments.export import (
    export_context_profile,
    export_per_length_series,
    export_reduction_rows,
)
from repro.experiments.fig12_mpki_reduction import Fig12Row


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestReductionExport:
    def test_rows_and_columns(self, tmp_path):
        rows = [
            Fig12Row(workload="kafka", baseline_mpki=3.5,
                     reductions={"llbp": 8.0, "llbpx": 11.0}),
            Fig12Row(workload="nodeapp", baseline_mpki=7.1,
                     reductions={"llbp": 12.0, "llbpx": 14.0}),
        ]
        path = export_reduction_rows(rows, tmp_path / "fig12.csv")
        data = read_csv(path)
        assert data[0] == ["workload", "baseline_mpki", "llbp", "llbpx"]
        assert data[1][0] == "kafka"
        assert float(data[2][2]) == 12.0

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_reduction_rows([], tmp_path / "x.csv")


class TestContextProfileExport:
    def test_rank_series(self, tmp_path):
        profile = ContextProfile(
            workload="kafka", context_depth=8,
            counts=[20, 5, 1], avg_lengths=[40.0, 10.0, 6.0],
            pattern_set_capacity=16, num_store_contexts=1792,
        )
        path = export_context_profile(profile, tmp_path / "fig6.csv")
        data = read_csv(path)
        assert data[0] == ["rank", "useful_patterns", "avg_history_length"]
        assert data[1] == ["0", "20", "40.00"]
        assert len(data) == 4


class TestPerLengthExport:
    def test_depth_columns(self, tmp_path):
        series = {2: {6: 1.5, 37: 0.9}, 64: {6: 0.3}}
        path = export_per_length_series(series, tmp_path / "fig9.csv", value_name="ratio")
        data = read_csv(path)
        assert data[0] == ["history_length", "ratio_W2", "ratio_W64"]
        assert data[1] == ["6", "1.5000", "0.3000"]
        assert data[2][2] == "0.0000"  # missing cells filled with zero

    def test_creates_parent_dirs(self, tmp_path):
        path = export_per_length_series({2: {6: 1.0}}, tmp_path / "deep/dir/f.csv")
        assert path.exists()
