"""Tests for the pattern store / context directory."""

from repro.llbp.pattern import PatternSet
from repro.llbp.pattern_store import PatternStore


def make_set(confident=0):
    ps = PatternSet(capacity=16)
    for i in range(max(1, confident)):
        p = ps.allocate(i % 21, i, True)
        if i < confident:
            p.ctr = 3
    return ps


class TestPatternStore:
    def test_insert_and_lookup(self):
        store = PatternStore(num_contexts=64, assoc=4, context_tag_bits=14)
        ps = make_set()
        store.insert(12345, ps)
        assert store.lookup(12345) is ps

    def test_lookup_miss(self):
        store = PatternStore(num_contexts=64, assoc=4, context_tag_bits=14)
        assert store.lookup(999) is None

    def test_contains_without_read(self):
        store = PatternStore(num_contexts=64, assoc=4, context_tag_bits=14)
        store.insert(1, make_set())
        lookups_before = store.stats.get("lookups")
        assert store.contains(1)
        assert not store.contains(2)
        assert store.stats.get("lookups") == lookups_before

    def test_insert_clears_dirty(self):
        store = PatternStore(num_contexts=64, assoc=4, context_tag_bits=14)
        ps = make_set()
        ps.dirty = True
        store.insert(7, ps)
        assert not ps.dirty

    def test_overwrite_same_context(self):
        store = PatternStore(num_contexts=64, assoc=4, context_tag_bits=14)
        first, second = make_set(), make_set()
        store.insert(7, first)
        store.insert(7, second)
        assert store.lookup(7) is second
        assert store.resident_sets() == 1

    def test_eviction_favors_confident_sets(self):
        store = PatternStore(num_contexts=2, assoc=2, context_tag_bits=14)
        # both contexts land in the single storage set
        confident = make_set(confident=5)
        weak = make_set(confident=0)
        store.insert(0 * store.num_sets, confident)  # context ids congruent mod num_sets
        store.insert(1 * store.num_sets, weak)
        store.insert(2 * store.num_sets, make_set())  # forces an eviction
        assert store.stats.get("evictions") == 1
        # the confident set survived
        assert store.lookup(0) is confident

    def test_tag_aliasing_merges_contexts(self):
        store = PatternStore(num_contexts=8, assoc=2, context_tag_bits=2)
        a = make_set()
        num_sets = store.num_sets
        alias_stride = num_sets * 4  # same set, same 2-bit tag
        store.insert(3, a)
        assert store.lookup(3 + alias_stride) is a  # aliased hit

    def test_infinite_mode_never_evicts(self):
        store = PatternStore(num_contexts=4, assoc=2, context_tag_bits=14, infinite=True)
        for cid in range(100):
            store.insert(cid, make_set())
        assert store.resident_sets() == 100
        assert store.stats.get("evictions") == 0

    def test_rejects_bad_geometry(self):
        import pytest

        with pytest.raises(ValueError):
            PatternStore(num_contexts=0, assoc=2, context_tag_bits=4)
        with pytest.raises(ValueError):
            PatternStore(num_contexts=4, assoc=0, context_tag_bits=4)
