"""Tests for the trace representation."""

import pytest

from repro.traces.record import BranchKind, BranchRecord, Trace


def _sample_trace():
    trace = Trace(name="t", seed=3)
    trace.append(0x100, 0x200, BranchKind.COND, True, 2)
    trace.append(0x104, 0x300, BranchKind.CALL, True, 0)
    trace.append(0x300, 0x108, BranchKind.RETURN, True, 5)
    trace.append(0x108, 0x140, BranchKind.COND, False, 1)
    return trace


class TestBranchKind:
    def test_cond_is_conditional(self):
        assert not BranchKind.COND.is_unconditional

    def test_others_unconditional(self):
        for kind in (BranchKind.JUMP, BranchKind.CALL, BranchKind.RETURN):
            assert kind.is_unconditional


class TestTrace:
    def test_length_and_counts(self):
        trace = _sample_trace()
        assert len(trace) == 4
        assert trace.num_conditional == 2
        assert trace.num_unconditional == 2

    def test_instructions_include_branches(self):
        trace = _sample_trace()
        assert trace.num_instructions == 2 + 0 + 5 + 1 + 4

    def test_records_roundtrip(self):
        trace = _sample_trace()
        records = list(trace.records())
        assert records[0] == BranchRecord(0x100, 0x200, BranchKind.COND, True, 2)
        assert records[1].kind == BranchKind.CALL

    def test_negative_gap_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError):
            trace.append(0x100, 0x200, BranchKind.COND, True, -1)

    def test_slice(self):
        trace = _sample_trace()
        sub = trace.slice(1, 3)
        assert len(sub) == 2
        assert sub.pcs == [0x104, 0x300]

    def test_validate_ok(self):
        _sample_trace().validate()

    def test_validate_catches_not_taken_unconditional(self):
        trace = _sample_trace()
        trace.taken[1] = False
        with pytest.raises(ValueError):
            trace.validate()

    def test_validate_catches_length_mismatch(self):
        trace = _sample_trace()
        trace.pcs.append(0x999)
        with pytest.raises(ValueError):
            trace.validate()

    def test_statistics(self):
        stats = _sample_trace().statistics()
        assert stats["branches"] == 4
        assert stats["conditional"] == 2
        assert stats["taken_ratio"] == 0.5
        assert stats["static_branches"] == 4

    def test_empty_trace_statistics(self):
        stats = Trace().statistics()
        assert stats["branches"] == 0
        assert stats["taken_ratio"] == 0.0


class TestColumnBacking:
    """Dual list/numpy column backing: compact(), aslists(), caches."""

    def test_compact_freezes_columns_to_numpy(self):
        import numpy as np

        trace = _sample_trace().compact()
        assert isinstance(trace.pcs, np.ndarray)
        assert trace.pcs.dtype == np.uint64
        assert trace.aslists("pcs")[0] == [0x100, 0x104, 0x300, 0x108]

    def test_aslists_returns_plain_python_ints(self):
        trace = _sample_trace().compact()
        (pcs,) = trace.aslists("pcs")
        assert all(type(pc) is int for pc in pcs)

    def test_aslists_is_cached(self):
        trace = _sample_trace().compact()
        assert trace.aslists("pcs")[0] is trace.aslists("pcs")[0]

    def test_aslists_aliases_list_backed_columns(self):
        trace = _sample_trace()
        assert trace.aslists("pcs")[0] is trace.pcs  # no copy while building
        trace.append(0x200, 0x300, BranchKind.COND, True, 0)
        assert trace.aslists("pcs")[0][-1] == 0x200

    def test_num_conditional_cache_tracks_appends(self):
        trace = _sample_trace()
        assert trace.num_conditional == 2
        assert trace.num_conditional == 2  # cached path
        trace.append(0x200, 0x300, BranchKind.COND, True, 0)
        assert trace.num_conditional == 3  # length change invalidates

    def test_equality_across_backings(self):
        assert _sample_trace() == _sample_trace().compact()

    def test_compact_preserves_semantics(self):
        plain, compacted = _sample_trace(), _sample_trace().compact()
        compacted.validate()
        assert compacted.statistics() == plain.statistics()
        assert list(compacted.records()) == list(plain.records())
