"""Learned cost model: fit determinism, fallback, persistence/merge.

The model only orders the scheduler's queue, so these tests pin the
*contract* rather than exact coefficients: a synthetic corpus whose
timings follow a known law must be predicted accurately (and strictly
better than the static heuristic), a corpus below the sample threshold
must leave the heuristic in charge, and coefficients must persist beside
``timings.meta`` with larger-corpus-wins merge semantics mirroring
``TimingStore.save()``.
"""

import json
import math
import os
import unittest

from repro.core.costmodel import (
    COSTMODEL_FORMAT_VERSION,
    DEFAULT_MIN_SAMPLES,
    CostModel,
    LearnedCostModel,
    config_capacity_kb,
    config_weight,
    evaluate_cost_model,
    feature_vector,
    fit_ridge,
    make_cost_model,
)
from repro.core.parallel import effective_jobs
from repro.core.results_io import COSTMODEL_FILENAME, TimingStore

import pytest


#: synthetic timing law: seconds per branch per unit weight
RATE = 2e-5

WORKLOADS = ["kafka", "chirper", "delta", "wikipedia"]
CONFIGS = ["tsl_64k", "llbp", "llbpx", "llbpx_optw"]


def synthetic_store(path, noise=0.0):
    """A TimingStore whose sample corpus follows ``RATE * branches * weight``."""
    store = TimingStore(path)
    for i, workload in enumerate(WORKLOADS):
        for j, name in enumerate(CONFIGS):
            branches = 4000 + 1000 * (i + j)
            seconds = RATE * branches * config_weight(name) * (1.0 + noise * ((i + j) % 3 - 1))
            store.observe(workload, name, seconds, branches=branches)
    return store


class TestFitRidge(unittest.TestCase):
    def test_recovers_known_coefficients(self):
        # y = 2 + 3*x1 - x2, exactly -- the tiny ridge penalty must not
        # move the solution visibly
        rows = [[1.0, float(a), float(b)] for a in range(4) for b in range(4)]
        targets = [2.0 + 3.0 * row[1] - row[2] for row in rows]
        coef = fit_ridge(rows, targets, ridge=1e-8)
        self.assertAlmostEqual(coef[0], 2.0, places=3)
        self.assertAlmostEqual(coef[1], 3.0, places=3)
        self.assertAlmostEqual(coef[2], -1.0, places=3)

    def test_deterministic(self):
        rows = [[1.0, float(i), float(i * i % 5)] for i in range(10)]
        targets = [0.5 * row[1] - 0.25 * row[2] for row in rows]
        self.assertEqual(fit_ridge(rows, targets), fit_ridge(rows, targets))


class TestFeatures(unittest.TestCase):
    def test_capacity_parsing(self):
        self.assertEqual(config_capacity_kb("tsl_64k"), 64.0)
        self.assertEqual(config_capacity_kb("tsl_512k"), 512.0)
        self.assertEqual(config_capacity_kb("tsl_inf"), 4096.0)
        self.assertEqual(config_capacity_kb("llbp"), 64.0)
        self.assertEqual(config_capacity_kb("llbpx_optw"), 64.0)

    def test_vector_shape_and_intercept(self):
        row = feature_vector("kafka", "llbpx", "reference", 8000)
        self.assertEqual(row[0], 1.0)
        self.assertAlmostEqual(row[1], math.log(8000))
        # densities live in sane ranges
        for value in row[4:]:
            self.assertGreaterEqual(value, 0.0)
            self.assertLessEqual(value, 1.5)

    def test_unknown_workload_raises(self):
        with self.assertRaises(KeyError):
            feature_vector("not_a_workload", "llbp", "reference", 8000)


class TestLearnedCostModel:
    def test_fits_on_sufficient_corpus(self, tmp_path):
        store = synthetic_store(tmp_path / "timings.meta")
        model = LearnedCostModel(store, min_samples=12)
        assert model.kind == "learned"
        assert model.samples_used == len(WORKLOADS) * len(CONFIGS)

    def test_learned_beats_heuristic_on_held_out_samples(self, tmp_path):
        store = synthetic_store(tmp_path / "timings.meta")
        stats = evaluate_cost_model(store, min_samples=12)
        assert stats is not None
        assert stats["learned_mape_percent"] < stats["heuristic_mape_percent"]
        # the corpus follows an exact log-linear law; the fit should be tight
        assert stats["learned_mape_percent"] < 15.0

    def test_predicts_unseen_cell(self, tmp_path):
        store = synthetic_store(tmp_path / "timings.meta")
        model = LearnedCostModel(store, min_samples=12)
        # a (workload, config, length) combination absent from the corpus
        predicted = model.estimate("tpcc", "llbpx", 9000)
        truth = RATE * 9000 * config_weight("llbpx")
        assert abs(predicted - truth) / truth < 0.25

    def test_fit_is_deterministic(self, tmp_path):
        a = LearnedCostModel(synthetic_store(tmp_path / "a.meta"), min_samples=12)
        b = LearnedCostModel(synthetic_store(tmp_path / "b.meta"), min_samples=12)
        assert a.coefficients == b.coefficients

    def test_falls_back_below_threshold(self, tmp_path):
        store = TimingStore(tmp_path / "timings.meta")
        for i, workload in enumerate(WORKLOADS[:2]):
            store.observe(workload, "llbp", 0.5 + i, branches=8000)
        model = LearnedCostModel(store, min_samples=12)
        assert model.kind == "heuristic"
        # unseen cells get exactly the static estimate
        assert model.estimate("tpcc", "llbpx", 9000) == CostModel.static_estimate("llbpx", 9000)

    def test_observed_ema_beats_the_model(self, tmp_path):
        store = synthetic_store(tmp_path / "timings.meta")
        store.observe("kafka", "llbp", 123.0)  # wildly off the law, but observed
        model = LearnedCostModel(store, min_samples=12)
        assert model.estimate("kafka", "llbp", 8000) == store.get("kafka", "llbp")

    def test_evaluate_returns_none_when_too_small(self, tmp_path):
        store = TimingStore(tmp_path / "timings.meta")
        store.observe("kafka", "llbp", 0.5, branches=8000)
        assert evaluate_cost_model(store, min_samples=12) is None

    def test_make_cost_model_is_learned_and_self_falling_back(self, tmp_path):
        model = make_cost_model(TimingStore(tmp_path / "timings.meta"))
        assert isinstance(model, LearnedCostModel)
        assert model.kind == "heuristic"  # empty corpus


class TestCoefficientPersistence:
    def test_save_writes_beside_timings(self, tmp_path):
        store = synthetic_store(tmp_path / "timings.meta")
        model = LearnedCostModel(store, min_samples=12)
        model.kind  # trigger the fit
        model.save()
        path = tmp_path / COSTMODEL_FILENAME
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["version"] == COSTMODEL_FORMAT_VERSION
        assert payload["samples"] == len(WORKLOADS) * len(CONFIGS)
        # not a *.json file: the result cache's entry globs must not see it
        assert not path.name.endswith(".json")

    def test_fresh_store_adopts_persisted_fit(self, tmp_path):
        trained = LearnedCostModel(synthetic_store(tmp_path / "timings.meta"), min_samples=12)
        trained.kind
        trained.save()
        # a cold host sharing the directory: empty corpus, persisted fit
        cold = LearnedCostModel(
            TimingStore(tmp_path / "other.meta"),
            path=tmp_path / COSTMODEL_FILENAME,
            min_samples=12,
        )
        assert cold.kind == "learned"
        assert cold.samples_used == trained.samples_used
        assert cold.coefficients == trained.coefficients

    def test_larger_corpus_wins_on_save(self, tmp_path):
        path = tmp_path / COSTMODEL_FILENAME
        big = LearnedCostModel(synthetic_store(tmp_path / "big.meta"), path=path, min_samples=12)
        big.kind
        big.save()
        before = path.read_text()
        # a smaller corpus must not clobber the better-trained fit
        small_store = TimingStore(tmp_path / "small.meta")
        for i, workload in enumerate(WORKLOADS[:3]):
            for j, name in enumerate(CONFIGS):
                branches = 4000 + 1000 * (i + j)
                small_store.observe(
                    workload, name, RATE * branches * config_weight(name), branches=branches
                )
        small = LearnedCostModel(small_store, path=path, min_samples=12)
        assert small.kind == "learned"
        assert small.samples_used == 12
        small.save()
        assert path.read_text() == before

    def test_corrupt_coefficients_read_empty(self, tmp_path):
        path = tmp_path / COSTMODEL_FILENAME
        path.write_text("{not json")
        model = LearnedCostModel(
            TimingStore(tmp_path / "timings.meta"), path=path, min_samples=12
        )
        assert model.kind == "heuristic"


class TestSampleCorpusMerge:
    def test_samples_persist_and_reload(self, tmp_path):
        store = synthetic_store(tmp_path / "timings.meta")
        store.save()
        reloaded = TimingStore(tmp_path / "timings.meta")
        assert reloaded.sample_count == store.sample_count
        assert reloaded.samples() == store.samples()

    def test_merge_on_save_keeps_both_hosts_samples(self, tmp_path):
        path = tmp_path / "timings.meta"
        mine = TimingStore(path)
        mine.observe("kafka", "llbp", 0.5, branches=8000)
        theirs = TimingStore(path)
        theirs.observe("chirper", "llbpx", 1.5, branches=8000)
        theirs.save()
        mine.save()  # must adopt, not clobber, the foreign samples
        merged = TimingStore(path)
        keys = {(w, c) for w, c, _, _, _, _ in merged.samples()}
        assert keys == {("kafka", "llbp"), ("chirper", "llbpx")}

    def test_old_format_without_samples_still_reads(self, tmp_path):
        path = tmp_path / "timings.meta"
        path.write_text(json.dumps({"version": 1, "seconds": {"kafka/llbp@reference": 0.5}}))
        store = TimingStore(path)
        assert store.get("kafka", "llbp") == 0.5
        assert store.sample_count == 0


class TestJobsClamp(unittest.TestCase):
    def test_auto_is_cpu_count(self):
        self.assertEqual(effective_jobs(0), os.cpu_count() or 1)
        self.assertEqual(effective_jobs(None), os.cpu_count() or 1)

    def test_oversubscription_clamped(self):
        available = os.cpu_count() or 1
        self.assertEqual(effective_jobs(available + 5), available)

    def test_within_budget_untouched(self):
        self.assertEqual(effective_jobs(1), 1)


if __name__ == "__main__":
    unittest.main()
