"""Tests for workload characterisation."""

import pytest

from repro.traces import characterize, generate_workload, workload_spec
from repro.traces.workloads import build_program


@pytest.fixture(scope="module")
def profile():
    spec = workload_spec("nodeapp")
    trace = generate_workload("nodeapp", num_branches=12_000, use_cache=False)
    return characterize(trace, program=build_program(spec))


class TestProfile:
    def test_shares_sum_to_one(self, profile):
        total = (
            profile.conditional_share
            + profile.call_share
            + profile.return_share
            + profile.jump_share
        )
        assert total == pytest.approx(1.0)

    def test_server_like_mix(self, profile):
        assert 0.4 < profile.conditional_share < 0.9
        assert profile.call_share > 0.05
        # calls and returns pair up (returns include root activations)
        assert profile.return_share >= profile.call_share * 0.9

    def test_behavior_shares(self, profile):
        assert "path_correlated" in profile.behavior_shares
        assert sum(profile.behavior_shares.values()) == pytest.approx(1.0)
        # H2P branches are a minority of dynamic conditionals
        assert profile.behavior_shares["path_correlated"] < 0.5

    def test_context_paths_repeat(self, profile):
        # repeated request types mean depth-2 UB windows recur heavily
        assert profile.context_diversity < 400  # distinct windows per 1K UBs

    def test_without_program_no_behavior_shares(self):
        trace = generate_workload("kafka", num_branches=4000, use_cache=False)
        profile = characterize(trace)
        assert profile.behavior_shares == {}
        assert profile.branches >= 4000
