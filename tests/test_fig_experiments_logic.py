"""Logic-level tests for experiment result types (no simulation)."""

import math

import pytest

from repro.experiments.fig12_mpki_reduction import Fig12Row
from repro.experiments.fig14_prefetch_overriding import Fig14aResult
from repro.experiments.tables import PAPER_TABLE_I
from repro.metrics.prefetch import PrefetchReport
from repro.timing.pipeline import TimingBreakdown


class TestPaperTableI:
    def test_covers_all_fourteen(self):
        assert len(PAPER_TABLE_I) == 14

    def test_known_anchors(self):
        assert PAPER_TABLE_I["kafka"] == 0.26
        assert PAPER_TABLE_I["whiskey"] == 5.38
        assert PAPER_TABLE_I["nodeapp"] == 4.43

    def test_average_matches_paper(self):
        avg = sum(PAPER_TABLE_I.values()) / len(PAPER_TABLE_I)
        assert avg == pytest.approx(2.92, abs=0.05)  # paper: avg 2.92


class TestFig12Row:
    def test_llbpx_gain_over_llbp(self):
        row = Fig12Row(
            workload="w", baseline_mpki=10.0, reductions={"llbp": 10.0, "llbpx": 19.0}
        )
        # LLBP MPKI 9.0, LLBP-X MPKI 8.1 -> 10% relative gain
        assert row.llbpx_gain_over_llbp == pytest.approx(10.0)

    def test_zero_baseline_guarded(self):
        row = Fig12Row(workload="w", baseline_mpki=0.0, reductions={"llbp": 100.0, "llbpx": 100.0})
        assert row.llbpx_gain_over_llbp == 0.0


class TestTimingBreakdown:
    def test_shares_sum_sensibly(self):
        breakdown = TimingBreakdown(
            machine="m", predictor="p", workload="w",
            instructions=1000, base_cycles=125.0,
            other_stall_cycles=300.0, branch_stall_cycles=100.0,
            override_stall_cycles=0.0,
        )
        assert breakdown.total_cycles == 525.0
        assert breakdown.cpi == pytest.approx(0.525)
        assert breakdown.branch_stall_share == pytest.approx(0.25)

    def test_empty_instruction_guard(self):
        breakdown = TimingBreakdown(
            machine="m", predictor="p", workload="w",
            instructions=0, base_cycles=0.0,
            other_stall_cycles=0.0, branch_stall_cycles=0.0,
            override_stall_cycles=0.0,
        )
        assert breakdown.cpi == 0.0
        assert breakdown.branch_stall_share == 0.0


class TestFig14aResult:
    def test_aggregation_fields(self):
        with_fp = PrefetchReport("llbpx", "w", timely=90, late=5, unused=40, false_path_issued=30)
        without = PrefetchReport("llbpx", "w", timely=85, late=5, unused=15, false_path_issued=30)
        result = Fig14aResult(
            with_false_path=with_fp, without_false_path=without, accuracy_drop_percent=1.2
        )
        assert result.with_false_path.unused > result.without_false_path.unused
        assert not math.isnan(result.accuracy_drop_percent)
