"""Tests for the simulation loop and the experiment runner."""

import pytest

from repro.core.runner import (
    RunnerConfig,
    comparison_table,
    geometric_mean_mpki,
    reduction,
)
from repro.core.simulator import simulate
from repro.tage import TageSCL, TraceTensors, tsl_64k
from tests.conftest import TEST_SCALE, make_cond_trace


class TestSimulator:
    def test_warmup_excluded_from_measurement(self):
        trace = make_cond_trace([True] * 1000)
        tensors = TraceTensors(trace)
        result = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors, warmup_fraction=0.5)
        assert result.conditional_branches == 500
        assert result.instructions < result.total_instructions

    def test_zero_warmup(self):
        trace = make_cond_trace([True] * 100)
        tensors = TraceTensors(trace)
        result = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors, warmup_fraction=0.0)
        assert result.conditional_branches == 100
        assert result.instructions == result.total_instructions

    def test_invalid_warmup_rejected(self):
        trace = make_cond_trace([True] * 10)
        tensors = TraceTensors(trace)
        with pytest.raises(ValueError):
            simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors, warmup_fraction=1.0)

    def test_mpki_definition(self):
        trace = make_cond_trace([True] * 100)
        tensors = TraceTensors(trace)
        result = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors)
        assert result.mpki == 1000 * result.mispredictions / result.instructions

    def test_summary_readable(self):
        trace = make_cond_trace([True] * 100)
        tensors = TraceTensors(trace)
        result = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors)
        assert "MPKI" in result.summary()


class TestRunner:
    def test_result_cache_hits(self, quick_runner):
        a = quick_runner.run_one("kafka", "tsl_64k")
        b = quick_runner.run_one("kafka", "tsl_64k")
        assert a is b

    def test_overrides_key_the_cache(self, quick_runner):
        a = quick_runner.run_one("kafka", "llbp")
        b = quick_runner.run_one("kafka", "llbp", context_depth=2)
        assert a is not b

    def test_unknown_config_rejected(self, quick_runner):
        with pytest.raises(KeyError):
            quick_runner.run_one("kafka", "magic_predictor")

    def test_bundle_release(self, quick_runner):
        quick_runner.bundle("kafka")
        quick_runner.release("kafka")
        assert not quick_runner._bundles

    def test_run_matrix_shape(self, quick_runner):
        matrix = quick_runner.run_matrix(["kafka"], ["tsl_64k", "llbp"])
        assert set(matrix) == {"kafka"}
        assert set(matrix["kafka"]) == {"tsl_64k", "llbp"}

    def test_optw_runs(self, quick_runner):
        result = quick_runner.run_one("kafka", "llbpx_optw")
        assert result.predictor == "llbpx_optw"
        dynamic = quick_runner.run_one("kafka", "llbpx")
        # Opt-W is profile-then-replay of fixed depths; it should be at
        # least as good as the worse of the oracle options
        assert result.mpki <= dynamic.mpki * 1.05

    def test_predictor_names_propagate(self, quick_runner):
        assert quick_runner.run_one("kafka", "llbp_0lat").predictor == "llbp_0lat"


class TestComparisons:
    def test_reduction_sign(self, quick_runner):
        base = quick_runner.run_one("kafka", "tsl_64k")
        better = quick_runner.run_one("kafka", "tsl_512k")
        assert reduction(base, better) > 0
        assert reduction(base, base) == 0

    def test_comparison_table(self, quick_runner):
        matrix = quick_runner.run_matrix(["kafka"], ["tsl_64k", "tsl_512k"])
        rows = comparison_table(matrix, baseline="tsl_64k")
        assert rows[0].workload == "kafka"
        assert "tsl_512k" in rows[0].reductions

    def test_geometric_mean(self, quick_runner):
        base = quick_runner.run_one("kafka", "tsl_64k")
        assert geometric_mean_mpki([base]) == pytest.approx(base.mpki)
        with pytest.raises(ValueError):
            geometric_mean_mpki([])

    def test_runner_config_defaults(self):
        config = RunnerConfig()
        assert config.scale == 8
        assert config.num_branches == 120_000
