"""Shared fixtures: small traces and predictors sized for fast tests."""

from __future__ import annotations

import random

import pytest

from repro.core import Runner, RunnerConfig
from repro.llbp import ContextStreams
from repro.tage import TraceTensors, tsl_64k
from repro.traces import BranchKind, Trace, generate_workload

TEST_SCALE = 8


def make_cond_trace(outcomes, pc=0x1000, gap=3) -> Trace:
    """A trace of one conditional branch with the given outcome sequence."""
    trace = Trace(name="cond")
    for taken in outcomes:
        trace.append(pc, pc + 32, BranchKind.COND, bool(taken), gap)
    return trace


def make_mixed_trace(n=2000, seed=7) -> Trace:
    """A small trace mixing conditional branches, calls, and returns."""
    rng = random.Random(seed)
    trace = Trace(name="mixed", seed=seed)
    funcs = [0x8000 + 64 * i for i in range(6)]
    for i in range(n):
        kind = rng.choice([BranchKind.COND, BranchKind.COND, BranchKind.CALL, BranchKind.RETURN])
        if kind == BranchKind.COND:
            pc = 0x1000 + 8 * rng.randrange(20)
            trace.append(pc, pc + 32, kind, rng.random() < 0.6, rng.randrange(6))
        elif kind == BranchKind.CALL:
            trace.append(0x2000 + 8 * rng.randrange(8), rng.choice(funcs), kind, True, rng.randrange(6))
        else:
            trace.append(0x3000 + 8 * rng.randrange(8), 0x2000, kind, True, rng.randrange(6))
    return trace


@pytest.fixture(scope="session")
def small_workload_trace() -> Trace:
    """A cached 20K-branch nodeapp trace shared by integration tests."""
    return generate_workload("nodeapp", num_branches=20_000)


@pytest.fixture(scope="session")
def small_bundle(small_workload_trace):
    tensors = TraceTensors(small_workload_trace)
    return small_workload_trace, tensors, ContextStreams(tensors)


@pytest.fixture(scope="session")
def quick_runner() -> Runner:
    """A runner with short traces for experiment smoke tests."""
    return Runner(RunnerConfig(scale=TEST_SCALE, num_branches=15_000))


@pytest.fixture()
def tsl_config():
    return tsl_64k(scale=TEST_SCALE)
