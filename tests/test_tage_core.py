"""Behavioural tests for the TAGE core and TAGE-SC-L composition."""

import random

import pytest

from repro.core.simulator import simulate
from repro.tage import TageCore, TageSCL, TraceTensors, tsl_64k, tsl_infinite
from repro.traces.record import BranchKind, Trace
from tests.conftest import TEST_SCALE, make_cond_trace


def run_tsl(trace, config=None):
    config = config or tsl_64k(scale=TEST_SCALE)
    tensors = TraceTensors(trace)
    predictor = TageSCL(config, tensors)
    return simulate(predictor, trace, tensors, warmup_fraction=0.5), predictor


class TestTageLearnsPatterns:
    def test_always_taken(self):
        result, _ = run_tsl(make_cond_trace([True] * 1000))
        assert result.mispredictions == 0

    def test_always_not_taken(self):
        result, _ = run_tsl(make_cond_trace([False] * 1000))
        assert result.mispredictions == 0

    def test_alternating(self):
        result, _ = run_tsl(make_cond_trace([bool(i % 2) for i in range(2000)]))
        assert result.mispredictions <= 2

    def test_periodic_pattern(self):
        pattern = [True, True, False, True, False, False, True]
        outcomes = [pattern[i % len(pattern)] for i in range(4000)]
        result, _ = run_tsl(make_cond_trace(outcomes))
        assert result.miss_rate < 0.02

    def test_long_period_needs_long_history(self):
        # period 48 exceeds short tables; TAGE must escalate history length
        rng = random.Random(3)
        pattern = [rng.random() < 0.5 for _ in range(48)]
        outcomes = [pattern[i % 48] for i in range(8000)]
        result, predictor = run_tsl(outcomes and make_cond_trace(outcomes))
        assert result.miss_rate < 0.10
        assert predictor.tage.stats.get("allocations") > 0

    def test_copycat_cross_branch_correlation(self):
        rng = random.Random(1)
        trace = Trace(name="copycat")
        for _ in range(4000):
            lead = rng.random() < 0.5
            trace.append(0x1000, 0x2000, BranchKind.COND, lead, 2)
            trace.append(0x3000, 0x4000, BranchKind.COND, lead, 2)
        result, _ = run_tsl(trace)
        # the follower half is fully predictable, the leader is coin flips
        assert 0.20 < result.miss_rate < 0.32

    def test_random_branch_not_worse_than_coin(self):
        rng = random.Random(2)
        result, _ = run_tsl(make_cond_trace([rng.random() < 0.5 for _ in range(4000)]))
        assert result.miss_rate < 0.62


class TestCapacityEffects:
    def test_bigger_predictor_not_worse_on_big_workload(self, small_bundle):
        trace, tensors, _ = small_bundle
        small = simulate(TageSCL(tsl_64k(scale=32), tensors), trace, tensors)
        large = simulate(TageSCL(tsl_64k(scale=4), tensors), trace, tensors)
        assert large.mispredictions < small.mispredictions

    def test_infinite_best(self, small_bundle):
        trace, tensors, _ = small_bundle
        finite = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors)
        infinite = simulate(TageSCL(tsl_infinite(), tensors), trace, tensors)
        assert infinite.mispredictions < finite.mispredictions


class TestTageInternals:
    def test_occupancy_grows_with_allocations(self):
        trace = make_cond_trace([bool((i // 3) % 2) for i in range(2000)])
        tensors = TraceTensors(trace)
        core = TageCore(tsl_64k(scale=TEST_SCALE), tensors)
        assert core.occupancy() == 0.0
        assert core.entry_count() == 0
        for t in range(len(trace)):
            pred = core.predict(t, trace.pcs[t])
            core.update(t, trace.pcs[t], trace.taken[t], pred)
        assert 0.0 < core.occupancy() <= 1.0
        assert core.entry_count() > 0

    def test_prediction_reports_provider(self):
        trace = make_cond_trace([True] * 200)
        tensors = TraceTensors(trace)
        core = TageCore(tsl_64k(scale=TEST_SCALE), tensors)
        pred = core.predict(0, trace.pcs[0])
        assert pred.provider_table == -1  # nothing allocated yet
        assert pred.provider_length == 0

    def test_stats_track_updates(self):
        trace = make_cond_trace([True, False] * 300)
        result, predictor = run_tsl(trace)
        assert predictor.tage.stats.get("updates") == len(trace)

    def test_infinite_mode_allocates_dict_entries(self):
        trace = make_cond_trace([bool(i % 3) for i in range(600)])
        tensors = TraceTensors(trace)
        core = TageCore(tsl_infinite(), tensors)
        for t in range(len(trace)):
            pred = core.predict(t, trace.pcs[t])
            core.update(t, trace.pcs[t], trace.taken[t], pred)
        assert core.entry_count() > 0
        with pytest.raises(ValueError, match="entry_count"):
            core.occupancy()  # infinite mode has no capacity to be a fraction of


class TestStagedInterface:
    def test_base_predict_then_sc(self):
        trace = make_cond_trace([True] * 100)
        tensors = TraceTensors(trace)
        predictor = TageSCL(tsl_64k(scale=TEST_SCALE), tensors)
        staged = predictor.base_predict(0, trace.pcs[0])
        final = predictor.apply_sc(0, trace.pcs[0], staged, staged.pred, 0)
        assert isinstance(final, bool)
        assert staged.sc is not None

    def test_sc_disabled_config(self):
        trace = make_cond_trace([True] * 100)
        tensors = TraceTensors(trace)
        from dataclasses import replace

        config = replace(tsl_64k(scale=TEST_SCALE), use_sc=False, use_loop=False)
        predictor = TageSCL(config, tensors)
        staged = predictor.base_predict(0, trace.pcs[0])
        assert predictor.apply_sc(0, trace.pcs[0], staged, True, 0) is True
        assert staged.sc is None
