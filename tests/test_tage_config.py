"""Tests for TAGE configuration and presets."""

import pytest

from repro.tage.config import (
    DEEP_HISTORY_LENGTHS,
    HISTORY_LENGTHS,
    LLBP_HISTORY_LENGTHS,
    SHALLOW_HISTORY_LENGTHS,
    TageConfig,
    history_length_index,
    preset_by_name,
    tsl_512k,
    tsl_64k,
    tsl_infinite,
    tsl_small,
)


class TestHistoryLengths:
    def test_twenty_one_lengths(self):
        assert len(HISTORY_LENGTHS) == 21

    def test_paper_anchors_present(self):
        for anchor in (6, 37, 78, 112, 232, 1444, 3000):
            assert anchor in HISTORY_LENGTHS

    def test_strictly_increasing(self):
        assert list(HISTORY_LENGTHS) == sorted(set(HISTORY_LENGTHS))

    def test_shallow_range_spec(self):
        assert len(SHALLOW_HISTORY_LENGTHS) == 16
        assert SHALLOW_HISTORY_LENGTHS[0] == 6
        assert SHALLOW_HISTORY_LENGTHS[-1] == 232

    def test_deep_range_spec(self):
        assert len(DEEP_HISTORY_LENGTHS) == 16
        assert DEEP_HISTORY_LENGTHS[0] == 37
        assert DEEP_HISTORY_LENGTHS[-1] == 3000

    def test_llbp_subset(self):
        assert len(LLBP_HISTORY_LENGTHS) == 16
        assert set(LLBP_HISTORY_LENGTHS) <= set(HISTORY_LENGTHS)

    def test_history_length_index(self):
        assert history_length_index(6) == 0
        assert history_length_index(3000) == 20
        with pytest.raises(ValueError):
            history_length_index(7)


class TestPresets:
    def test_capacity_ratios(self):
        assert tsl_512k().entries_per_table == 8 * tsl_64k().entries_per_table

    def test_scaling_divides_entries(self):
        assert tsl_64k(scale=8).entries_per_table == tsl_64k().entries_per_table // 8

    def test_scaling_keeps_sc(self):
        assert tsl_64k(scale=8).sc_entries == tsl_64k().sc_entries

    def test_infinite_has_no_budget(self):
        with pytest.raises(ValueError):
            tsl_infinite().storage_bits()

    def test_storage_grows_with_capacity(self):
        assert tsl_512k().storage_bits() > tsl_64k().storage_bits()

    def test_64k_storage_plausible(self):
        kib = tsl_64k().storage_bits() / 8192
        assert 40 < kib < 90

    def test_preset_lookup(self):
        assert preset_by_name("tsl_512k").name == "tsl_512k"
        assert preset_by_name("tsl_16k").name == "tsl_16k"
        with pytest.raises(KeyError):
            preset_by_name("tsl_1m")

    def test_small_presets_shrink(self):
        assert tsl_small(7).entries_per_table < tsl_64k().entries_per_table

    def test_validation(self):
        with pytest.raises(ValueError):
            TageConfig(scale=0)
        with pytest.raises(ValueError):
            TageConfig(history_lengths=(12, 6))
        with pytest.raises(ValueError):
            TageConfig(history_lengths=())

    def test_tag_bits_short_vs_long(self):
        config = tsl_64k()
        assert config.tag_bits(0) < config.tag_bits(20)
