"""Interplay tests for the staged TSL interface as LLBP consumes it."""

import random

from repro.core.simulator import simulate
from repro.llbp import LLBP, ContextStreams, llbp_default
from repro.tage import TageSCL, TraceTensors, tsl_64k
from tests.conftest import TEST_SCALE, make_cond_trace
from tests.test_llbp import path_correlated_trace


class TestStandaloneEquivalence:
    def test_predict_equals_staged_composition(self):
        """TageSCL.predict must equal base_predict + apply_sc, step by step."""
        rng = random.Random(11)
        trace = make_cond_trace([rng.random() < 0.7 for _ in range(2000)])
        tensors = TraceTensors(trace)
        combined = TageSCL(tsl_64k(scale=TEST_SCALE), tensors)
        staged = TageSCL(tsl_64k(scale=TEST_SCALE), tensors)
        for t in range(len(trace)):
            pc, taken = trace.pcs[t], trace.taken[t]
            a = combined.predict(t, pc)
            b = staged.base_predict(t, pc)
            b.pred = staged.apply_sc(t, pc, b, b.pred, b.tage.confidence)
            assert a.pred == b.pred, f"divergence at t={t}"
            combined.update(t, pc, taken, a)
            staged.update_sc(t, pc, taken, b)
            staged.base_update(t, pc, taken, b)


class TestBaselineUnmodified:
    def test_tage_state_identical_with_and_without_llbp(self):
        """LLBP's first level is an *unmodified* TAGE: its table contents
        after a run must match a standalone TSL run on the same trace."""
        trace = path_correlated_trace(400)
        tensors = TraceTensors(trace)
        contexts = ContextStreams(tensors)

        standalone = TageSCL(tsl_64k(scale=TEST_SCALE), tensors)
        simulate(standalone, trace, tensors)

        wrapped = LLBP(llbp_default(scale=TEST_SCALE), tsl_64k(scale=TEST_SCALE), tensors, contexts)
        simulate(wrapped, trace, tensors)

        for table_a, table_b in zip(standalone.tage._ctrs, wrapped.tsl.tage._ctrs):
            assert list(table_a) == list(table_b)
        for table_a, table_b in zip(standalone.tage._tags, wrapped.tsl.tage._tags):
            assert list(table_a) == list(table_b)
        assert list(standalone.tage._bimodal) == list(wrapped.tsl.tage._bimodal)
