"""Batched-backend equivalence: batched execution must match reference bit for bit.

The config-batched backend (:mod:`repro.core.batched`) runs a group of
matrix cells sharing one base :class:`~repro.tage.config.TageConfig` as
a single shared-base pass plus per-lane replay tails.  This suite is its
correctness contract: for every workload profile, every batchable
configuration family, and a Fig-16 capacity-sweep group, the batched
result must be *identical* to the reference backend -- misprediction
counts, statistics, derived metrics, and (the strong form) full internal
predictor state down to every table entry.  It also pins the fallback
path for structurally non-batchable configurations, crash-retry
bit-identity for batched groups, and the backend-keyed timing store's
migration of bare legacy keys.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Runner, RunnerConfig, TimingStore
from repro.core.batched import base_config, plan_batches, run_group
from repro.core.simulator import (
    BACKEND_AUTO,
    BACKEND_BATCHED,
    BACKEND_REFERENCE,
    resolve_backend,
    simulate,
)
from repro.experiments.fig16_capacity import FIG16A_CONTEXTS
from repro.obs.metrics import registry as obs_registry
from repro.tage.config import tsl_64k
from repro.traces.workloads import WORKLOAD_NAMES
from tests.conftest import TEST_SCALE
from tests.test_step_equivalence import _predictor_state

CONFIG_NAMES = ("tsl_64k", "llbp", "llbpx")
NUM_BRANCHES = 2_000
SMALL = RunnerConfig(scale=TEST_SCALE, num_branches=NUM_BRANCHES)


def _reference_outcome(runner, workload, name, **overrides):
    """The reference backend's (result, predictor) for one cell.

    Mirrors ``Runner.run_one`` but keeps the predictor instance so its
    final table state can be digested and compared against the batched
    lane's predictor.
    """
    bundle = runner.bundle(workload)
    predictor = runner.build_predictor(name, bundle, **overrides)
    result = simulate(
        predictor,
        bundle.trace,
        bundle.tensors,
        warmup_fraction=runner.config.warmup_fraction,
    )
    result.predictor = name
    return result, predictor


def _assert_lane_matches_reference(outcome, reference_result, reference_predictor):
    assert outcome.result.mispredictions == reference_result.mispredictions
    assert outcome.result.warmup_mispredictions == reference_result.warmup_mispredictions
    assert outcome.result.conditional_branches == reference_result.conditional_branches
    assert outcome.result.stats == reference_result.stats
    assert outcome.result.extra == reference_result.extra
    assert outcome.result == reference_result  # full dataclass equality
    assert _predictor_state(outcome.predictor) == _predictor_state(reference_predictor)


# -- bit-identity: every workload, every batchable family -----------------------


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_batched_group_is_bit_identical(workload):
    cells = [(workload, name, {}) for name in CONFIG_NAMES]
    plan = plan_batches(cells, TEST_SCALE)
    assert [len(g) for g in plan.groups] == [len(CONFIG_NAMES)]
    assert plan.singles == [] and plan.fallbacks == 0

    batched_runner = Runner(SMALL)
    outcomes = run_group(batched_runner, workload, plan.groups[0])
    assert [o.cell for o in outcomes] == cells

    reference_runner = Runner(SMALL)
    for outcome in outcomes:
        _, name, _ = outcome.cell
        result, predictor = _reference_outcome(reference_runner, workload, name)
        _assert_lane_matches_reference(outcome, result, predictor)
        assert outcome.backend == "batched"
        assert outcome.seconds > 0


def test_fig16_capacity_sweep_group_is_bit_identical():
    """The motivating group: tsl_64k + the Fig-16a LLBP-X capacity lanes."""
    cells = [("kafka", "tsl_64k", {})] + [
        ("kafka", "llbpx_0lat", {"num_contexts": contexts, "store_assoc": 64})
        for contexts in FIG16A_CONTEXTS
    ]
    plan = plan_batches(cells, TEST_SCALE)
    assert plan.lanes == len(cells) and plan.fallbacks == 0

    outcomes = run_group(Runner(SMALL), "kafka", plan.groups[0])
    reference_runner = Runner(SMALL)
    for outcome in outcomes:
        _, name, overrides = outcome.cell
        result, predictor = _reference_outcome(reference_runner, "kafka", name, **overrides)
        _assert_lane_matches_reference(outcome, result, predictor)


# -- planning and fallback ------------------------------------------------------


class TestPlanning:
    def test_base_config_of_llbp_family_is_shared_tsl_64k(self):
        expected = tsl_64k(scale=TEST_SCALE)
        for name in ("llbp", "llbp_0lat", "llbpx", "llbpx_0lat"):
            assert base_config(name, TEST_SCALE) == expected
        assert base_config("tsl_64k", TEST_SCALE) == expected

    def test_base_config_rejects_structurally_divergent_cells(self):
        assert base_config("tsl_inf", TEST_SCALE) is None  # infinite capacity
        assert base_config("llbpx_optw", TEST_SCALE) is None  # profile-then-replay
        assert base_config("nonsense", TEST_SCALE) is None

    def test_plan_routes_infinite_to_singles(self):
        cells = [("kafka", "tsl_inf", {}), ("kafka", "tsl_64k", {}), ("kafka", "llbp", {})]
        plan = plan_batches(cells, TEST_SCALE)
        assert plan.singles == [("kafka", "tsl_inf", {})]
        assert plan.fallbacks == 1
        assert [len(g) for g in plan.groups] == [2]

    def test_min_lanes_demotes_singleton_groups(self):
        cells = [("kafka", "tsl_16k", {}), ("kafka", "tsl_64k", {}), ("kafka", "llbp", {})]
        plan = plan_batches(cells, TEST_SCALE, min_lanes=2)
        # tsl_16k has its own base config: a one-lane group, demoted
        assert ("kafka", "tsl_16k", {}) in plan.singles
        assert plan.fallbacks == 0  # demotion is not a structural fallback
        forced = plan_batches(cells, TEST_SCALE, min_lanes=1)
        assert forced.singles == [] and forced.lanes == 3

    def test_resolve_backend_values(self):
        assert resolve_backend(None) == BACKEND_AUTO
        assert resolve_backend(BACKEND_REFERENCE) == BACKEND_REFERENCE
        assert resolve_backend(BACKEND_BATCHED) == BACKEND_BATCHED
        with pytest.raises(ValueError):
            resolve_backend("vectorised")


class TestRunnerIntegration:
    CELLS = [
        (workload, name, {})
        for workload in ("kafka", "nodeapp")
        for name in ("tsl_64k", "llbp", "tsl_inf")
    ]

    def test_auto_backend_matches_reference_and_reports_groups(self):
        expected = Runner(SMALL, backend=BACKEND_REFERENCE).run_cells(self.CELLS)
        fallbacks_before = obs_registry().counter("backend.fallbacks").value
        runner = Runner(SMALL)  # default backend: auto
        assert runner.run_cells(self.CELLS) == expected
        assert obs_registry().counter("backend.fallbacks").value == fallbacks_before + 2

        report = runner.report
        assert report.batched_group_sizes == [2, 2]  # one group per workload
        totals = report.totals()
        assert totals["batched_groups"] == 2 and totals["batched_lanes"] == 4
        assert "batched_groups=2" in report.summary()
        backends = {
            (entry.workload, entry.config): entry.backend for entry in report.cells()
        }
        assert backends[("kafka", "tsl_64k")] == "batched"
        assert backends[("kafka", "tsl_inf")] == "reference"

    def test_auto_timings_are_keyed_by_backend(self):
        runner = Runner(SMALL)
        runner.run_cells([("kafka", "tsl_64k", {}), ("kafka", "llbp", {})])
        timings = runner.timing_store()
        assert timings.get("kafka", "tsl_64k", backend="batched") is not None
        assert timings.get("kafka", "tsl_64k") is None  # no reference observation

    def test_forced_batched_runs_singleton_groups(self):
        expected = Runner(SMALL, backend=BACKEND_REFERENCE).run_one("kafka", "tsl_64k")
        runner = Runner(SMALL, backend=BACKEND_BATCHED)
        assert runner.run_cells([("kafka", "tsl_64k", {})]) == [expected]
        assert runner.report.batched_group_sizes == [1]

    def test_forced_reference_never_groups(self):
        runner = Runner(SMALL, backend=BACKEND_REFERENCE)
        runner.run_cells([("kafka", "tsl_64k", {}), ("kafka", "llbp", {})])
        assert runner.report.batched_group_sizes == []
        assert all(entry.backend == "reference" for entry in runner.report.cells())

    def test_parallel_batched_matches_serial_reference(self):
        cells = [(w, c, {}) for w in ("kafka", "nodeapp") for c in ("tsl_64k", "llbp")]
        expected = Runner(SMALL, backend=BACKEND_REFERENCE).run_cells(cells)
        runner = Runner(SMALL)
        assert runner.run_cells(cells, jobs=2) == expected
        assert runner.report.totals()["batched_lanes"] == 4


# -- fault tolerance ------------------------------------------------------------


def test_crash_in_batched_group_retries_bit_identically(tmp_path, monkeypatch):
    """A worker crash mid-group kills every lane; the retry must still match."""
    cells = [(w, c, {}) for w in ("kafka", "nodeapp") for c in ("tsl_64k", "llbp")]
    expected = Runner(SMALL, backend=BACKEND_REFERENCE).run_cells(cells)
    monkeypatch.setenv(
        "REPRO_FAULT_SPEC",
        f"ledger={tmp_path / 'ledger'};crash:kafka/tsl_64k:1",
    )
    runner = Runner(SMALL)
    assert runner.run_cells(cells, jobs=2) == expected
    # the crash is recorded (failure incidents, then retries) yet every
    # cell still resolves by simulation
    assert runner.report.totals()["retries"] >= 1
    assert all(entry.source == "simulated" for entry in runner.report.cells())
    # the crashed group's member cells were re-attempted together
    kafka_entries = [e for e in runner.report.cells() if e.workload == "kafka"]
    assert any(e.attempts >= 2 for e in kafka_entries)


# -- timing-store backend dimension ---------------------------------------------


class TestTimingStoreBackendKeys:
    def test_bare_legacy_keys_migrate_to_reference(self, tmp_path):
        path = tmp_path / "timings.meta"
        path.write_text(json.dumps({"version": 1, "seconds": {"kafka/llbp": 2.0}}))
        store = TimingStore(path)
        assert store.get("kafka", "llbp") == 2.0  # default backend: reference
        assert store.get("kafka", "llbp", backend="batched") is None
        store.save()
        assert json.loads(path.read_text())["seconds"] == {"kafka/llbp@reference": 2.0}

    def test_backends_are_independent_series(self):
        store = TimingStore()
        store.observe("kafka", "llbp", 4.0)
        store.observe("kafka", "llbp", 1.0, backend="batched")
        assert store.get("kafka", "llbp") == 4.0
        assert store.get("kafka", "llbp", backend="batched") == 1.0
