"""Focused tests on TAGE's allocation and useful-bit machinery."""

from repro.tage import TageCore, TraceTensors, tsl_64k
from tests.conftest import TEST_SCALE, make_cond_trace


def drive(core, trace, start=0, stop=None):
    stop = stop if stop is not None else len(trace)
    for t in range(start, stop):
        pred = core.predict(t, trace.pcs[t])
        core.update(t, trace.pcs[t], trace.taken[t], pred)


class TestAllocation:
    def test_no_allocation_when_predicting_correctly(self):
        trace = make_cond_trace([True] * 500)
        tensors = TraceTensors(trace)
        core = TageCore(tsl_64k(scale=TEST_SCALE), tensors)
        drive(core, trace)
        # bimodal learns immediately; few or no tagged allocations needed
        assert core.stats.get("allocations") <= 3

    def test_allocations_on_hard_stream(self):
        trace = make_cond_trace([bool((i // 2) % 2) for i in range(1000)])
        tensors = TraceTensors(trace)
        core = TageCore(tsl_64k(scale=TEST_SCALE), tensors)
        drive(core, trace)
        assert core.stats.get("allocations") > 0

    def test_allocated_entries_have_longer_history(self):
        # after training on a pattern needing history, the provider should
        # be a tagged table, not the bimodal
        pattern = [True, True, False, False]
        trace = make_cond_trace([pattern[i % 4] for i in range(2000)])
        tensors = TraceTensors(trace)
        core = TageCore(tsl_64k(scale=TEST_SCALE), tensors)
        drive(core, trace)
        providers = set()
        for t in range(len(trace) - 50, len(trace)):
            providers.add(core.predict(t, trace.pcs[t]).provider_table)
        assert any(p >= 0 for p in providers)

    def test_useful_decay_fires_under_pressure(self):
        # when every candidate entry is protected by its useful bit,
        # allocation failures accumulate ticks until a decay sweep halves
        # all useful bits
        trace = make_cond_trace([True] * 10)
        tensors = TraceTensors(trace)
        core = TageCore(tsl_64k(scale=TEST_SCALE), tensors)
        for table in core._useful:
            for i in range(len(table)):
                table[i] = 1
        for _ in range(core._tick_max + 1):
            core._allocate(0, trace.pcs[0], True, provider_table=-1)
        assert core.stats.get("useful_decays") >= 1
        # the sweep halves 1-bit useful values to zero
        assert all(v == 0 for table in core._useful for v in table)

    def test_update_counts_mispredictions(self):
        trace = make_cond_trace([True, False] * 200)
        tensors = TraceTensors(trace)
        core = TageCore(tsl_64k(scale=TEST_SCALE), tensors)
        drive(core, trace)
        assert core.stats.get("mispredictions") > 0
        assert core.stats.get("updates") == len(trace)


class TestUseAltOnNA:
    def test_alt_choice_trained(self):
        # a noisy stream makes newly-allocated entries unreliable; the
        # use-alt counter should move from its centre
        import random

        rng = random.Random(4)
        trace = make_cond_trace([rng.random() < 0.85 for _ in range(4000)])
        tensors = TraceTensors(trace)
        core = TageCore(tsl_64k(scale=TEST_SCALE), tensors)
        drive(core, trace)
        assert core._use_alt != 8
