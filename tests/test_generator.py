"""Tests for the program model and trace generator."""

import pytest

from repro.traces.behaviors import BiasedBehavior, GlobalCorrelatedBehavior
from repro.traces.cfg import (
    CallSite,
    CondSite,
    Function,
    JumpSite,
    LoopSite,
    PcAllocator,
    Program,
)
from repro.traces.generator import TraceGenerator, generate_trace
from repro.traces.record import BranchKind


def tiny_program(seed=1):
    pc = PcAllocator()
    leaf_entry = pc.alloc(4)
    leaf = Function(
        name="leaf",
        entry_pc=leaf_entry,
        exit_pc=pc.alloc(1),
        sites=[CondSite(pc.alloc(2), pc.alloc(1) + 16, GlobalCorrelatedBehavior(seed, k=3))],
    )
    root_entry = pc.alloc(4)
    call_pc = pc.alloc(2)
    jump_pc = pc.alloc(2)
    loop_pc = pc.alloc(2)
    root = Function(
        name="root",
        entry_pc=root_entry,
        exit_pc=pc.alloc(1),
        sites=[
            CondSite(pc.alloc(2), pc.alloc(1) + 16, BiasedBehavior(seed ^ 1, 0.9)),
            CallSite(call_pc, [leaf], [1.0]),
            JumpSite(jump_pc, jump_pc + 24),
            LoopSite(loop_pc, loop_pc - 8, body=[CondSite(pc.alloc(2), pc.alloc(1), BiasedBehavior(seed ^ 2, 0.5))], mean_trips=3),
        ],
    )
    return Program(name="tiny", functions=[root, leaf])


class TestPcAllocator:
    def test_unique_and_aligned(self):
        alloc = PcAllocator()
        pcs = [alloc.alloc() for _ in range(100)]
        assert len(set(pcs)) == 100
        assert all(pc % 4 == 0 for pc in pcs)

    def test_multi_slot_reservation(self):
        alloc = PcAllocator(base=0)
        first = alloc.alloc(4)
        second = alloc.alloc()
        assert second - first == 16

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            PcAllocator().alloc(0)


class TestCfgValidation:
    def test_call_site_requires_callees(self):
        with pytest.raises(ValueError):
            CallSite(0, [], [])

    def test_call_site_weight_mismatch(self):
        leaf = tiny_program().functions[1]
        with pytest.raises(ValueError):
            CallSite(0, [leaf], [1.0, 2.0])

    def test_loop_requires_trips(self):
        with pytest.raises(ValueError):
            LoopSite(0, 0, body=[], mean_trips=0)

    def test_program_requires_functions(self):
        with pytest.raises(ValueError):
            Program(name="x", functions=[])

    def test_conditional_sites_include_loop_bodies(self):
        program = tiny_program()
        assert len(program.conditional_sites()) == 3

    def test_static_branch_count(self):
        program = tiny_program()
        # root: cond + call + jump + loop + loop-body cond + return = 6
        # leaf: cond + return = 2
        assert program.static_branch_count() == 8


class TestTraceGenerator:
    def test_deterministic(self):
        a = generate_trace(tiny_program(), 500, seed=9)
        b = generate_trace(tiny_program(), 500, seed=9)
        assert a.aslists("pcs", "taken") == b.aslists("pcs", "taken")

    def test_seed_changes_trace(self):
        a = generate_trace(tiny_program(), 500, seed=9)
        b = generate_trace(tiny_program(), 500, seed=10)
        assert a.aslists("pcs", "taken") != b.aslists("pcs", "taken")

    def test_meets_budget(self):
        trace = generate_trace(tiny_program(), 500)
        assert len(trace) >= 500

    def test_trace_validates(self):
        generate_trace(tiny_program(), 500).validate()

    def test_calls_matched_by_returns(self):
        trace = generate_trace(tiny_program(), 1000)
        calls = sum(1 for k in trace.kinds if k == BranchKind.CALL)
        rets = sum(1 for k in trace.kinds if k == BranchKind.RETURN)
        # every call returns; plus one return per root activation
        assert rets >= calls

    def test_loop_emits_taken_then_exit(self):
        trace = generate_trace(tiny_program(), 400, seed=3)
        program = tiny_program(seed=3)
        loop_pc = next(
            s.pc for s in program.functions[0].sites if isinstance(s, LoopSite)
        )
        outcomes = [t for pc, t, k in zip(trace.pcs, trace.taken, trace.kinds) if pc == loop_pc]
        # last iteration of each loop execution is not taken
        assert not all(outcomes) and any(outcomes)

    def test_request_types_bound_structure(self):
        gen = TraceGenerator(tiny_program(), seed=1, request_types=1)
        trace = gen.generate(300)
        # with a single request type every request is identical: the pc
        # sequence is periodic
        (pcs,) = trace.aslists("pcs")
        period_guess = pcs[1:].index(pcs[0]) + 1
        assert pcs[:period_guess] == pcs[period_guess : 2 * period_guess]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TraceGenerator(tiny_program(), mean_gap=-1)
        with pytest.raises(ValueError):
            TraceGenerator(tiny_program(), request_types=0)
        with pytest.raises(ValueError):
            TraceGenerator(tiny_program(), type_stickiness=1.0)
        with pytest.raises(ValueError):
            TraceGenerator(tiny_program()).generate(0)

    def test_zero_gap_mode(self):
        trace = generate_trace(tiny_program(), 200, mean_gap=0)
        assert all(g == 0 for g in trace.inst_gaps)

    def test_metadata_recorded(self):
        trace = generate_trace(tiny_program(), 200)
        assert trace.meta["requested_branches"] == 200
        assert "static_branches" in trace.meta
