"""Tests for the 14 named workload profiles."""

import pytest

from repro.traces.workloads import (
    ANALYSIS_WORKLOAD,
    GEM5_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    build_program,
    clear_trace_cache,
    generate_workload,
    workload_spec,
)


class TestProfiles:
    def test_fourteen_workloads(self):
        assert len(WORKLOAD_NAMES) == 14

    def test_gem5_set_excludes_google_traces(self):
        assert len(GEM5_WORKLOAD_NAMES) == 10
        for google in ("charlie", "delta", "merced", "whiskey"):
            assert google not in GEM5_WORKLOAD_NAMES

    def test_analysis_workload_is_nodeapp(self):
        assert ANALYSIS_WORKLOAD == "nodeapp"

    def test_lookup_case_insensitive(self):
        assert workload_spec("KAFKA").name == "kafka"

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload_spec("quake3")

    def test_unique_seeds(self):
        seeds = [workload_spec(n).seed for n in WORKLOAD_NAMES]
        assert len(set(seeds)) == len(seeds)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_program_builds(self, name):
        program = build_program(workload_spec(name))
        assert program.static_branch_count() > 50
        assert len(program.conditional_sites()) > 20

    def test_h2p_branches_present(self):
        program = build_program(workload_spec("nodeapp"))
        tags = {s.behavior.tag for s in program.conditional_sites()}
        assert "path_correlated" in tags


class TestGeneration:
    def test_trace_valid_and_sized(self):
        trace = generate_workload("kafka", num_branches=3000, use_cache=False)
        trace.validate()
        assert len(trace) >= 3000

    def test_cache_returns_same_object(self):
        clear_trace_cache()
        a = generate_workload("kafka", num_branches=2000)
        b = generate_workload("kafka", num_branches=2000)
        assert a is b
        clear_trace_cache()

    def test_seed_override(self):
        a = generate_workload("kafka", num_branches=2000, seed=1, use_cache=False)
        b = generate_workload("kafka", num_branches=2000, seed=2, use_cache=False)
        assert a.aslists("taken") != b.aslists("taken")

    def test_branch_mix_server_like(self):
        trace = generate_workload("nodeapp", num_branches=8000, use_cache=False)
        stats = trace.statistics()
        assert 0.2 < stats["unconditional"] / stats["branches"] < 0.55
        assert 80 < stats["branches_per_kilo_inst"] < 250

    def test_workloads_differ(self):
        a = generate_workload("kafka", num_branches=2000, use_cache=False)
        b = generate_workload("whiskey", num_branches=2000, use_cache=False)
        assert set(a.pcs) != set(b.pcs)
