"""Tests for the persistent trace-artifact store.

The load-bearing guarantees: a bundle materialised from the store (mmap +
wrap) yields *bit-identical* simulation results to a freshly built one
across workloads and predictor families; warm stores perform zero trace
generations (counter-verified); bumping ``GENERATOR_VERSION`` invalidates
every bundle; and concurrent writers cannot corrupt the store (atomic
renames, ``meta.json`` written last).
"""

import json
import multiprocessing

import pytest

import repro.core.artifacts as artifacts_mod
from repro.core import ArtifactStore, Runner, RunnerConfig

WORKLOADS = ("kafka", "nodeapp", "whiskey")
CONFIGS = ("tsl_64k", "llbp", "llbpx")

SMALL = RunnerConfig(scale=4, num_branches=4000)


@pytest.fixture(scope="module")
def fresh_results():
    runner = Runner(SMALL)
    return {
        (workload, config): runner.run_one(workload, config)
        for workload in WORKLOADS
        for config in CONFIGS
    }


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestBitIdentity:
    def test_warm_bundles_bit_identical_to_fresh(self, store, fresh_results):
        # cold pass populates the store
        cold = Runner(SMALL, artifacts=store)
        for workload in WORKLOADS:
            for config in CONFIGS:
                assert cold.run_one(workload, config) == fresh_results[(workload, config)]
        assert cold.bundle_builds == len(WORKLOADS)
        assert len(store) == len(WORKLOADS)

        # warm pass: fresh runner + store handle, zero builds
        warm = Runner(SMALL, artifacts=ArtifactStore(store.root))
        for workload in WORKLOADS:
            for config in CONFIGS:
                assert warm.run_one(workload, config) == fresh_results[(workload, config)]
        assert warm.bundle_builds == 0
        assert warm.bundle_loads == len(WORKLOADS)

    def test_derived_streams_are_persisted_and_reused(self, store):
        cold = Runner(SMALL, artifacts=store)
        cold.run_one("kafka", "llbp")
        assert store.derived_writes > 0

        reopened = ArtifactStore(store.root)
        warm = Runner(SMALL, artifacts=reopened)
        warm.run_one("kafka", "llbp")
        assert reopened.derived_loads > 0
        assert reopened.derived_writes == 0  # nothing recomputed

    def test_mmap_load_shares_trace_identity(self, store, fresh_results):
        Runner(SMALL, artifacts=store).bundle("kafka")
        bundle = ArtifactStore(store.root).load_bundle("kafka", SMALL)
        fresh = Runner(SMALL).bundle("kafka")
        assert bundle.trace == fresh.trace
        assert bundle.contexts.ub_prefix == fresh.contexts.ub_prefix
        assert bundle.contexts._values == fresh.contexts._values


class TestWarming:
    def test_warm_builds_missing_only(self, store):
        assert store.warm(WORKLOADS, SMALL) == len(WORKLOADS)
        assert store.warm(WORKLOADS, SMALL) == 0

    def test_warmed_runner_performs_zero_builds(self, store, fresh_results):
        store.warm(WORKLOADS, SMALL)
        runner = Runner(SMALL, artifacts=ArtifactStore(store.root))
        for workload in WORKLOADS:
            assert runner.run_one(workload, "tsl_64k") == fresh_results[(workload, "tsl_64k")]
        assert runner.bundle_builds == 0


class TestInvalidation:
    def test_generator_version_bump_changes_digest(self, store, monkeypatch):
        before = store.bundle_digest("kafka", SMALL)
        monkeypatch.setattr(artifacts_mod, "GENERATOR_VERSION", artifacts_mod.GENERATOR_VERSION + 1)
        assert store.bundle_digest("kafka", SMALL) != before

    def test_generator_version_bump_misses_existing_bundles(self, store, monkeypatch):
        store.warm(["kafka"], SMALL)
        assert store.has_bundle("kafka", SMALL)
        monkeypatch.setattr(artifacts_mod, "GENERATOR_VERSION", artifacts_mod.GENERATOR_VERSION + 1)
        assert not store.has_bundle("kafka", SMALL)
        assert store.load_bundle("kafka", SMALL) is None

    def test_key_mismatch_in_meta_is_rejected(self, store):
        store.warm(["kafka"], SMALL)
        directory = store.bundle_dir(store.bundle_digest("kafka", SMALL))
        meta = json.loads((directory / "meta.json").read_text())
        meta["key"]["num_branches"] = 999  # simulate digest collision / stale layout
        (directory / "meta.json").write_text(json.dumps(meta))
        assert store.load_bundle("kafka", SMALL) is None

    def test_incomplete_bundle_is_invisible(self, store):
        store.warm(["kafka"], SMALL)
        directory = store.bundle_dir(store.bundle_digest("kafka", SMALL))
        (directory / "meta.json").unlink()  # writer died before the completeness marker
        assert not store.has_bundle("kafka", SMALL)
        assert store.load_bundle("kafka", SMALL) is None
        assert len(store) == 0

    def test_seed_and_length_participate_in_identity(self, store):
        base = store.bundle_digest("kafka", SMALL)
        assert store.bundle_digest("kafka", RunnerConfig(scale=4, num_branches=5000)) != base
        assert store.bundle_digest("kafka", RunnerConfig(scale=4, num_branches=4000, seed=7)) != base
        # scale affects simulation, not the trace: same bundle
        assert store.bundle_digest("kafka", RunnerConfig(scale=8, num_branches=4000)) == base


def _race_writer(root: str) -> None:
    store = ArtifactStore(root)
    runner = Runner(SMALL, artifacts=store)
    runner.bundle("kafka")
    runner.run_one("kafka", "llbp")  # also races on derived-stream files


class TestConcurrency:
    def test_concurrent_writers_do_not_corrupt(self, store, fresh_results):
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_race_writer, args=(str(store.root),)) for _ in range(4)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        # no stray temp files, and the surviving bundle is fully usable
        assert not list(store.root.rglob("*.tmp*"))
        runner = Runner(SMALL, artifacts=ArtifactStore(store.root))
        assert runner.run_one("kafka", "llbp") == fresh_results[("kafka", "llbp")]
        assert runner.bundle_builds == 0


class TestHousekeeping:
    def test_clear_and_len(self, store):
        store.warm(["kafka", "nodeapp"], SMALL)
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0

    def test_stats_counters(self, store):
        store.warm(["kafka"], SMALL)
        stats = store.stats()
        assert stats["bundle_writes"] == 1
        reopened = ArtifactStore(store.root)
        reopened.load_bundle("kafka", SMALL)
        assert reopened.stats()["bundle_loads"] == 1
