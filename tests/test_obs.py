"""Tests for the ``repro.obs`` telemetry subsystem.

Covers the metrics primitives (counters, gauges, fixed-bucket
histograms, pull-collectors, cross-process merging), the crash-safe
JSONL event sink, span tracing, in-simulation sampling (including the
bit-identity guarantee with sampling enabled), the merged-run report
renderer, and — the integration contract — that a pool run with an
injected worker crash yields a merged telemetry directory whose counter
totals equal those of a plain serial run.
"""

import gc
import json
import os

import pytest

from repro import obs
from repro.core import Runner, RunnerConfig, RetryPolicy
from repro.core.faults import ENV_VAR
from repro.llbp import ContextStreams, LLBP, llbp_default
from repro.obs.metrics import reset_registry
from repro.obs.report import build_span_tree
from repro.tage import TageSCL, TraceTensors, tsl_64k
from repro.traces.workloads import generate_workload
from tests.conftest import TEST_SCALE

SMALL = RunnerConfig(scale=4, num_branches=3000)


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test starts and ends with no session and an empty registry."""
    obs.shutdown()
    reset_registry()
    yield
    obs.shutdown()
    reset_registry()


# -- metrics ---------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = obs.registry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(7)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == 7.0
        assert snap["pid"] == os.getpid()

    def test_registry_get_or_create_returns_same_instrument(self):
        reg = obs.registry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_histogram_percentiles(self):
        hist = obs.Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.mean == pytest.approx(105.5 / 5)
        assert hist.percentile(50) == 2.0  # 3rd of 5 lands in (1, 2]
        assert hist.percentile(99) == 100.0  # overflow bucket -> max seen
        assert obs.Histogram("e").percentile(50) == 0.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            obs.Histogram("h", bounds=(2.0, 1.0))

    def test_histogram_roundtrip(self):
        hist = obs.Histogram("h", bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(9.0)
        clone = obs.Histogram.from_dict("h", hist.to_dict())
        assert clone.bounds == hist.bounds
        assert clone.counts == hist.counts
        assert clone.count == 2 and clone.max_seen == 9.0

    def test_collector_folds_into_counters(self):
        class Store:
            def stats(self):
                return {"hits": 3, "misses": 1}

        store = Store()
        reg = obs.registry()
        reg.register_collector("store", store.stats)
        snap = reg.snapshot()
        assert snap["counters"]["store.hits"] == 3.0
        assert snap["counters"]["store.misses"] == 1.0

    def test_dead_collector_pruned_not_polled(self):
        class Store:
            def stats(self):
                return {"hits": 1}

        store = Store()
        reg = obs.registry()
        reg.register_collector("store", store.stats)
        del store
        gc.collect()
        assert "store.hits" not in reg.snapshot()["counters"]

    def test_failing_collector_skipped(self):
        class Bad:
            def stats(self):
                raise RuntimeError("boom")

        bad = Bad()
        reg = obs.registry()
        reg.register_collector("bad", bad.stats)
        reg.counter("ok").inc()
        assert reg.snapshot()["counters"] == {"ok": 1.0}

    def test_merge_snapshots(self):
        hist = obs.Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        snap_a = {"pid": 1, "counters": {"c": 2.0}, "gauges": {"g": 1.0},
                  "histograms": {"h": hist.to_dict()}}
        snap_b = {"pid": 2, "counters": {"c": 3.0}, "gauges": {"g": 9.0},
                  "histograms": {"h": hist.to_dict()}}
        merged = obs.merge_snapshots([snap_a, snap_b])
        assert merged["pids"] == [1, 2]
        assert merged["counters"]["c"] == 5.0
        assert merged["gauges"]["g"] == 9.0  # last writer wins
        assert merged["histograms"]["h"]["count"] == 2


# -- events ----------------------------------------------------------------------


class TestEvents:
    def test_emit_and_read_roundtrip(self, tmp_path):
        sink = obs.EventSink(tmp_path)
        sink.emit("alpha", value=1)
        sink.emit("beta", value=2)
        sink.close()
        events = obs.read_events(tmp_path)
        assert [e["type"] for e in events] == ["alpha", "beta"]
        assert events[0]["pid"] == os.getpid()

    def test_read_filters_by_type(self, tmp_path):
        sink = obs.EventSink(tmp_path)
        sink.emit("alpha")
        sink.emit("beta")
        sink.close()
        assert [e["type"] for e in obs.read_events(tmp_path, "beta")] == ["beta"]

    def test_torn_tail_line_skipped(self, tmp_path):
        sink = obs.EventSink(tmp_path)
        sink.emit("alpha")
        sink.close()
        path = next(tmp_path.glob("events-*.jsonl"))
        with open(path, "a") as handle:
            handle.write('{"ts": 1.0, "type": "tru')  # SIGKILL mid-write
        events = obs.read_events(tmp_path)
        assert [e["type"] for e in events] == ["alpha"]

    def test_closed_sink_refuses_writes(self, tmp_path):
        sink = obs.EventSink(tmp_path)
        sink.close()
        sink.emit("alpha")  # silently dropped, no crash
        assert obs.read_events(tmp_path) == []


# -- spans -----------------------------------------------------------------------


class TestSpans:
    def test_span_without_session_is_a_noop(self):
        with obs.span("quiet", key="v"):
            pass  # must not raise, must not create files

    def test_nested_spans_link_parents(self, tmp_path):
        obs.configure(tmp_path)
        with obs.span("outer"):
            with obs.span("inner", detail=1):
                pass
        obs.shutdown()
        spans = obs.read_events(tmp_path, "span")
        by_name = {e["name"]: e for e in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["attrs"] == {"detail": 1}
        assert by_name["outer"]["wall_seconds"] >= by_name["inner"]["wall_seconds"]

    def test_span_records_duration_histogram(self, tmp_path):
        obs.configure(tmp_path)
        with obs.span("timed"):
            pass
        snap = obs.registry().snapshot()
        obs.shutdown()
        assert snap["histograms"]["span.timed.seconds"]["count"] == 1

    def test_build_span_tree_promotes_orphans(self):
        events = [
            {"type": "span", "span_id": "a", "parent_id": None, "name": "root",
             "ts_start": 1.0, "wall_seconds": 2.0, "cpu_seconds": 1.0},
            {"type": "span", "span_id": "b", "parent_id": "a", "name": "child",
             "ts_start": 1.5, "wall_seconds": 0.5, "cpu_seconds": 0.2},
            {"type": "span", "span_id": "c", "parent_id": "dead-worker", "name": "orphan",
             "ts_start": 3.0, "wall_seconds": 1.0, "cpu_seconds": 0.1},
        ]
        roots = build_span_tree(events)
        assert [r.name for r in roots] == ["root", "orphan"]
        assert [c.name for c in roots[0].children] == ["child"]
        assert roots[0].self_wall == pytest.approx(1.5)


# -- telemetry sessions ----------------------------------------------------------


class TestTelemetry:
    def test_configure_scopes_registry(self, tmp_path):
        obs.registry().counter("stale").inc(99)
        obs.configure(tmp_path)
        assert "stale" not in obs.registry().snapshot()["counters"]
        assert (tmp_path / "meta.json").exists()

    def test_flush_then_merge_reads_own_snapshot(self, tmp_path):
        obs.configure(tmp_path)
        obs.registry().counter("work").inc(4)
        obs.flush()
        merged = obs.merged_metrics(tmp_path, include_local=False)
        assert merged["counters"]["work"] == 4.0
        assert merged["pids"] == [os.getpid()]

    def test_live_registry_supersedes_own_stale_file(self, tmp_path):
        obs.configure(tmp_path)
        obs.registry().counter("work").inc(1)
        obs.flush()
        obs.registry().counter("work").inc(1)  # not yet flushed
        merged = obs.merged_metrics(tmp_path)  # include_local=True
        assert merged["counters"]["work"] == 2.0

    def test_emit_event_disabled_is_free(self):
        obs.emit_event("ignored", key=1)  # no session: must be a no-op
        assert not obs.enabled()

    def test_worker_config_roundtrip(self, tmp_path):
        assert obs.worker_config() is None
        obs.configure(tmp_path, sample_interval=500)
        assert obs.worker_config() == (str(tmp_path), 500)

    def test_ensure_reuses_same_directory_session(self, tmp_path):
        session = obs.configure(tmp_path)
        assert obs.ensure(tmp_path) is session


# -- sampling --------------------------------------------------------------------


class TestSampling:
    @pytest.fixture(scope="class")
    def bundle(self):
        trace = generate_workload("kafka", num_branches=2000, use_cache=False)
        tensors = TraceTensors(trace)
        return trace, tensors, ContextStreams(tensors)

    def test_no_session_leaves_step_unwrapped(self, bundle):
        _, tensors, _ = bundle
        predictor = TageSCL(tsl_64k(scale=TEST_SCALE), tensors)
        assert obs.active_sampler() is None
        assert "sampled" not in predictor.step.__name__

    def test_session_without_interval_leaves_step_unwrapped(self, tmp_path, bundle):
        _, tensors, _ = bundle
        obs.configure(tmp_path, sample_interval=0)
        predictor = TageSCL(tsl_64k(scale=TEST_SCALE), tensors)
        assert obs.active_sampler() is None
        assert "sampled" not in predictor.step.__name__

    def test_sampler_rejects_nonpositive_interval(self, tmp_path):
        session = obs.configure(tmp_path)
        with pytest.raises(ValueError):
            obs.Sampler(0, session)

    def test_sampling_preserves_bit_identity(self, tmp_path, bundle):
        from repro.core.simulator import simulate

        trace, tensors, contexts = bundle
        baseline = simulate(
            LLBP(llbp_default(scale=TEST_SCALE), tsl_64k(scale=TEST_SCALE), tensors, contexts),
            trace, tensors, use_step=True,
        )
        obs.configure(tmp_path, sample_interval=250)
        predictor = LLBP(
            llbp_default(scale=TEST_SCALE), tsl_64k(scale=TEST_SCALE), tensors, contexts
        )
        assert "sampled" in predictor.step.__name__
        sampled = simulate(predictor, trace, tensors, use_step=True)
        snap = obs.registry().snapshot()
        obs.shutdown()

        assert sampled.mispredictions == baseline.mispredictions
        assert sampled.stats == baseline.stats
        assert sampled.extra == baseline.extra

        samples = obs.read_events(tmp_path, "sample")
        # only *conditional* branches flow through the fused step kernel,
        # so expect fewer than 2000/250 samples -- but at least a couple
        assert len(samples) >= 2
        values = samples[-1]["values"]
        assert "pb.hit_rate" in values and "tage.occupancy" in values
        assert any(name.startswith("predictor.llbp.") for name in snap["gauges"])

    def test_sample_fn_errors_do_not_kill_simulation(self, tmp_path):
        obs.configure(tmp_path, sample_interval=2)
        sampler = obs.active_sampler()

        def bad_sample():
            raise RuntimeError("probe failed")

        step = sampler.instrument("p", lambda t, pc, taken: 7, bad_sample)
        assert [step(i, 0, 1) for i in range(6)] == [7] * 6


# -- report rendering ------------------------------------------------------------


class TestReport:
    def _make_run(self, tmp_path):
        obs.configure(tmp_path)
        with obs.span("run_cells", jobs=1):
            with obs.span("simulate", workload="kafka"):
                pass
        obs.registry().counter("runner.simulations").inc()
        obs.emit_event("cell-failure", workload="kafka", config="llbp",
                       kind="pool-break", attempt=1)
        obs.emit_event("cell-success", workload="kafka", config="llbp", seconds=0.5)
        obs.emit_event("cell-success", workload="kafka", config="llbp", seconds=0.5)
        obs.emit_event("cell-success", workload="nodeapp", config="llbp", seconds=0.5)
        obs.shutdown()

    def test_render_report_contains_all_sections(self, tmp_path):
        self._make_run(tmp_path)
        text = obs.render_report(tmp_path)
        assert "span tree" in text
        assert "simulate workload=kafka" in text
        assert "runner.simulations" in text
        assert "fault/retry timeline:" in text
        assert "cell-failure" in text

    def test_timeline_shows_recovery_success_once(self, tmp_path):
        self._make_run(tmp_path)
        text = obs.render_report(tmp_path)
        timeline = text.split("fault/retry timeline:")[1]
        # the retried cell's success appears exactly once; the clean
        # nodeapp cell stays off the timeline entirely
        assert timeline.count("cell-success") == 1
        assert "nodeapp" not in timeline

    def test_empty_directory_renders(self, tmp_path):
        text = obs.render_report(tmp_path)
        assert "(no spans recorded)" in text
        assert "(no faults recorded)" in text

    def test_load_run_lists_pids(self, tmp_path):
        self._make_run(tmp_path)
        run = obs.load_run(tmp_path)
        assert run["pids"] == [os.getpid()]
        assert len(run["spans"]) == 1  # run_cells root with simulate child


# -- integration: crash-merge counter equality (satellite) -----------------------


class TestCrashMergeIntegration:
    def test_pool_crash_merge_matches_serial_totals(self, tmp_path, monkeypatch):
        serial_dir, pool_dir = tmp_path / "serial", tmp_path / "pool"

        obs.configure(serial_dir)
        serial_runner = Runner(SMALL)
        expected = serial_runner.run_matrix(["kafka"], ["tsl_16k", "llbp"])
        obs.shutdown()
        serial = obs.merged_metrics(serial_dir, include_local=False)

        monkeypatch.setenv(
            ENV_VAR, f"ledger={tmp_path / 'ledger'};crash:kafka/tsl_16k:1"
        )
        obs.configure(pool_dir)
        pool_runner = Runner(SMALL, retry_policy=RetryPolicy(retries=3, backoff=0.01))
        got = pool_runner.run_matrix(["kafka"], ["tsl_16k", "llbp"], jobs=2)
        obs.shutdown()
        monkeypatch.delenv(ENV_VAR)
        merged = obs.merged_metrics(pool_dir, include_local=False)

        assert got == expected
        assert pool_runner.report.total_retries >= 1
        # every cell simulated exactly once overall despite the crash:
        # the killed worker never flushed a snapshot for the dead attempt
        for name in ("runner.simulations", "runner.branches"):
            assert merged["counters"][name] == serial["counters"][name]
        assert serial["counters"]["runner.simulations"] == 2.0
        assert serial["counters"]["runner.branches"] == 2 * SMALL.num_branches
        # the retry itself is visible in the pool run's counters + events
        assert merged["counters"]["parallel.retries"] >= 1
        failures = obs.read_events(pool_dir, "cell-failure")
        assert any(e["workload"] == "kafka" for e in failures)
        # and the report renders a non-empty timeline for it
        report = obs.render_report(pool_dir)
        assert "cell-failure" in report and "pool-rebuild" in report

    def test_metrics_files_are_per_pid(self, tmp_path):
        obs.configure(tmp_path)
        Runner(SMALL).run_matrix(["kafka"], ["tsl_16k"], jobs=1)
        obs.shutdown()
        files = list(tmp_path.glob("metrics-*.json"))
        assert files
        for path in files:
            snap = json.loads(path.read_text())
            assert str(snap["pid"]) in path.name
