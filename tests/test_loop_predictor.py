"""Tests for the loop-exit predictor."""

import pytest

from repro.tage.loop_predictor import LoopPredictor


def drive_loop(predictor, pc, trips, iterations, tage_wrong=True):
    """Feed `iterations` executions of a `trips`-iteration loop."""
    for _ in range(iterations):
        for i in range(trips):
            taken = i < trips - 1
            predictor.update(pc, taken, tage_mispredicted=tage_wrong)


class TestLoopPredictor:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            LoopPredictor(entries=10)

    def test_learns_constant_trip_count(self):
        lp = LoopPredictor()
        pc = 0x400
        drive_loop(lp, pc, trips=5, iterations=12)
        # replay one loop execution, checking predictions
        entry = lp.entry_state(pc)
        assert entry is not None and entry.confidence == 7
        for i in range(5):
            pred = lp.predict(pc)
            assert pred.valid
            assert pred.pred == (i < 4)
            lp.update(pc, i < 4, tage_mispredicted=False)

    def test_not_confident_before_training(self):
        lp = LoopPredictor()
        drive_loop(lp, 0x400, trips=5, iterations=2)
        assert not lp.predict(0x400).valid

    def test_trip_change_resets_confidence(self):
        lp = LoopPredictor()
        drive_loop(lp, 0x400, trips=5, iterations=10)
        drive_loop(lp, 0x400, trips=7, iterations=1)
        entry = lp.entry_state(0x400)
        assert entry is not None and entry.confidence <= 1

    def test_allocation_only_on_tage_misprediction(self):
        lp = LoopPredictor()
        lp.update(0x400, True, tage_mispredicted=False)
        assert lp.entry_state(0x400) is None
        lp.update(0x400, True, tage_mispredicted=True)
        # age-based: first misprediction decrements age of resident entry;
        # empty entries have age 0 so this allocates
        assert lp.entry_state(0x400) is not None

    def test_jittery_loop_never_becomes_confident(self):
        lp = LoopPredictor()
        pc = 0x800
        import random

        rng = random.Random(5)
        for _ in range(30):
            trips = rng.choice([4, 5, 6])
            for i in range(trips):
                lp.update(pc, i < trips - 1, tage_mispredicted=True)
        assert not lp.predict(pc).valid

    def test_distinct_pcs_use_distinct_entries(self):
        lp = LoopPredictor()
        drive_loop(lp, 0x400, trips=4, iterations=10)
        drive_loop(lp, 0x404, trips=6, iterations=10)
        a = lp.entry_state(0x400)
        b = lp.entry_state(0x404)
        assert a is not None and b is not None
        assert a.past_iter != b.past_iter
