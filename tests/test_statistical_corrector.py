"""Tests for the statistical corrector."""

import random

from repro.core.simulator import simulate
from repro.tage import StatisticalCorrector, TageSCL, TraceTensors, tsl_64k
from repro.traces.record import BranchKind, Trace
from tests.conftest import TEST_SCALE, make_cond_trace


def make_sc(trace):
    tensors = TraceTensors(trace)
    return StatisticalCorrector(tsl_64k(scale=TEST_SCALE), tensors), tensors


class TestStatisticalCorrector:
    def test_learns_bias_and_overrides(self):
        # TAGE input claims not-taken with low confidence; reality is taken
        trace = make_cond_trace([True] * 800)
        sc, _ = make_sc(trace)
        overrode = 0
        for t in range(len(trace)):
            result = sc.predict(t, trace.pcs[t], input_pred=False, input_conf=0)
            if result.overrode:
                overrode += 1
            sc.update(t, trace.pcs[t], True, result)
        assert overrode > 600  # corrects the bogus input after warmup

    def test_respects_confident_input(self):
        rng = random.Random(1)
        trace = make_cond_trace([rng.random() < 0.5 for _ in range(500)])
        sc, _ = make_sc(trace)
        overrides = 0
        for t in range(len(trace)):
            result = sc.predict(t, trace.pcs[t], input_pred=trace.taken[t], input_conf=3)
            if result.overrode:
                overrides += 1
            sc.update(t, trace.pcs[t], trace.taken[t], result)
        # input is always right and confident: SC should rarely override
        assert overrides < 50

    def test_threshold_adapts_up_on_bad_overrides(self):
        rng = random.Random(2)
        trace = make_cond_trace([rng.random() < 0.5 for _ in range(2000)])
        sc, _ = make_sc(trace)
        theta0 = sc.theta
        for t in range(len(trace)):
            # input prediction is perfect; any override is wrong
            result = sc.predict(t, trace.pcs[t], input_pred=trace.taken[t], input_conf=0)
            sc.update(t, trace.pcs[t], trace.taken[t], result)
        assert sc.theta >= theta0

    def test_local_history_component(self):
        # pattern branch interleaved with noise: only local history can fix it
        rng = random.Random(7)
        pattern = [True, False, True, True, False]
        trace = Trace(name="toy")
        for i in range(4000):
            trace.append(0x1000, 0x2000, BranchKind.COND, rng.random() < 0.5, 3)
            trace.append(0x3000, 0x4000, BranchKind.COND, pattern[i % 5], 3)
        tensors = TraceTensors(trace)
        predictor = TageSCL(tsl_64k(scale=TEST_SCALE), tensors)
        miss = total = 0
        for t in range(len(trace)):
            pc, taken = trace.pcs[t], trace.taken[t]
            pred = predictor.predict(t, pc)
            if pc == 0x3000 and t > len(trace) // 2:
                total += 1
                miss += pred.pred != taken
            predictor.update(t, pc, taken, pred)
        assert miss / total < 0.05


class TestSCIntegration:
    def test_sc_improves_biased_noise(self):
        rng = random.Random(3)
        outcomes = [rng.random() < 0.9 for _ in range(4000)]
        trace = make_cond_trace(outcomes)
        tensors = TraceTensors(trace)
        from dataclasses import replace

        with_sc = simulate(TageSCL(tsl_64k(scale=TEST_SCALE), tensors), trace, tensors)
        without = simulate(
            TageSCL(replace(tsl_64k(scale=TEST_SCALE), use_sc=False), tensors), trace, tensors
        )
        assert with_sc.mispredictions <= without.mispredictions
