"""Tests for the Context Tracking Table."""

import pytest

from repro.llbp.ctt import ContextTrackingTable


def make_ctt(entries=24, assoc=4, tag_bits=6, counter_bits=3):
    return ContextTrackingTable(entries, assoc, tag_bits, counter_bits)


class TestTracking:
    def test_untracked_is_shallow(self):
        assert not make_ctt().is_deep(123)

    def test_track_creates_entry(self):
        ctt = make_ctt()
        entry = ctt.track(123)
        assert entry.avg_hist_len == 0 and not entry.deep
        assert ctt.tracked_count() == 1

    def test_track_idempotent(self):
        ctt = make_ctt()
        a = ctt.track(123)
        b = ctt.track(123)
        assert a is b and ctt.tracked_count() == 1

    def test_lru_eviction_within_set(self):
        ctt = make_ctt(entries=8, assoc=2)
        sets = ctt.num_sets
        # three contexts in the same set with distinct tags
        first, second, third = sets * 1, sets * 2, sets * 3
        ctt.track(first)
        ctt.track(second)
        ctt.lookup(first)  # refresh
        ctt.track(third)
        assert ctt.lookup(second) is None
        assert ctt.lookup(first) is not None
        assert ctt.stats.get("evictions") == 1

    def test_rejects_too_few_entries(self):
        with pytest.raises(ValueError):
            ContextTrackingTable(entries=2, assoc=4, tag_bits=6, avg_hist_len_bits=3)


class TestDepthAdaptation:
    def test_observe_untracked_noop(self):
        ctt = make_ctt()
        assert ctt.observe_allocation(55, 3000, threshold=232) is None
        assert ctt.tracked_count() == 0

    def test_transition_to_deep_on_long_allocations(self):
        ctt = make_ctt()
        ctt.track(9)
        transitions = [ctt.observe_allocation(9, 500, threshold=232) for _ in range(8)]
        assert True in transitions
        assert ctt.is_deep(9)
        assert ctt.deep_count() == 1

    def test_step_accelerates_transition(self):
        slow, fast = make_ctt(), make_ctt()
        slow.track(9)
        fast.track(9)
        slow_steps = fast_steps = 0
        while not slow.is_deep(9):
            slow.observe_allocation(9, 500, threshold=232, step=1)
            slow_steps += 1
        while not fast.is_deep(9):
            fast.observe_allocation(9, 500, threshold=232, step=4)
            fast_steps += 1
        assert fast_steps < slow_steps

    def test_short_allocations_keep_shallow(self):
        ctt = make_ctt()
        ctt.track(9)
        for _ in range(50):
            assert ctt.observe_allocation(9, 6, threshold=232) is None
        assert not ctt.is_deep(9)

    def test_hysteresis_reverts_to_shallow(self):
        ctt = make_ctt()
        ctt.track(9)
        while not ctt.is_deep(9):
            ctt.observe_allocation(9, 500, threshold=232)
        reverted = False
        for _ in range(20):
            if ctt.observe_allocation(9, 6, threshold=232) is False:
                reverted = True
                break
        assert reverted and not ctt.is_deep(9)

    def test_mixed_allocations_with_asymmetric_step(self):
        # 30% long with step 4 should still transition (net positive)
        ctt = make_ctt()
        ctt.track(9)
        pattern = [500, 6, 6, 500, 6, 6, 6, 500, 6, 500] * 10
        for length in pattern:
            ctt.observe_allocation(9, length, threshold=232, step=4)
        assert ctt.is_deep(9)

    def test_counter_saturation_bound(self):
        ctt = make_ctt(counter_bits=3)
        entry = ctt.track(9)
        for _ in range(100):
            ctt.observe_allocation(9, 999, threshold=1)
        assert entry.avg_hist_len == 7
