"""Tests for the limit-study ladder machinery."""

import pytest

from repro.core.limit_study import LIMIT_STEPS, cumulative_overrides, run_limit_study


class TestLadderDefinition:
    def test_six_steps(self):
        assert len(LIMIT_STEPS) == 6
        assert LIMIT_STEPS[0][0] == "LLBP-0Lat"
        assert LIMIT_STEPS[-1][0] == "+No Contextualization"

    def test_cumulative_merge_is_monotone(self):
        previous_keys = set()
        for index in range(len(LIMIT_STEPS)):
            merged = cumulative_overrides(index)
            assert previous_keys <= set(merged)
            previous_keys = set(merged)

    def test_first_step_empty(self):
        assert cumulative_overrides(0) == {}

    def test_tweaks_step_disables_all_three(self):
        merged = cumulative_overrides(1)
        assert merged == {
            "use_bucketing": False,
            "restrict_histories": False,
            "suppress_sc": False,
        }


class TestLadderExecution:
    def test_normalized_baseline_is_one(self, quick_runner):
        steps = run_limit_study(quick_runner, ["kafka"], steps=[0, 1])
        assert steps[0].normalized == 1.0
        assert steps[0].step_reduction == 0.0

    def test_subset_of_steps(self, quick_runner):
        steps = run_limit_study(quick_runner, ["kafka"], steps=[0, 5])
        assert [s.label for s in steps] == ["LLBP-0Lat", "+No Contextualization"]

    def test_full_removal_helps(self, quick_runner):
        steps = run_limit_study(quick_runner, ["kafka"], steps=[0, 5])
        assert steps[-1].mpki < steps[0].mpki

    def test_step_reduction_consistency(self, quick_runner):
        steps = run_limit_study(quick_runner, ["kafka"], steps=[0, 1, 5])
        for prev, cur in zip(steps, steps[1:]):
            expected = 100 * (prev.mpki - cur.mpki) / prev.mpki
            assert cur.step_reduction == pytest.approx(expected)
