"""Tests for the fault-tolerance layer.

Covers the deterministic fault injector (spec parsing, slot accounting),
the retrying parallel executor (crash / raise / hang recovery,
bit-identical results, retry budgets, serial fallback), the self-healing
stores (quarantine + stale-temp sweeps), the merge-save timing store,
and the structured :class:`RunReport`.
"""

import json
import os
import time

import pytest

from repro.core import (
    ArtifactStore,
    CellExecutionError,
    FaultError,
    FaultInjector,
    ResultCache,
    RetryPolicy,
    Runner,
    RunnerConfig,
    RunReport,
    TimingStore,
    parse_fault_spec,
)
from repro.core.faults import ENV_VAR, FaultRule, active_injector

SMALL = RunnerConfig(scale=4, num_branches=3000)


class TestParseFaultSpec:
    def test_minimal_clause(self):
        rules, ledger = parse_fault_spec("crash:kafka/tsl_64k")
        assert ledger is None
        assert rules == [FaultRule("crash", "kafka", "tsl_64k", 1, 3600.0)]

    def test_count_and_seconds(self):
        rules, _ = parse_fault_spec("hang:kafka/llbp:2:5.5")
        assert rules[0].count == 2 and rules[0].seconds == 5.5

    def test_multiple_clauses_and_ledger(self):
        rules, ledger = parse_fault_spec(
            "ledger=/tmp/led;crash:kafka/tsl_64k:1;raise:*/llbp:3"
        )
        assert str(ledger) == "/tmp/led"
        assert [rule.kind for rule in rules] == ["crash", "raise"]
        assert rules[1].workload == "*"

    def test_empty_clauses_skipped(self):
        rules, _ = parse_fault_spec(";;crash:a/b;;")
        assert len(rules) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("explode:kafka/llbp")

    def test_missing_slash_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("crash:kafka")

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("crash:a/b:soon")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("crash:a/b:-1")

    def test_too_many_fields_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("crash:a/b:1:2:3")

    def test_from_spec_empty_is_none(self):
        assert FaultInjector.from_spec(None) is None
        assert FaultInjector.from_spec("") is None
        assert FaultInjector.from_spec("ledger=/tmp/led") is None


class TestFaultInjector:
    def test_rule_matching(self):
        rule = FaultRule("crash", "*", "llbp")
        assert rule.matches("kafka", "llbp")
        assert rule.matches("nodeapp", "llbp")
        assert not rule.matches("kafka", "tsl_64k")

    def test_in_memory_count_burns_out(self):
        injector = FaultInjector([FaultRule("raise", "kafka", "llbp", count=2)])
        for _ in range(2):
            with pytest.raises(FaultError):
                injector.fire("kafka", "llbp", in_worker=False)
        injector.fire("kafka", "llbp", in_worker=False)  # burned out: no-op

    def test_crash_degrades_to_raise_in_process(self):
        injector = FaultInjector([FaultRule("crash", "kafka", "llbp")])
        with pytest.raises(FaultError):
            injector.fire("kafka", "llbp", in_worker=False)

    def test_non_matching_cell_untouched(self):
        injector = FaultInjector([FaultRule("raise", "kafka", "llbp")])
        injector.fire("nodeapp", "llbp", in_worker=False)  # no fault

    def test_ledger_claims_shared_across_injectors(self, tmp_path):
        rule = FaultRule("raise", "kafka", "llbp", count=1)
        first = FaultInjector([rule], ledger=tmp_path)
        with pytest.raises(FaultError):
            first.fire("kafka", "llbp", in_worker=False)
        # a second injector (another process in real life) sees the claim
        second = FaultInjector([rule], ledger=tmp_path)
        second.fire("kafka", "llbp", in_worker=False)  # slot already burned

    def test_wildcard_budget_is_per_cell(self):
        injector = FaultInjector([FaultRule("raise", "*", "llbp", count=1)])
        with pytest.raises(FaultError):
            injector.fire("kafka", "llbp", in_worker=False)
        with pytest.raises(FaultError):
            injector.fire("nodeapp", "llbp", in_worker=False)
        injector.fire("kafka", "llbp", in_worker=False)  # kafka's slot burned

    def test_hang_sleeps_for_requested_duration(self):
        injector = FaultInjector([FaultRule("hang", "kafka", "llbp", seconds=0.3)])
        start = time.monotonic()
        injector.fire("kafka", "llbp", in_worker=False)
        assert time.monotonic() - start >= 0.3

    def test_should_corrupt_counts_slots(self):
        injector = FaultInjector([FaultRule("corrupt", "kafka", "llbp", count=1)])
        assert injector.should_corrupt("kafka", "llbp") is True
        assert injector.should_corrupt("kafka", "llbp") is False
        assert injector.should_corrupt("nodeapp", "llbp") is False

    def test_active_injector_tracks_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert active_injector() is None
        monkeypatch.setenv(ENV_VAR, "raise:kafka/llbp:1")
        injector = active_injector()
        assert injector is not None
        assert active_injector() is injector  # cached while spec unchanged
        monkeypatch.delenv(ENV_VAR)
        assert active_injector() is None


class TestCrashRecovery:
    """The tentpole acceptance path: injected faults, bit-identical results."""

    def test_raise_faults_exact_retry_accounting(self, tmp_path, monkeypatch):
        # raised exceptions keep the pool healthy, so the accounting is
        # exact: each faulted cell is charged precisely its own failure
        expected = Runner(SMALL).run_matrix(["kafka"], ["tsl_16k", "llbp"])
        monkeypatch.setenv(
            ENV_VAR,
            f"ledger={tmp_path / 'ledger'};raise:kafka/tsl_16k:1;raise:kafka/llbp:1",
        )
        runner = Runner(SMALL, retry_policy=RetryPolicy(retries=3, backoff=0.01))
        got = runner.run_matrix(["kafka"], ["tsl_16k", "llbp"], jobs=2)
        assert got == expected
        report = runner.report
        assert report.cell("kafka", "tsl_16k").retries == 1
        assert report.cell("kafka", "llbp").retries == 1
        assert report.total_retries == 2
        assert report.pool_rebuilds == 0
        assert not report.serial_fallback

    def test_worker_crashes_recovered_bit_identical(self, tmp_path, monkeypatch):
        expected = Runner(SMALL).run_matrix(["kafka"], ["tsl_16k", "llbp"])
        monkeypatch.setenv(
            ENV_VAR,
            f"ledger={tmp_path / 'ledger'};crash:kafka/tsl_16k:1;crash:kafka/llbp:1",
        )
        runner = Runner(SMALL, retry_policy=RetryPolicy(retries=3, backoff=0.01))
        got = runner.run_matrix(["kafka"], ["tsl_16k", "llbp"], jobs=2)
        assert got == expected
        report = runner.report
        tsl, llbp = report.cell("kafka", "tsl_16k"), report.cell("kafka", "llbp")
        assert tsl.retries >= 1 and llbp.retries >= 1
        assert tsl.source == "simulated" and llbp.source == "simulated"
        assert report.pool_rebuilds >= 1
        # a dead worker is only ever observed as a pool break
        for failure in tsl.failures + llbp.failures:
            assert failure["kind"] == "pool-break"

    def test_hang_trips_timeout_and_retries(self, tmp_path, monkeypatch):
        expected = Runner(SMALL).run_matrix(["kafka"], ["tsl_16k", "llbp"])
        monkeypatch.setenv(
            ENV_VAR, f"ledger={tmp_path / 'ledger'};hang:kafka/tsl_16k:1:60"
        )
        runner = Runner(
            SMALL, retry_policy=RetryPolicy(retries=2, backoff=0.01, timeout=2.0)
        )
        got = runner.run_matrix(["kafka"], ["tsl_16k", "llbp"], jobs=2)
        assert got == expected
        report = runner.report
        assert report.timeouts == 1
        tsl = report.cell("kafka", "tsl_16k")
        assert [failure["kind"] for failure in tsl.failures] == ["timeout"]
        assert tsl.retries == 1
        # the wedged worker must actually be dead -- an unterminated one
        # blocks interpreter exit until its 60 s sleep finishes
        import multiprocessing

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(p.is_alive() for p in multiprocessing.active_children()):
                break
            time.sleep(0.05)
        assert not any(p.is_alive() for p in multiprocessing.active_children())

    def test_retry_budget_exhausted_raises_without_hanging(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise:kafka/tsl_16k:99")
        runner = Runner(SMALL, retry_policy=RetryPolicy(retries=1, backoff=0.01))
        with pytest.raises(CellExecutionError) as excinfo:
            runner.run_matrix(["kafka"], ["tsl_16k", "llbp"], jobs=2)
        assert excinfo.value.kind == "exception"
        assert "FaultError" in excinfo.value.detail
        assert excinfo.value.attempts == 2  # first run + the one retry

    def test_repeated_pool_breaks_degrade_to_serial(self, tmp_path, monkeypatch):
        expected = Runner(SMALL).run_matrix(["kafka"], ["tsl_16k", "llbp"])
        monkeypatch.setenv(
            ENV_VAR, f"ledger={tmp_path / 'ledger'};crash:kafka/tsl_16k:3"
        )
        runner = Runner(
            SMALL,
            retry_policy=RetryPolicy(retries=6, backoff=0.01, pool_failure_limit=2),
        )
        got = runner.run_matrix(["kafka"], ["tsl_16k", "llbp"], jobs=2)
        assert got == expected
        assert runner.report.serial_fallback is True

    def test_serial_path_records_report_too(self):
        runner = Runner(SMALL)
        runner.run_matrix(["kafka"], ["tsl_16k"])
        cell = runner.report.cell("kafka", "tsl_16k")
        assert cell.source == "simulated"
        assert cell.attempts == 1 and cell.retries == 0


class TestCorruptWriteSelfHealing:
    def test_quarantine_then_resimulate_bit_identical(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        expected = Runner(SMALL).run_one("kafka", "tsl_16k")

        monkeypatch.setenv(ENV_VAR, "corrupt:kafka/tsl_16k:1")
        writer = Runner(SMALL, cache=ResultCache(cache_dir))
        writer.run_one("kafka", "tsl_16k")
        (entry,) = cache_dir.glob("*.json")
        payload = json.loads(entry.read_text())
        assert "result" not in payload  # well-formed JSON, right version, no result
        monkeypatch.delenv(ENV_VAR)

        healer = Runner(SMALL, cache=ResultCache(cache_dir))
        assert healer.run_one("kafka", "tsl_16k") == expected
        assert healer.sim_count == 1
        assert healer.cache.quarantined == 1
        assert list(cache_dir.glob("*.json.corrupt"))

        warm = Runner(SMALL, cache=ResultCache(cache_dir))
        assert warm.run_one("kafka", "tsl_16k") == expected
        assert warm.sim_count == 0  # the healed entry serves the repeat run


class TestTimingStoreMerge:
    def test_concurrent_saves_blend_instead_of_clobbering(self, tmp_path):
        path = tmp_path / "timings.meta"
        a = TimingStore(path)
        b = TimingStore(path)  # loaded before a saved: knows nothing of a
        a.observe("kafka", "llbp", 2.0)
        a.save()
        b.observe("kafka", "llbp", 4.0)
        b.save()
        assert TimingStore(path).get("kafka", "llbp") == pytest.approx(3.0)

    def test_disk_only_keys_adopted_on_save(self, tmp_path):
        path = tmp_path / "timings.meta"
        a = TimingStore(path)
        b = TimingStore(path)
        a.observe("kafka", "llbp", 2.0)
        a.save()
        b.observe("nodeapp", "tsl_64k", 1.0)
        b.save()
        merged = TimingStore(path)
        assert merged.get("kafka", "llbp") == pytest.approx(2.0)
        assert merged.get("nodeapp", "tsl_64k") == pytest.approx(1.0)

    def test_unchanged_disk_keys_not_reblended(self, tmp_path):
        path = tmp_path / "timings.meta"
        store = TimingStore(path)
        store.observe("kafka", "llbp", 2.0)
        store.save()
        store.save()  # disk matches the synced snapshot: value must not drift
        assert TimingStore(path).get("kafka", "llbp") == pytest.approx(2.0)

    def test_stale_temp_swept_on_init(self, tmp_path):
        path = tmp_path / "timings.meta"
        stale = tmp_path / "timings.meta.tmp.999999999"
        stale.write_text("partial")
        TimingStore(path)
        assert not stale.exists()

    def test_live_temp_kept(self, tmp_path):
        path = tmp_path / "timings.meta"
        live = tmp_path / f"timings.meta.tmp.{os.getpid()}"
        live.write_text("in flight")
        TimingStore(path)
        assert live.exists()


class TestArtifactStoreSelfHealing:
    def test_undecodable_meta_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        directory = store.bundle_dir(store.bundle_digest("kafka", SMALL))
        directory.mkdir()
        (directory / "meta.json").write_text("{ torn write")
        assert store.load_bundle("kafka", SMALL) is None
        assert store.quarantined == 1
        assert (directory / "meta.json.corrupt").exists()

    def test_schema_invalid_meta_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        directory = store.bundle_dir(store.bundle_digest("kafka", SMALL))
        directory.mkdir()
        # right key, but no trace fields: a torn write on the value side
        meta = {"key": store.bundle_key("kafka", SMALL)}
        (directory / "meta.json").write_text(json.dumps(meta))
        assert store.load_bundle("kafka", SMALL) is None
        assert store.quarantined == 1

    def test_quarantined_bundle_regenerates(self, tmp_path):
        expected = Runner(SMALL).run_one("kafka", "tsl_16k")
        store = ArtifactStore(tmp_path)
        directory = store.bundle_dir(store.bundle_digest("kafka", SMALL))
        directory.mkdir()
        (directory / "meta.json").write_text("not even json")
        runner = Runner(SMALL, artifacts=store)
        assert runner.run_one("kafka", "tsl_16k") == expected
        assert store.quarantined == 1
        assert store.bundle_writes == 1  # regenerated over the damaged dir

    def test_clear_removes_quarantined_bundle_dirs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        directory = tmp_path / "feedbeef"
        directory.mkdir()
        (directory / "meta.json.corrupt").write_text("damaged")
        store.clear()
        assert not directory.exists()

    def test_stale_artifact_temps_swept(self, tmp_path):
        (tmp_path / ".ctx_values.npy.999999999.abcd1234.tmp.npy").write_text("x")
        (tmp_path / ".meta.json.999999999.abcd1234.tmp").write_text("x")
        store = ArtifactStore(tmp_path)
        assert store.temps_swept == 2
        assert list(tmp_path.iterdir()) == []

    def test_live_artifact_temp_kept(self, tmp_path):
        live = tmp_path / f".meta.json.{os.getpid()}.abcd1234.tmp"
        live.write_text("in flight")
        assert ArtifactStore(tmp_path).temps_swept == 0
        assert live.exists()


class TestRunReport:
    def test_records_accumulate_per_cell(self):
        report = RunReport()
        report.record_attempt("kafka", "llbp")
        report.record_failure("kafka", "llbp", None, "exception", "boom")
        report.record_attempt("kafka", "llbp")
        report.record_success("kafka", "llbp", None, 1.5)
        cell = report.cell("kafka", "llbp")
        assert cell.attempts == 2 and cell.retries == 1
        assert cell.source == "simulated" and cell.seconds == 1.5
        assert report.total_retries == 1 and report.total_failures == 1

    def test_cached_does_not_override_simulated(self):
        report = RunReport()
        report.record_success("kafka", "llbp", None, 1.0)
        report.record_cached("kafka", "llbp")
        assert report.cell("kafka", "llbp").source == "simulated"

    def test_overrides_distinguish_cells(self):
        report = RunReport()
        report.record_attempt("kafka", "llbp")
        report.record_attempt("kafka", "llbp", {"num_contexts": 1024})
        assert len(report.cells()) == 2

    def test_to_dict_is_json_serialisable(self):
        report = RunReport()
        report.record_attempt("kafka", "llbp")
        report.record_success("kafka", "llbp", None, 0.5)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["version"] == 1
        assert data["totals"]["cells"] == 1
        assert data["totals"]["simulated"] == 1
        assert data["quarantined"] == 0
        assert data["serial_fallback"] is False

    def test_to_dict_with_runner_surfaces_quarantines(self, tmp_path):
        runner = Runner(SMALL, cache=ResultCache(tmp_path / "cache"))
        runner.cache.quarantined = 2
        data = runner.report.to_dict(runner)
        assert data["quarantined"] == 2
        assert data["cache"]["quarantined"] == 2
        assert data["simulations"] == 0

    def test_summary_line_is_grep_friendly(self):
        report = RunReport()
        report.record_failure("kafka", "llbp", None, "pool-break", "died")
        line = report.summary()
        assert "retries=1" in line and "pool_rebuilds=0" in line
        assert "serial_fallback=no" in line

    def test_summary_with_runner_includes_quarantined(self, tmp_path):
        runner = Runner(SMALL, cache=ResultCache(tmp_path / "cache"))
        assert "quarantined=0" in runner.report.summary(runner)
