"""Public-API surface tests: exports exist, are documented, and compose."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.common",
    "repro.traces",
    "repro.tage",
    "repro.llbp",
    "repro.core",
    "repro.timing",
    "repro.metrics",
    "repro.experiments",
]


@pytest.mark.parametrize("name", PACKAGES)
class TestPackageSurface:
    def test_importable(self, name):
        importlib.import_module(name)

    def test_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 10

    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"

    def test_all_sorted_for_readability(self, name):
        module = importlib.import_module(name)
        exported = list(getattr(module, "__all__", []))
        assert exported == sorted(exported, key=str.lower) or exported == sorted(exported)


class TestPublicDocstrings:
    @pytest.mark.parametrize(
        "qualname",
        [
            "repro.tage.TageSCL",
            "repro.tage.TageCore",
            "repro.tage.StatisticalCorrector",
            "repro.tage.LoopPredictor",
            "repro.llbp.LLBP",
            "repro.llbp.LLBPX",
            "repro.llbp.PatternStore",
            "repro.llbp.PatternBuffer",
            "repro.llbp.ContextTrackingTable",
            "repro.core.Runner",
            "repro.core.simulate",
            "repro.traces.TraceGenerator",
            "repro.traces.generate_workload",
        ],
    )
    def test_documented(self, qualname):
        module_name, symbol = qualname.rsplit(".", 1)
        obj = getattr(importlib.import_module(module_name), symbol)
        assert inspect.getdoc(obj), f"{qualname} lacks a docstring"


class TestTopLevelComposition:
    def test_quickstart_surface(self):
        import repro

        runner = repro.Runner(repro.RunnerConfig(num_branches=6000))
        result = runner.run_one("kafka", "tsl_64k")
        assert isinstance(result, repro.SimulationResult)
        assert result.mpki > 0

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)
