"""Smoke tests: every experiment harness runs and formats a report."""

import pytest

from repro.core.limit_study import LIMIT_STEPS, cumulative_overrides
from repro.experiments import (
    format_breakdown,
    format_fig04,
    format_fig05,
    format_fig06_07,
    format_fig08,
    format_fig09,
    format_fig12,
    format_fig13,
    format_fig14a,
    format_fig14b,
    format_fig15,
    format_fig16,
    format_sensitivity,
    format_table1,
    format_table2,
    run_breakdown,
    run_ctt_sweep,
    run_fig04,
    run_fig05,
    run_fig06_07,
    run_fig08,
    run_fig09,
    run_fig12,
    run_fig13,
    run_fig14a,
    run_fig14b,
    run_fig15,
    run_fig16a,
    run_fig16b,
    run_hth_sweep,
    run_table1,
)

WORKLOADS = ["kafka"]


class TestTables:
    def test_table1(self, quick_runner):
        rows = run_table1(quick_runner, WORKLOADS)
        text = format_table1(rows)
        assert "kafka" in text and "paper MPKI" in text

    def test_table2(self):
        text = format_table2()
        assert "576 ROB" in text and "TAGE-SC-L" in text


class TestAccuracyFigures:
    def test_fig04(self, quick_runner):
        rows = run_fig04(quick_runner, WORKLOADS, configs=("llbp", "tsl_512k"))
        text = format_fig04(rows, configs=("llbp", "tsl_512k"))
        assert "Fig 4" in text and "kafka" in text

    def test_fig05_ladder(self, quick_runner):
        steps = run_fig05(quick_runner, WORKLOADS)
        assert len(steps) == len(LIMIT_STEPS)
        assert steps[0].normalized == 1.0
        text = format_fig05(steps)
        assert "+No Contextualization" in text

    def test_cumulative_overrides_merge(self):
        merged = cumulative_overrides(len(LIMIT_STEPS) - 1)
        assert merged["no_contextualization"] is True
        assert merged["infinite_patterns"] is True
        assert merged["use_bucketing"] is False

    def test_fig12(self, quick_runner):
        rows = run_fig12(quick_runner, WORKLOADS, configs=("llbp", "llbpx"))
        text = format_fig12(rows, configs=("llbp", "llbpx"))
        assert "X-over-LLBP" in text


class TestAnalysisFigures:
    def test_fig06_07(self, quick_runner):
        result = run_fig06_07(quick_runner, "kafka")
        text = format_fig06_07(result)
        assert "useful patterns per context" in text

    def test_fig08(self, quick_runner):
        dup = run_fig08(quick_runner, "kafka", depths=(2, 8))
        text = format_fig08(dup)
        assert "W=2" in text and "W=8" in text

    def test_fig09(self, quick_runner):
        ratios = run_fig09(quick_runner, "kafka")
        text = format_fig09(ratios)
        assert "W=2 / W=8" in text
        assert set(ratios) == {2, 64}


class TestTimingFigures:
    def test_fig13(self, quick_runner):
        rows = run_fig13(quick_runner, WORKLOADS, configs=("llbp",))
        text = format_fig13(rows, configs=("llbp",))
        assert "speedup" in text

    def test_fig14a(self, quick_runner):
        results = run_fig14a(quick_runner, WORKLOADS)
        text = format_fig14a(results)
        assert "timely" in text

    def test_fig14b(self, quick_runner):
        rows = run_fig14b(quick_runner, WORKLOADS)
        text = format_fig14b(rows)
        assert "overriding" in text


class TestCostFigures:
    def test_fig15(self, quick_runner):
        result = run_fig15(quick_runner, WORKLOADS)
        text = format_fig15(result)
        assert "bits/inst" not in text  # column header is b/inst
        assert "transfer bandwidth" in text
        assert "ctt" in text

    def test_fig16(self, quick_runner):
        points_a = run_fig16a(quick_runner, WORKLOADS, context_counts=(8192, 14336))
        points_b = run_fig16b(quick_runner, WORKLOADS, presets=("tsl_16k", "tsl_64k"))
        assert len(points_a) == 2 and len(points_b) == 2
        text = format_fig16(points_a, points_b)
        assert "Fig 16a" in text and "Fig 16b" in text


class TestAblations:
    def test_breakdown(self, quick_runner):
        result = run_breakdown(quick_runner, WORKLOADS)
        assert 0 <= result.range_selection_share <= 1
        assert result.depth_adaptation_share + result.range_selection_share == pytest.approx(1.0)
        assert "VII-E" in format_breakdown(result)

    def test_sensitivity(self, quick_runner):
        hth = run_hth_sweep(quick_runner, WORKLOADS, values=(37, 232))
        ctt = run_ctt_sweep(quick_runner, WORKLOADS, values=(2048, 6144))
        text = format_sensitivity(hth, ctt)
        assert "H_th" in text and "CTT" in text
