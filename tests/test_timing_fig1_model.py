"""Model-level tests for the Fig 1 machine argument.

The paper's Fig 1 claim must follow from the *structure* of the machine
models for any workload with a sensible misprediction rate, not from a
lucky simulation: if the aggressive machine removes proportionally more
non-branch stall than branch stall, the branch-stall share must rise.
These tests verify that implication directly on synthetic results.
"""

import pytest

from repro.core.simulator import SimulationResult
from repro.timing import evaluate_timing, sapphire_rapids_like, skylake_like


def result_with(mpki: float, instructions: int = 1_000_000) -> SimulationResult:
    return SimulationResult(
        workload="w",
        predictor="p",
        instructions=instructions,
        conditional_branches=instructions // 6,
        mispredictions=int(mpki * instructions / 1000),
        warmup_mispredictions=0,
        total_instructions=instructions,
    )


class TestFig1Structure:
    @pytest.mark.parametrize("base_mpki", [0.5, 2.0, 5.0, 10.0])
    def test_share_rises_whenever_mpki_drops_moderately(self, base_mpki):
        """A 30% MPKI reduction on the aggressive machine still raises the
        branch-stall share, across the whole realistic MPKI range."""
        sky = evaluate_timing(result_with(base_mpki), skylake_like())
        spr = evaluate_timing(result_with(base_mpki * 0.7), sapphire_rapids_like())
        assert spr.branch_stall_share > sky.branch_stall_share

    @pytest.mark.parametrize("base_mpki", [1.0, 4.0, 8.0])
    def test_cpi_drops_substantially(self, base_mpki):
        sky = evaluate_timing(result_with(base_mpki), skylake_like())
        spr = evaluate_timing(result_with(base_mpki * 0.7), sapphire_rapids_like())
        assert spr.cpi < sky.cpi * 0.75  # paper: ~46% lower

    def test_share_equalises_only_if_branch_stalls_vanish(self):
        sky = evaluate_timing(result_with(2.0), skylake_like())
        spr = evaluate_timing(result_with(0.0), sapphire_rapids_like())
        assert spr.branch_stall_share == 0.0 < sky.branch_stall_share
