"""Tests for saturating counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import SignedSaturatingCounter, UnsignedSaturatingCounter


class TestSignedCounter:
    def test_range_3_bits(self):
        ctr = SignedSaturatingCounter(3)
        assert ctr.lo == -4 and ctr.hi == 3

    def test_saturates_high(self):
        ctr = SignedSaturatingCounter(3)
        for _ in range(20):
            ctr.increment()
        assert ctr.value == 3 and ctr.saturated_high

    def test_saturates_low(self):
        ctr = SignedSaturatingCounter(3)
        for _ in range(20):
            ctr.decrement()
        assert ctr.value == -4 and ctr.saturated_low

    def test_taken_is_sign(self):
        ctr = SignedSaturatingCounter(3, value=0)
        assert ctr.taken
        ctr.decrement()
        assert not ctr.taken

    def test_weak_states(self):
        assert SignedSaturatingCounter(3, value=0).is_weak
        assert SignedSaturatingCounter(3, value=-1).is_weak
        assert not SignedSaturatingCounter(3, value=1).is_weak

    def test_confidence_symmetric(self):
        assert SignedSaturatingCounter(3, value=0).confidence == 0
        assert SignedSaturatingCounter(3, value=-1).confidence == 0
        assert SignedSaturatingCounter(3, value=3).confidence == 3
        assert SignedSaturatingCounter(3, value=-4).confidence == 3

    def test_high_confidence_near_saturation(self):
        assert SignedSaturatingCounter(3, value=2).is_high_confidence
        assert SignedSaturatingCounter(3, value=-3).is_high_confidence
        assert not SignedSaturatingCounter(3, value=1).is_high_confidence

    def test_init_weak(self):
        ctr = SignedSaturatingCounter(3)
        ctr.init_weak(True)
        assert ctr.value == 0 and ctr.taken
        ctr.init_weak(False)
        assert ctr.value == -1 and not ctr.taken

    def test_update_direction(self):
        ctr = SignedSaturatingCounter(3)
        ctr.update(True)
        assert ctr.value == 1
        ctr.update(False)
        assert ctr.value == 0

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SignedSaturatingCounter(0)

    def test_rejects_out_of_range_init(self):
        with pytest.raises(ValueError):
            SignedSaturatingCounter(3, value=9)

    @given(st.integers(1, 8), st.lists(st.booleans(), max_size=200))
    def test_value_always_in_range(self, bits, updates):
        ctr = SignedSaturatingCounter(bits)
        for up in updates:
            ctr.update(up)
            assert ctr.lo <= ctr.value <= ctr.hi


class TestUnsignedCounter:
    def test_range(self):
        ctr = UnsignedSaturatingCounter(3)
        assert ctr.lo == 0 and ctr.hi == 7

    def test_never_negative(self):
        ctr = UnsignedSaturatingCounter(2)
        ctr.decrement()
        assert ctr.value == 0

    def test_set_clamps(self):
        ctr = UnsignedSaturatingCounter(2)
        ctr.set(99)
        assert ctr.value == 3
        ctr.set(-5)
        assert ctr.value == 0

    @given(st.integers(1, 8), st.lists(st.booleans(), max_size=200))
    def test_value_always_in_range(self, bits, updates):
        ctr = UnsignedSaturatingCounter(bits)
        for up in updates:
            ctr.update(up)
            assert 0 <= ctr.value <= ctr.hi
