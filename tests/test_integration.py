"""Cross-module integration tests: the paper's headline orderings.

These run on a shared 20K-branch nodeapp trace (session fixture), so they
check the *shape* the paper reports on a budget the test suite can
afford: capacity monotonicity, hierarchy orderings, and the LLBP/LLBP-X
relationships.
"""

import pytest

from repro.core.simulator import simulate
from repro.llbp import LLBP, LLBPX, llbp_default, llbpx_default
from repro.tage import TageSCL, tsl_512k, tsl_64k, tsl_infinite
from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def results(small_bundle):
    trace, tensors, contexts = small_bundle
    base_tsl = tsl_64k(scale=TEST_SCALE)
    out = {}
    out["tsl_64k"] = simulate(TageSCL(base_tsl, tensors), trace, tensors)
    out["tsl_512k"] = simulate(TageSCL(tsl_512k(scale=TEST_SCALE), tensors), trace, tensors)
    out["tsl_inf"] = simulate(TageSCL(tsl_infinite(), tensors), trace, tensors)
    out["llbp"] = simulate(
        LLBP(llbp_default(scale=TEST_SCALE), base_tsl, tensors, contexts), trace, tensors
    )
    out["llbp_0lat"] = simulate(
        LLBP(llbp_default(scale=TEST_SCALE, zero_latency=True), base_tsl, tensors, contexts),
        trace,
        tensors,
    )
    out["llbpx"] = simulate(
        LLBPX(llbpx_default(scale=TEST_SCALE), base_tsl, tensors, contexts), trace, tensors
    )
    return out


class TestCapacityOrdering:
    def test_512k_beats_64k(self, results):
        assert results["tsl_512k"].mispredictions < results["tsl_64k"].mispredictions

    def test_inf_beats_512k(self, results):
        assert results["tsl_inf"].mispredictions <= results["tsl_512k"].mispredictions * 1.02

    def test_inf_gain_substantial(self, results):
        gain = 1 - results["tsl_inf"].mpki / results["tsl_64k"].mpki
        assert gain > 0.05  # paper: 32.5% on full (200M-instr) traces


class TestHierarchyOrdering:
    def test_llbp_beats_baseline(self, results):
        assert results["llbp"].mispredictions < results["tsl_64k"].mispredictions

    def test_llbp_below_512k(self, results):
        # LLBP captures only part of the equal-storage TSL's gain (Fig 4)
        assert results["tsl_512k"].mispredictions < results["llbp"].mispredictions

    def test_zero_latency_not_worse(self, results):
        assert results["llbp_0lat"].mispredictions <= results["llbp"].mispredictions * 1.05

    def test_llbpx_beats_baseline(self, results):
        assert results["llbpx"].mispredictions < results["tsl_64k"].mispredictions

    def test_llbpx_competitive_with_llbp(self, results):
        # paper: LLBP-X gains 0.8-11.5% over LLBP; on a 20K-branch trace we
        # only require it to be in the same band
        assert results["llbpx"].mispredictions <= results["llbp"].mispredictions * 1.10


class TestResultConsistency:
    def test_same_measurement_window(self, results):
        windows = {r.instructions for r in results.values()}
        assert len(windows) == 1

    def test_all_predict_every_branch(self, results):
        counts = {r.conditional_branches for r in results.values()}
        assert len(counts) == 1

    def test_mpki_positive(self, results):
        for result in results.values():
            assert result.mpki > 0
