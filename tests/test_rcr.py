"""Tests for the rolling context register / context streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import mix64
from repro.llbp.rcr import CONTEXT_KINDS, ContextStreams, rolling_window_hashes
from repro.tage.streams import TraceTensors
from repro.traces.record import BranchKind, Trace


def naive_window_hash(values, k, window):
    """Reference: polynomial hash of values[max(0, k-window+1) .. k]."""
    B = 0x100000001B3
    M = (1 << 64) - 1
    acc = 0
    for v in values[max(0, k - window + 1) : k + 1]:
        acc = (acc * B + v) & M
    return mix64(acc)


class TestRollingWindowHashes:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=120),
        window=st.integers(1, 70),
    )
    def test_matches_naive(self, values, window):
        hashes = rolling_window_hashes(values, window)
        for k in range(len(values)):
            assert hashes[k] == naive_window_hash(values, k, window)

    def test_same_window_same_hash(self):
        values = [7, 8, 9, 7, 8, 9]
        hashes = rolling_window_hashes(values, 3)
        assert hashes[2] == hashes[5]

    def test_different_window_differs(self):
        hashes = rolling_window_hashes([1, 2, 3, 4], 2)
        assert hashes[1] != hashes[3]

    def test_rejects_zero_window(self):
        import pytest

        with pytest.raises(ValueError):
            rolling_window_hashes([1], 0)


def ub_trace():
    trace = Trace(name="ubs")
    # cond, call, cond, return, jump, call
    trace.append(0x10, 0x20, BranchKind.COND, True, 0)
    trace.append(0x14, 0x100, BranchKind.CALL, True, 0)
    trace.append(0x100, 0x120, BranchKind.COND, False, 0)
    trace.append(0x104, 0x18, BranchKind.RETURN, True, 0)
    trace.append(0x18, 0x40, BranchKind.JUMP, True, 0)
    trace.append(0x40, 0x200, BranchKind.CALL, True, 0)
    return trace


class TestContextStreams:
    def test_jumps_excluded_from_context_formation(self):
        streams = ContextStreams(TraceTensors(ub_trace()))
        # only the call/return/call records form context UBs
        assert streams.num_ubs == 3

    def test_ub_prefix_counts_strictly_before(self):
        streams = ContextStreams(TraceTensors(ub_trace()))
        assert streams.ub_prefix == [0, 0, 1, 1, 2, 2]

    def test_context_cold_until_enough_ubs(self):
        streams = ContextStreams(TraceTensors(ub_trace()))
        assert streams.context_of_record(0, depth=2, distance=1) == -1
        # record 4 has 2 UBs before it; distance 1 -> window ends at UB 0
        assert streams.context_of_record(4, depth=2, distance=1) != -1

    def test_window_cache(self):
        streams = ContextStreams(TraceTensors(ub_trace()))
        assert streams.window_hashes(4) is streams.window_hashes(4)

    def test_context_kinds_constant(self):
        assert int(BranchKind.CALL) in CONTEXT_KINDS
        assert int(BranchKind.RETURN) in CONTEXT_KINDS
        assert int(BranchKind.JUMP) not in CONTEXT_KINDS
        assert int(BranchKind.COND) not in CONTEXT_KINDS

    def test_same_call_sequence_same_context(self, small_bundle):
        _, _, streams = small_bundle
        hashes = streams.window_hashes(2)
        # rolling hashes must repeat (finite program paths)
        assert len(set(hashes)) < len(hashes)
