"""Reproduction of "The Last-Level Branch Predictor Revisited" (HPCA 2026).

A pure-Python simulation framework for hierarchical branch prediction:
TAGE-SC-L, LLBP, and LLBP-X, plus synthetic server-workload generation,
analytical timing/energy models, and harnesses regenerating every table
and figure of the paper's evaluation.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import Runner, RunnerConfig

    runner = Runner(RunnerConfig(num_branches=60_000))
    base = runner.run_one("nodeapp", "tsl_64k")
    llbpx = runner.run_one("nodeapp", "llbpx")
    print(base.summary())
    print(llbpx.summary())
"""

from repro.core import ResultCache, Runner, RunnerConfig, SimulationResult, reduction, simulate
from repro.llbp import LLBP, LLBPX, LLBPConfig, LLBPXConfig, llbp_default, llbpx_default
from repro.tage import TageConfig, TageSCL, TraceTensors, tsl_512k, tsl_64k, tsl_infinite
from repro.traces import Trace, WorkloadSpec, WORKLOAD_NAMES, generate_workload

__version__ = "1.0.0"

__all__ = [
    "LLBP",
    "LLBPConfig",
    "LLBPX",
    "LLBPXConfig",
    "ResultCache",
    "Runner",
    "RunnerConfig",
    "SimulationResult",
    "TageConfig",
    "TageSCL",
    "Trace",
    "TraceTensors",
    "WORKLOAD_NAMES",
    "WorkloadSpec",
    "__version__",
    "generate_workload",
    "llbp_default",
    "llbpx_default",
    "reduction",
    "simulate",
    "tsl_512k",
    "tsl_64k",
    "tsl_infinite",
]
