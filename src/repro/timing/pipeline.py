"""Analytical pipeline timing: the gem5 stand-in (DESIGN.md §1).

The paper's speedup results (Figs 13, 14b) are small deltas dominated by
two terms the trace-driven simulation measures exactly -- misprediction
counts and frontend redirects.  This model keeps precisely those terms::

    cycles = instructions / width                     (ideal issue)
           + other_stall_cpi * instructions           (non-branch stalls)
           + mispredictions * flush_penalty           (branch flushes)
           + fast_path_overrides * override_penalty   (optional, Fig 14b)

Speedups are ratios of ``cycles`` between predictor configurations on the
same machine; Fig 1's stall-share analysis reads the components directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simulator import SimulationResult
from repro.timing.machines import MachineConfig


@dataclass
class TimingBreakdown:
    """Cycle accounting for one (machine, predictor, workload) run."""

    machine: str
    predictor: str
    workload: str
    instructions: int
    base_cycles: float
    other_stall_cycles: float
    branch_stall_cycles: float
    override_stall_cycles: float

    @property
    def total_cycles(self) -> float:
        return (
            self.base_cycles
            + self.other_stall_cycles
            + self.branch_stall_cycles
            + self.override_stall_cycles
        )

    @property
    def cpi(self) -> float:
        return self.total_cycles / self.instructions if self.instructions else 0.0

    @property
    def branch_stall_share(self) -> float:
        """Fraction of *stall* cycles attributable to branch mispredictions
        (the right-hand metric of Fig 1)."""
        stalls = self.other_stall_cycles + self.branch_stall_cycles + self.override_stall_cycles
        return self.branch_stall_cycles / stalls if stalls else 0.0


def evaluate_timing(
    result: SimulationResult,
    machine: MachineConfig,
    model_overriding: bool = False,
) -> TimingBreakdown:
    """Apply the analytical cycle model to a simulation result."""
    instructions = result.instructions
    overrides = 0
    if model_overriding:
        # measured over the whole trace; scale to the measurement window
        total = result.stats.get("predictions", 0)
        raw = result.stats.get("fast_path_overrides", 0)
        window = result.conditional_branches
        overrides = int(raw * (window / total)) if total else 0
    return TimingBreakdown(
        machine=machine.name,
        predictor=result.predictor,
        workload=result.workload,
        instructions=instructions,
        base_cycles=instructions / machine.width,
        other_stall_cycles=machine.other_stall_cpi * instructions,
        branch_stall_cycles=result.mispredictions * machine.flush_penalty,
        override_stall_cycles=overrides * machine.override_penalty if model_overriding else 0.0,
    )


def speedup(
    baseline: SimulationResult,
    improved: SimulationResult,
    machine: MachineConfig,
    model_overriding: bool = False,
) -> float:
    """Percent speedup of ``improved`` over ``baseline`` on ``machine``."""
    base = evaluate_timing(baseline, machine, model_overriding).total_cycles
    new = evaluate_timing(improved, machine, model_overriding).total_cycles
    if new == 0:
        raise ValueError("improved configuration has zero cycles")
    return 100.0 * (base / new - 1.0)
