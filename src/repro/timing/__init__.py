"""Analytical timing models replacing the paper's gem5 evaluation."""

from repro.timing.machines import (
    MachineConfig,
    TABLE_II,
    sapphire_rapids_like,
    skylake_like,
    table_ii_machine,
)
from repro.timing.pipeline import TimingBreakdown, evaluate_timing, speedup

__all__ = [
    "MachineConfig",
    "TABLE_II",
    "TimingBreakdown",
    "evaluate_timing",
    "sapphire_rapids_like",
    "skylake_like",
    "speedup",
    "table_ii_machine",
]
