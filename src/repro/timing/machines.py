"""Machine models: analytical stand-ins for the paper's CPUs.

Two roles:

* ``TABLE_II`` -- the simulated-processor parameters of Table II, kept as
  structured data so the Table II bench can print them and the pipeline
  model can consume the branch-relevant subset.
* ``skylake_like`` / ``sapphire_rapids_like`` -- the two hardware
  platforms of the Fig 1 motivation, modelled analytically: the
  aggressive machine is wider, has a larger ROB and predictor, and --
  crucially -- removes far more of the *non-branch* stalls than of the
  branch-misprediction stalls, which is exactly the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Table II of the paper, verbatim, as structured data.
TABLE_II: Dict[str, str] = {
    "Core": "4GHz, 8-way OoO, 576 ROB, 190/120 LQ/SQ",
    "Branch Pred": "64KiB TAGE-SC-L, LLBP, LLBP-X",
    "BTB": "16K entry, 8-way",
    "L1-I": "64KiB, 16-way, 4 cycle, 10 MSHRs",
    "L1-D": "48KiB, 12-way, 5 cycle, 16 MSHRs",
    "L2": "3MiB, 16-way, 16 cycle, 32 MSHRs",
    "LLC": "8MiB, 16-way, 30 cycle, 64 MSHRs",
    "Prefetchers": "Instructions: FDIP, Data: BOP, L2: Next-line",
    "Memory": "DDR4 3200MHz, 12.5 ns RCD/RP/CAS",
}


@dataclass(frozen=True)
class MachineConfig:
    """Analytical out-of-order core model parameters.

    ``cycles = instructions / width + other_stall_cpi * instructions +
    mispredictions * flush_penalty (+ overriding stalls)``.

    ``other_stall_cpi`` lumps every non-branch stall source (cache misses,
    dependency stalls, structural hazards); aggressive cores shrink it.
    """

    name: str
    width: int  # sustained fetch/commit width
    rob: int
    flush_penalty: float  # cycles lost per branch misprediction
    other_stall_cpi: float  # non-branch stall cycles per instruction
    override_penalty: float = 3.0  # redirect stall when a slow component overrides
    predictor_scale: int = 8  # capacity scale of its branch predictor


def table_ii_machine() -> MachineConfig:
    """The Table II simulated processor (8-wide, 576-entry ROB)."""
    return MachineConfig(
        name="table_ii", width=8, rob=576, flush_penalty=24.0, other_stall_cpi=0.55
    )


def skylake_like() -> MachineConfig:
    """Fig 1's conservative machine: narrower, smaller ROB and predictor."""
    return MachineConfig(
        name="skylake_like",
        width=4,
        rob=224,
        flush_penalty=18.0,
        other_stall_cpi=0.50,
        predictor_scale=32,
    )


def sapphire_rapids_like() -> MachineConfig:
    """Fig 1's aggressive machine: wider, bigger ROB, better predictor,
    and most non-branch stalls removed."""
    return MachineConfig(
        name="sapphire_rapids_like",
        width=8,
        rob=512,
        flush_penalty=22.0,
        other_stall_cpi=0.21,
        predictor_scale=8,
    )
