"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``        -- simulate one or more predictor configurations on workloads
* ``report``     -- regenerate one of the paper's tables/figures
* ``serve``      -- run the experiment service daemon (HTTP job queue)
* ``submit``     -- submit a matrix to a running daemon (``--wait`` to block)
* ``status``     -- query a running daemon's health / job states
* ``obs-report`` -- render a merged telemetry run (spans, metrics, faults)
* ``obs-compact`` -- roll dead processes' telemetry files into merged segments
* ``history``    -- inspect the run-history ledger (list/show/diff/regressions)
* ``list``       -- show known workloads and predictor configurations

Examples::

    python -m repro run --workload nodeapp --config tsl_64k --config llbpx
    python -m repro report fig12 --workloads kafka,nodeapp
    python -m repro report fig12 --jobs 4 --cache-dir ~/.cache/repro
    python -m repro run --workload kafka --config llbp --telemetry .telemetry \
        --sample-interval 20000 --metrics-out metrics.json
    python -m repro obs-report .telemetry
    python -m repro list
    python -m repro serve --port 8765 --cache-dir .result-cache
    python -m repro submit --url http://127.0.0.1:8765 \
        --workload kafka --config tsl_64k --config llbp --wait
    python -m repro status --url http://127.0.0.1:8765

``--jobs N`` fans uncached simulations out over N worker processes, one
task per (workload, config) cell (bit-identical results); ``--cache-dir``
persists every result so repeat invocations -- and other figures sharing
cells -- skip simulation.  ``--artifact-dir`` persists trace artifacts so
warm bundles memory-map from disk instead of regenerating (parallel
workers share the store) and shared-base streams replay tail-only
instead of re-simulating the base; ``--warm-artifacts`` pre-builds every
workload's bundle and the requested configs' base streams up front.
``--profile`` wraps the whole command in :mod:`cProfile` and prints the
top functions by cumulative time to stderr (``--profile-top`` controls
how many) -- the standard first step when chasing a hot-path regression.

Fault tolerance: parallel matrices retry crashed/failed cells
(``--retries``, default 3), optionally bound each cell's wall-clock
(``--cell-timeout SECONDS``), and recover from worker-pool deaths by
rebuilding the pool -- results stay bit-identical because every cell is
a pure function of its key.  Every run emits a one-line ``run report:
... retries=N ... quarantined=N`` summary; ``--report PATH`` writes the
full per-cell report (attempts, retries, failures, timings,
cache/artifact health) as JSON.

Observability: diagnostics flow through the ``repro`` logger
(``--log-level``, default ``warning`` -- pass ``info`` to see progress,
cache stats, and the run summary).  ``--telemetry DIR`` records spans,
metrics, and fault events into per-process files under DIR (workers
included; ``--sample-interval N`` additionally samples predictor
internals every N branches).  ``--metrics-out PATH`` writes the merged
metrics snapshot as JSON; ``obs-report DIR`` renders a recorded run.

Run history: every cached run (``--cache-dir``) appends one record to
the ledger at ``<cache-dir>/.ledger`` -- digests, timings, throughput,
the full run report, and a merged metrics snapshot -- and a regression
watchdog compares it against a rolling per-(matrix, backend, host)
baseline, flagging throughput/cache/retry regressions and any
result-digest change (a correctness alarm).  ``repro history list``
shows the records, ``show`` dumps one, ``diff`` compares two, and
``regressions`` lists flagged runs (exit 1 if any).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List

from repro import obs
from repro.core import (
    ArtifactStore,
    ResultCache,
    RetryPolicy,
    Runner,
    RunnerConfig,
    reduction,
)
from repro.traces.workloads import WORKLOAD_NAMES

logger = obs.get_logger("cli")

KNOWN_CONFIGS = (
    "tsl_8k", "tsl_16k", "tsl_32k", "tsl_64k", "tsl_128k", "tsl_256k", "tsl_512k",
    "tsl_inf", "llbp", "llbp_0lat", "llbpx", "llbpx_0lat", "llbpx_optw",
)

KNOWN_REPORTS = (
    "table1", "table2", "fig01", "fig04", "fig05", "fig06", "fig08", "fig09",
    "fig12", "fig13", "fig14a", "fig14b", "fig15", "fig16", "sec7e", "sec7f",
)


def _make_runner(args: argparse.Namespace) -> Runner:
    if getattr(args, "jobs", None) == 0:
        from repro.core.parallel import effective_jobs

        args.jobs = effective_jobs(0)
        logger.info("jobs: auto-selected %d (one per core)", args.jobs)
    cache = None
    if getattr(args, "cache_dir", None) and not getattr(args, "no_cache", False):
        cache = ResultCache(args.cache_dir)
    artifacts = None
    if getattr(args, "artifact_dir", None):
        artifacts = ArtifactStore(args.artifact_dir)
    policy = RetryPolicy(
        retries=getattr(args, "retries", RetryPolicy.retries),
        timeout=getattr(args, "cell_timeout", None),
    )
    runner = Runner(
        RunnerConfig(scale=args.scale, num_branches=args.branches),
        cache=cache,
        artifacts=artifacts,
        retry_policy=policy,
        backend=getattr(args, "backend", None),
    )
    if artifacts is not None and getattr(args, "warm_artifacts", False):
        built = artifacts.warm(WORKLOAD_NAMES, runner.config)
        logger.info(
            "artifacts: warmed %d workloads (%d built, %d already present)",
            len(WORKLOAD_NAMES),
            built,
            len(WORKLOAD_NAMES) - built,
        )
        from repro.core.batched import base_config

        bases = []
        for name in getattr(args, "config", None) or ["tsl_64k"]:
            base = base_config(name, runner.config.scale)
            if base is not None and base not in bases:
                bases.append(base)
        base_built, base_skipped = artifacts.warm_bases(WORKLOAD_NAMES, runner.config, bases)
        logger.info(
            "artifacts: warmed base streams for %d base configs (%d built, %d skipped)",
            len(bases),
            base_built,
            base_skipped,
        )
    if getattr(args, "join", False):
        from repro.core.sched import HOSTS_DIRNAME, CoopScheduler, HostLedger

        if cache is None:
            print(
                "--join requires --cache-dir (the shared result cache is the "
                "inter-host result channel) and is incompatible with --no-cache",
                file=sys.stderr,
            )
            raise SystemExit(2)
        hosts_dir = getattr(args, "hosts_dir", None) or (cache.cache_dir / HOSTS_DIRNAME)
        ledger = HostLedger(hosts_dir, host_id=getattr(args, "host_id", None))
        claim_batch = getattr(args, "claim_batch", None)
        if claim_batch:
            runner.coop = CoopScheduler(ledger, claim_batch=claim_batch)
        else:
            runner.coop = CoopScheduler(ledger)
        logger.info("joined multi-host run as %s (ledger: %s)", ledger.host_id, ledger.root)
    if runner.ledger is not None:
        runner.ledger_context["source"] = "cli"
    return runner


def _progress_printer(total: int):
    """Per-cell progress callback (needed once cells complete out of order)."""
    done = [0]

    def progress(workload: str, config: str, result) -> None:
        done[0] += 1
        logger.info("[%3d/%d] %s/%s  MPKI %.3f", done[0], total, workload, config, result.mpki)

    return progress


def _print_cache_stats(runner: Runner) -> None:
    if runner.cache is not None:
        stats = runner.cache.stats()
        logger.info(
            "cache: %d hits, %d misses, %d writes (%d simulations)",
            stats["hits"],
            stats["misses"],
            stats["writes"],
            runner.sim_count,
        )
    if runner.artifacts is not None:
        stats = runner.artifacts.stats()
        logger.info(
            "artifacts: %d bundle loads, %d bundle writes (%d bundle builds in this process)",
            stats["bundle_loads"],
            stats["bundle_writes"],
            runner.bundle_builds,
        )
        logger.info(
            "base streams: %d recorded, %d loaded",
            stats["base_writes"],
            stats["base_loads"],
        )


def _publish_run_gauges(runner: Runner) -> None:
    """Mirror the run report's totals into metrics-registry gauges."""
    registry = obs.registry()
    totals = runner.report.totals()
    for key in ("cells", "cached", "simulated", "attempts", "retries", "interruptions", "failures", "seconds", "batched_groups", "batched_lanes", "base_warm"):
        registry.gauge("run.%s" % key).set(float(totals[key]))
    registry.gauge("run.pool_rebuilds").set(float(runner.report.pool_rebuilds))
    registry.gauge("run.timeouts").set(float(runner.report.timeouts))
    registry.gauge("run.serial_fallback").set(1.0 if runner.report.serial_fallback else 0.0)
    stats = runner.report.prediction_stats()
    if stats["mape_percent"] is not None:
        registry.gauge("run.cost_mape_percent").set(float(stats["mape_percent"]))
    if runner.report.host_id:
        registry.gauge("run.claims").set(float(runner.report.claims))
        registry.gauge("run.peer_results").set(float(runner.report.peer_results))
        registry.gauge("run.reaped_claims").set(float(runner.report.reaped_claims))


def _write_metrics(path: str) -> None:
    """Write the merged (all processes) metrics snapshot as JSON."""
    session = obs.current()
    if session is not None:
        obs.flush()
        merged = obs.merged_metrics(session.directory)
    else:
        merged = obs.merge_snapshots([obs.registry().snapshot()])
    with open(path, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    logger.info("metrics written to %s", path)


def _finish_run(args: argparse.Namespace, runner: Runner) -> None:
    """End-of-run reporting: summary line, cache stats, ``--report`` JSON,
    run gauges + ``--metrics-out`` snapshot, run-end telemetry event."""
    logger.info("%s", runner.report.summary(runner))
    _print_cache_stats(runner)
    _publish_run_gauges(runner)
    report_path = getattr(args, "report", None)
    if report_path:
        with open(report_path, "w") as handle:
            json.dump(runner.report.to_dict(runner), handle, indent=2, sort_keys=True)
            handle.write("\n")
        logger.info("run report written to %s", report_path)
    obs.emit_event("run-end", totals=runner.report.totals())
    # harnesses driving run_cells directly (the `report` figures) never
    # hit run_matrix's automatic ledger append; record the whole session
    # as one history entry instead (no-op if something appended already)
    runner.ledger_append_session(
        max(0.0, time.time() - runner.report.started_at),
        time.process_time(),
        context={"command": getattr(args, "command", "") or ""},
    )
    metrics_path = getattr(args, "metrics_out", None)
    if metrics_path:
        _write_metrics(metrics_path)


def _workload_list(value: str) -> List[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    for name in names:
        if name not in WORKLOAD_NAMES:
            raise argparse.ArgumentTypeError(
                f"unknown workload {name!r}; known: {', '.join(WORKLOAD_NAMES)}"
            )
    return names


def cmd_obs_report(args: argparse.Namespace) -> int:
    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"telemetry directory not found: {directory}", file=sys.stderr)
        return 1
    print(obs.render_report(directory, top=args.top))
    return 0


def cmd_obs_compact(args: argparse.Namespace) -> int:
    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"telemetry directory not found: {directory}", file=sys.stderr)
        return 1
    stats = obs.compact_events(directory)
    print(
        "compacted %d event file(s) (%d events) and %d metrics file(s) into merged segments"
        % (stats["event_files"], stats["events"], stats["metrics_files"])
    )
    return 0


def _ledger_dir(args: argparse.Namespace) -> Path:
    from repro.obs.ledger import LEDGER_DIRNAME

    if getattr(args, "ledger", None):
        return Path(args.ledger)
    if getattr(args, "cache_dir", None):
        return Path(args.cache_dir) / LEDGER_DIRNAME
    print("history requires --ledger DIR or --cache-dir DIR", file=sys.stderr)
    raise SystemExit(2)


def _history_line(record: dict) -> str:
    ts = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(record.get("ts", 0.0))))
    flags = record.get("regressions") or []
    flag_note = "  !! " + ",".join(str(f.get("kind")) for f in flags) if flags else ""
    return (
        "%s  %s  %-7s %-9s %3d cells  hit %3d%%  %10.0f bps  %s/%s%s"
        % (
            record.get("run_id", "?"),
            ts,
            str(record.get("source", "?")),
            str(record.get("backend", "?")),
            int(record.get("cells", 0)),
            round(100.0 * float(record.get("cache_hit_rate", 0.0))),
            float(record.get("branches_per_sec", 0.0)),
            record.get("matrix_digest", "?"),
            record.get("result_digest", "?"),
            flag_note,
        )
    )


def _history_diff(old: dict, new: dict) -> List[str]:
    """Field-by-field comparison lines of two ledger records."""
    lines = [
        "diff %s (%s) -> %s (%s)"
        % (
            old.get("run_id", "?"),
            time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(old.get("ts", 0.0)))),
            new.get("run_id", "?"),
            time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(new.get("ts", 0.0)))),
        )
    ]
    fields = (
        "source", "backend", "workloads", "configs", "cells", "branches", "scale",
        "matrix_digest", "result_digest", "cache_hit_rate", "retries",
        "wall_seconds", "cpu_seconds", "branches_per_sec",
    )
    for field in fields:
        before, after = old.get(field), new.get(field)
        marker = " " if before == after else "*"
        lines.append(f"  {marker} {field:<17} {before!r:>24} -> {after!r}")
    if old.get("matrix_digest") == new.get("matrix_digest"):
        if old.get("result_digest") != new.get("result_digest"):
            lines.append(
                "  !! result digest changed on an identical matrix -- results are "
                "no longer bit-identical (correctness alarm)"
            )
        else:
            lines.append("  == identical matrix, identical results")
    else:
        lines.append("  (different matrices -- digest comparison not meaningful)")
    return lines


def cmd_history(args: argparse.Namespace) -> int:
    from repro.obs.ledger import RunLedger
    from repro.obs.regress import flagged_records

    ledger = RunLedger(_ledger_dir(args))
    records = ledger.records()
    action = args.action

    if action == "list":
        shown = records[-args.limit:] if args.limit else records
        if args.json:
            print(json.dumps(shown, indent=2, sort_keys=True))
            return 0
        if not shown:
            print("ledger is empty")
            return 0
        for record in shown:
            print(_history_line(record))
        if args.trend:
            print()
            print(obs.render_trend(shown))
        return 0

    if action == "show":
        try:
            record = ledger.get(args.run_id)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0

    if action == "diff":
        try:
            if args.run_id and args.run_id_b:
                old, new = ledger.get(args.run_id), ledger.get(args.run_id_b)
            elif args.run_id:
                if not records:
                    print("ledger is empty", file=sys.stderr)
                    return 1
                old, new = ledger.get(args.run_id), records[-1]
            else:
                if len(records) < 2:
                    print("history diff needs two records (ledger has fewer)", file=sys.stderr)
                    return 1
                old, new = records[-2], records[-1]
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps({"old": old, "new": new}, indent=2, sort_keys=True))
        else:
            print("\n".join(_history_diff(old, new)))
        return 0

    if action == "regressions":
        flagged = flagged_records(records)
        shown = flagged[-args.limit:] if args.limit else flagged
        if args.json:
            print(json.dumps(shown, indent=2, sort_keys=True))
        elif not shown:
            print("no flagged runs (%d records checked)" % len(records))
        else:
            for record in shown:
                print(_history_line(record))
                for flag in record.get("regressions") or []:
                    print(
                        "      [%s/%s] %s"
                        % (flag.get("severity"), flag.get("kind"), flag.get("detail"))
                    )
        return 1 if flagged else 0

    raise SystemExit(f"unknown history action {action!r}")  # pragma: no cover


def cmd_list(_args: argparse.Namespace) -> int:
    print("workloads:")
    for name in WORKLOAD_NAMES:
        print(f"  {name}")
    print("\npredictor configurations:")
    for name in KNOWN_CONFIGS:
        print(f"  {name}")
    print("\nreports:")
    print("  " + ", ".join(KNOWN_REPORTS))
    return 0


def _print_matrix(workloads, configs, result_of) -> None:
    """Render one matrix's summary lines (first config is the baseline).

    Shared by ``run`` (local results) and ``submit --wait`` (results
    fetched from the daemon's ``/results/<digest>`` endpoint), so the two
    paths print byte-identical output for identical matrices -- CI diffs
    them.
    """
    for workload in workloads:
        baseline = None
        for config in configs:
            result = result_of(workload, config)
            line = result.summary()
            if baseline is None:
                baseline = result
            else:
                line += f"  ({reduction(baseline, result):+5.1f}% vs {baseline.predictor})"
            print(line)


def cmd_run(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    progress = None
    if args.jobs > 1:
        progress = _progress_printer(len(args.workload) * len(args.config))
    matrix = runner.run_matrix(args.workload, args.config, progress=progress, jobs=args.jobs)
    _print_matrix(args.workload, args.config, lambda workload, config: matrix[workload][config])
    for workload in args.workload:
        runner.release(workload)
    _finish_run(args, runner)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ExperimentService, ServiceServer

    if not args.cache_dir or getattr(args, "no_cache", False):
        print(
            "serve requires --cache-dir (the shared result cache backs the "
            "/results endpoint and the zero-duplicate-work guarantee) and is "
            "incompatible with --no-cache",
            file=sys.stderr,
        )
        return 2
    service = ExperimentService(
        args.cache_dir,
        artifact_dir=args.artifact_dir,
        events_dir=args.events_dir,
        branches=args.branches,
        scale=args.scale,
        backend=args.backend,
        jobs=args.jobs,
        quota=args.quota,
        retries=args.retries,
        cell_timeout=args.cell_timeout,
        join=args.join,
        hosts_dir=args.hosts_dir,
        host_id=args.host_id,
        claim_batch=args.claim_batch,
    )
    server = ServiceServer(
        service,
        host=args.host,
        port=args.port,
        on_ready=lambda srv: print(
            f"service listening on http://{srv.host}:{srv.port}", flush=True
        ),
    )
    server.serve_forever()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    spec = {
        "workloads": args.workload,
        "configs": args.config,
        "branches": args.branches,
        "scale": args.scale,
        "backend": args.backend,
        "jobs": args.jobs,
        "priority": args.priority,
    }
    try:
        job = client.submit(spec, tenant=args.tenant)
    except (ServiceError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    # job-id chatter goes to stderr so `submit --wait` stdout stays
    # byte-identical to `run` stdout for the same matrix
    print(f"submitted {job['id']} to {args.url}", file=sys.stderr)
    if not args.wait:
        print(job["id"])
        return 0
    try:
        final = client.wait(job["id"], timeout=args.timeout)
    except (TimeoutError, ServiceError, OSError) as exc:
        print(f"wait failed: {exc}", file=sys.stderr)
        return 1
    if final["state"] != "done":
        print(
            f"{job['id']} finished as {final['state']}: {final.get('error', '')}",
            file=sys.stderr,
        )
        return 1
    results = {
        (cell["workload"], cell["config"]): client.result(cell["digest"])
        for cell in final["cells"]
    }
    _print_matrix(
        args.workload, args.config, lambda workload, config: results[(workload, config)]
    )
    report = final.get("report") or {}
    logger.info(
        "job %s: %s simulations, totals %s",
        job["id"],
        report.get("simulations"),
        report.get("totals"),
    )
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.job_id:
            print(json.dumps(client.job(args.job_id), indent=2, sort_keys=True))
        else:
            health = client.health()
            states = health.get("jobs", {})
            cache = health.get("cache", {})
            print(
                f"service ok: jobs={states} done={health.get('jobs_done', 0)} "
                f"cache_hits={cache.get('hits', 0)} cache_entries={cache.get('entries', cache.get('writes', 0))}"
            )
            for entry in client.jobs():
                spec = entry["spec"]
                print(
                    f"  {entry['id']}  {entry['state']:<9} tenant={spec['tenant']:<10} "
                    f"{len(spec['workloads'])}x{len(spec['configs'])} cells "
                    f"priority={spec['priority']}"
                )
    except (ServiceError, OSError) as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro import experiments as ex

    runner = _make_runner(args)
    workloads = args.workloads
    name = args.name
    jobs = args.jobs
    if name == "table1":
        print(ex.format_table1(ex.run_table1(runner, workloads, jobs=jobs)))
    elif name == "table2":
        print(ex.format_table2())
    elif name == "fig01":
        print(ex.format_fig01(ex.run_fig01(runner, workloads, jobs=jobs)))
    elif name == "fig04":
        print(ex.format_fig04(ex.run_fig04(runner, workloads, jobs=jobs)))
    elif name == "fig05":
        print(ex.format_fig05(ex.run_fig05(runner, workloads, jobs=jobs)))
    elif name == "fig06":
        print(ex.format_fig06_07(ex.run_fig06_07(runner, (workloads or ["nodeapp"])[0])))
    elif name == "fig08":
        print(ex.format_fig08(ex.run_fig08(runner, (workloads or ["nodeapp"])[0])))
    elif name == "fig09":
        print(ex.format_fig09(ex.run_fig09(runner, (workloads or ["nodeapp"])[0])))
    elif name == "fig12":
        print(ex.format_fig12(ex.run_fig12(runner, workloads, jobs=jobs)))
    elif name == "fig13":
        print(ex.format_fig13(ex.run_fig13(runner, workloads, jobs=jobs)))
    elif name == "fig14a":
        print(ex.format_fig14a(ex.run_fig14a(runner, workloads, jobs=jobs)))
    elif name == "fig14b":
        print(ex.format_fig14b(ex.run_fig14b(runner, workloads, jobs=jobs)))
    elif name == "fig15":
        print(ex.format_fig15(ex.run_fig15(runner, workloads, jobs=jobs)))
    elif name == "fig16":
        print(
            ex.format_fig16(
                ex.run_fig16a(runner, workloads, jobs=jobs),
                ex.run_fig16b(runner, workloads, jobs=jobs),
            )
        )
    elif name == "sec7e":
        print(ex.format_breakdown(ex.run_breakdown(runner, workloads, jobs=jobs)))
    elif name == "sec7f":
        print(
            ex.format_sensitivity(
                ex.run_hth_sweep(runner, workloads, jobs=jobs),
                ex.run_ctt_sweep(runner, workloads, jobs=jobs),
            )
        )
    else:  # pragma: no cover - argparse choices guard this
        raise SystemExit(f"unknown report {name!r}")
    _finish_run(args, runner)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--branches", type=int, default=120_000, help="trace length per workload")
    common.add_argument("--scale", type=int, default=8, help="capacity scale (DESIGN.md §1)")
    common.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for experiment matrices (1 = serial, 0 = one per "
        "core; requests beyond the machine's cores are clamped; results are "
        "bit-identical)",
    )
    common.add_argument(
        "--backend", choices=("auto", "reference", "batched"), default="auto",
        help="execution backend: 'batched' runs cells sharing a trace bundle and "
        "base TAGE config over one shared base (bit-identical results), "
        "'reference' forces the per-cell fused kernels, 'auto' (default) "
        "batches whenever a group of uncached cells shares a batchable base",
    )
    common.add_argument(
        "--cache-dir", default=None,
        help="persistent result-cache directory; repeat invocations skip finished simulations",
    )
    common.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir (force re-simulation, do not read or write cached results)",
    )
    common.add_argument(
        "--artifact-dir", default=None,
        help="persistent trace-artifact store; warm bundles load memory-mapped "
        "instead of regenerating traces (shared by parallel workers)",
    )
    common.add_argument(
        "--warm-artifacts", action="store_true",
        help="with --artifact-dir: pre-build the bundle of every known workload "
        "and pre-record the base streams of the requested configs before "
        "running, so the run itself performs zero trace generations and "
        "zero shared-base passes",
    )
    common.add_argument(
        "--join", action="store_true",
        help="join an elastic multi-host run: claim uncached cells via the "
        "shared ledger next to --cache-dir, adopt peer-published results, "
        "and reap dead hosts' claims (requires --cache-dir; any number of "
        "hosts sharing the directory cooperate, results stay bit-identical)",
    )
    common.add_argument(
        "--host-id", default=None, metavar="ID",
        help="with --join: this host's identity in the ledger "
        "(default: <hostname>-<pid>)",
    )
    common.add_argument(
        "--hosts-dir", default=None, metavar="DIR",
        help="with --join: ledger directory for claims and heartbeats "
        "(default: <cache-dir>/.hosts)",
    )
    common.add_argument(
        "--claim-batch", type=int, default=None, metavar="N",
        help="with --join: cells claimed per scheduling round (default: 4; "
        "smaller batches spread work more evenly across hosts joining at "
        "different times, larger ones reduce ledger round-trips)",
    )
    common.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="re-executions a failed cell (worker crash, exception, timeout) may "
        "consume before the run aborts (default: 3; results stay bit-identical)",
    )
    common.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock bound; a cell exceeding it is killed (pool "
        "rebuild) and retried (default: off)",
    )
    common.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the structured run report (per-cell attempts/retries/failures, "
        "timings, cache and artifact health) as JSON to PATH",
    )
    common.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the hottest functions (by cumulative time) to stderr",
    )
    common.add_argument(
        "--profile-top", type=int, default=25, metavar="N",
        help="number of functions the --profile report shows (default: 25)",
    )
    common.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="record spans, metrics, and fault events into per-process files "
        "under DIR (parallel workers included); render with `repro obs-report DIR`",
    )
    common.add_argument(
        "--sample-interval", type=int, default=0, metavar="N",
        help="with --telemetry: sample predictor internals (occupancy, useful-bit "
        "saturation, PB hit rate) every N branches (default: 0 = off, zero hot-path cost)",
    )
    common.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the merged end-of-run metrics snapshot (counters, gauges, "
        "histograms from every process) as JSON to PATH",
    )
    common.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"), default="warning",
        help="verbosity of the repro logger on stderr (default: warning; "
        "info shows progress, cache stats, and the run summary)",
    )

    p_list = sub.add_parser("list", help="show workloads, configs, reports")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", parents=[common], help="simulate configurations")
    p_run.add_argument("--workload", action="append", required=True, choices=WORKLOAD_NAMES)
    p_run.add_argument("--config", action="append", required=True, choices=KNOWN_CONFIGS)
    p_run.set_defaults(func=cmd_run)

    p_report = sub.add_parser("report", parents=[common], help="regenerate a paper table/figure")
    p_report.add_argument("name", choices=KNOWN_REPORTS)
    p_report.add_argument(
        "--workloads",
        type=_workload_list,
        default=None,
        help="comma-separated workload subset (default: the figure's own set)",
    )
    p_report.set_defaults(func=cmd_report)

    p_serve = sub.add_parser(
        "serve", parents=[common],
        help="run the experiment service daemon (HTTP job queue over a warm runner)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    p_serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port (default: 8765; 0 binds an ephemeral port, printed on startup)",
    )
    p_serve.add_argument(
        "--quota", type=int, default=0, metavar="N",
        help="max queued+running jobs per tenant (default: 0 = unlimited); "
        "a submit beyond the quota is rejected with HTTP 429",
    )
    p_serve.add_argument(
        "--events-dir", default=None, metavar="DIR",
        help="progress-event sink directory served by /jobs/<id>/events "
        "(default: <cache-dir>/.service-events)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit an experiment matrix to a running daemon"
    )
    p_submit.add_argument("--url", required=True, help="daemon URL, e.g. http://127.0.0.1:8765")
    p_submit.add_argument("--workload", action="append", required=True, choices=WORKLOAD_NAMES)
    p_submit.add_argument("--config", action="append", required=True, choices=KNOWN_CONFIGS)
    p_submit.add_argument("--branches", type=int, default=120_000, help="trace length per workload")
    p_submit.add_argument("--scale", type=int, default=8, help="capacity scale (DESIGN.md §1)")
    p_submit.add_argument(
        "--jobs", type=int, default=1, help="worker processes the daemon uses for this job"
    )
    p_submit.add_argument(
        "--backend", choices=("auto", "reference", "batched"), default="auto",
        help="execution backend for this job (results are bit-identical)",
    )
    p_submit.add_argument(
        "--priority", type=int, default=0,
        help="queue priority (higher runs first; FIFO within a priority)",
    )
    p_submit.add_argument("--tenant", default=None, help="tenant name for quota accounting")
    p_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes, then fetch every cell's result from "
        "/results/<digest> and print the same summary lines `repro run` prints",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="with --wait: give up after SECONDS (default: 600)",
    )
    p_submit.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"), default="warning",
        help=argparse.SUPPRESS,
    )
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser("status", help="query a running daemon's health and jobs")
    p_status.add_argument("--url", required=True, help="daemon URL, e.g. http://127.0.0.1:8765")
    p_status.add_argument(
        "job_id", nargs="?", default=None,
        help="job id for a full status + report dump (default: service summary)",
    )
    p_status.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"), default="warning",
        help=argparse.SUPPRESS,
    )
    p_status.set_defaults(func=cmd_status)

    p_obs = sub.add_parser(
        "obs-report", help="render a recorded telemetry run (spans, metrics, fault timeline)"
    )
    p_obs.add_argument("directory", help="telemetry directory written by --telemetry")
    p_obs.add_argument(
        "--top", type=int, default=12, metavar="N",
        help="number of counters/gauges shown per section (default: 12)",
    )
    p_obs.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"), default="warning",
        help=argparse.SUPPRESS,
    )
    p_obs.set_defaults(func=cmd_obs_report)

    p_compact = sub.add_parser(
        "obs-compact",
        help="merge telemetry files left behind by dead processes into rolled segments",
    )
    p_compact.add_argument("directory", help="telemetry/events directory to compact")
    p_compact.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"), default="warning",
        help=argparse.SUPPRESS,
    )
    p_compact.set_defaults(func=cmd_obs_compact)

    p_history = sub.add_parser(
        "history", help="inspect the run-history ledger (list/show/diff/regressions)"
    )
    p_history.add_argument(
        "action", choices=("list", "show", "diff", "regressions"),
        help="list records, show one, diff two, or list regression-flagged runs",
    )
    p_history.add_argument(
        "run_id", nargs="?", default=None,
        help="run id (unique prefix accepted) for show/diff",
    )
    p_history.add_argument(
        "run_id_b", nargs="?", default=None,
        help="second run id for diff (default: the latest record)",
    )
    p_history.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="ledger directory (default: <--cache-dir>/.ledger)",
    )
    p_history.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory whose .ledger subdirectory holds the history",
    )
    p_history.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="show only the newest N records (default: 0 = all)",
    )
    p_history.add_argument(
        "--trend", action="store_true",
        help="with list: append a per-(matrix, backend, host) throughput trend summary",
    )
    p_history.add_argument("--json", action="store_true", help="emit raw JSON records")
    p_history.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"), default="warning",
        help=argparse.SUPPRESS,
    )
    p_history.set_defaults(func=cmd_history)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # rebind the stderr handler every invocation: pytest's capsys swaps
    # sys.stderr between tests, and a cached stream would miss capture
    obs.configure_logging(getattr(args, "log_level", "warning"))
    if getattr(args, "telemetry", None):
        obs.configure(args.telemetry, sample_interval=getattr(args, "sample_interval", 0))
    try:
        with obs.span("cli", command=args.command):
            if getattr(args, "profile", False):
                import cProfile
                import pstats

                profiler = cProfile.Profile()
                status = profiler.runcall(args.func, args)
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(args.profile_top)
            else:
                status = args.func(args)
        return status
    finally:
        obs.shutdown()


if __name__ == "__main__":
    sys.exit(main())
