"""Regression watchdog over the run ledger.

Every finished run is compared against a *rolling baseline* keyed by
``(matrix digest, backend, host)`` -- the narrowest key under which
throughput numbers are comparable: a different matrix is different work,
a different backend is a different engine, and a different host is a
different machine.  Four checks run, ordered by how loudly they should
alarm:

* **result digest** -- for a fixed matrix digest the serialized results
  must be bit-identical across runs (simulation is a pure function of
  the cell key).  A mismatch is a *correctness* alarm, not a perf note.
* **throughput** -- branches/sec below ``(1 - tolerance)`` of the
  baseline's exponential moving average (only when both runs actually
  simulated; a fully cached replay has no meaningful throughput).
* **cache hit rate** -- an absolute drop beyond ``hit_rate_drop`` means
  previously cached cells are being re-simulated (cache damage or key
  churn).
* **retries** -- more than ``retry_slack`` retries above the baseline
  average points at a newly flaky host or workload.

Ordering contract (pinned by tests): a record is checked against the
baseline *as it stood before the run*, and only then folded into it --
so the very first run of a key establishes the baseline silently, and a
regression is flagged exactly once against the pre-regression history
rather than being absorbed into its own comparison point.

Baselines live in ``baselines.json`` inside the ledger directory,
replaced atomically (temp + rename) like every other piece of shared
state in this repo.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

__all__ = [
    "BASELINES_FILENAME",
    "DEFAULT_HIT_RATE_DROP",
    "DEFAULT_RETRY_SLACK",
    "DEFAULT_TOLERANCE",
    "baseline_key",
    "check_record",
    "check_and_update",
    "flagged_records",
    "load_baselines",
    "save_baselines",
    "update_baseline",
]

BASELINES_FILENAME = "baselines.json"

#: fractional throughput drop tolerated before flagging (runs are noisy)
DEFAULT_TOLERANCE = 0.30
#: absolute cache-hit-rate drop tolerated before flagging
DEFAULT_HIT_RATE_DROP = 0.25
#: retries above the baseline average tolerated before flagging
DEFAULT_RETRY_SLACK = 2.0
#: EMA weight of the newest run when folding it into the baseline
EMA_ALPHA = 0.3


def baseline_key(record: Mapping[str, object]) -> str:
    return "%s|%s|%s" % (
        record.get("matrix_digest", ""),
        record.get("backend", ""),
        record.get("host", ""),
    )


def load_baselines(directory: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    path = Path(directory) / BASELINES_FILENAME
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def save_baselines(directory: Union[str, Path], baselines: Mapping[str, object]) -> None:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / BASELINES_FILENAME
    tmp = path.with_name("%s.tmp.%d" % (BASELINES_FILENAME, os.getpid()))
    try:
        tmp.write_text(json.dumps(baselines, indent=2, sort_keys=True))
        os.replace(tmp, path)
    except OSError:
        pass


def check_record(
    record: Mapping[str, object],
    baseline: Optional[Mapping[str, object]],
    tolerance: float = DEFAULT_TOLERANCE,
    hit_rate_drop: float = DEFAULT_HIT_RATE_DROP,
    retry_slack: float = DEFAULT_RETRY_SLACK,
) -> List[Dict[str, object]]:
    """Flags for ``record`` vs ``baseline`` (no baseline: no flags)."""
    if not baseline:
        return []
    flags: List[Dict[str, object]] = []

    base_digest = baseline.get("result_digest")
    digest = record.get("result_digest")
    if base_digest and digest and digest != base_digest:
        flags.append(
            {
                "kind": "result_digest",
                "severity": "correctness",
                "baseline": base_digest,
                "observed": digest,
                "detail": "result digest changed for an identical matrix -- "
                "simulation output is no longer bit-stable",
            }
        )

    base_bps = float(baseline.get("branches_per_sec", 0.0) or 0.0)
    bps = float(record.get("branches_per_sec", 0.0) or 0.0)
    report = record.get("report")
    # records without an embedded report (benchmarks) are pure-throughput
    # measurements; records with one only compare when work was simulated
    simulated = (
        int(dict(report).get("totals", {}).get("simulated", 0)) if isinstance(report, dict) else 1
    )
    if base_bps > 0 and bps > 0 and simulated > 0 and bps < base_bps * (1.0 - tolerance):
        flags.append(
            {
                "kind": "throughput",
                "severity": "perf",
                "baseline": round(base_bps, 2),
                "observed": round(bps, 2),
                "detail": "throughput dropped %.0f%% below the rolling baseline"
                % (100.0 * (1.0 - bps / base_bps)),
            }
        )

    base_hit = baseline.get("cache_hit_rate")
    hit = record.get("cache_hit_rate")
    if base_hit is not None and hit is not None:
        if float(hit) < float(base_hit) - hit_rate_drop:
            flags.append(
                {
                    "kind": "cache_hit_rate",
                    "severity": "perf",
                    "baseline": round(float(base_hit), 4),
                    "observed": round(float(hit), 4),
                    "detail": "cache hit rate fell -- previously cached cells "
                    "are being re-simulated",
                }
            )

    base_retries = float(baseline.get("retries", 0.0) or 0.0)
    retries = float(record.get("retries", 0.0) or 0.0)
    if retries > base_retries + retry_slack:
        flags.append(
            {
                "kind": "retries",
                "severity": "perf",
                "baseline": round(base_retries, 2),
                "observed": retries,
                "detail": "retry count rose well above the baseline average",
            }
        )
    return flags


def update_baseline(
    baseline: Optional[Mapping[str, object]], record: Mapping[str, object]
) -> Dict[str, object]:
    """Fold ``record`` into the rolling baseline (EMA for noisy figures).

    The result digest always adopts the latest value: once a correctness
    alarm has been raised and recorded, subsequent identical re-runs of
    the *new* output compare clean instead of re-alarming forever -- the
    historical flag lives in the ledger record, not the baseline.
    """
    bps = float(record.get("branches_per_sec", 0.0) or 0.0)
    hit = float(record.get("cache_hit_rate", 0.0) or 0.0)
    retries = float(record.get("retries", 0.0) or 0.0)
    if not baseline:
        return {
            "runs": 1,
            "branches_per_sec": bps,
            "cache_hit_rate": hit,
            "retries": retries,
            "result_digest": record.get("result_digest", ""),
            "last_run_id": record.get("run_id", ""),
            "last_ts": record.get("ts", 0.0),
        }

    def ema(old: float, new: float) -> float:
        return (1.0 - EMA_ALPHA) * old + EMA_ALPHA * new

    old_bps = float(baseline.get("branches_per_sec", 0.0) or 0.0)
    return {
        "runs": int(baseline.get("runs", 0)) + 1,
        # a fully cached replay (bps recorded but nothing simulated) must
        # not drag the simulated-throughput baseline around
        "branches_per_sec": ema(old_bps, bps) if bps > 0 else old_bps,
        "cache_hit_rate": ema(float(baseline.get("cache_hit_rate", 0.0) or 0.0), hit),
        "retries": ema(float(baseline.get("retries", 0.0) or 0.0), retries),
        "result_digest": record.get("result_digest", baseline.get("result_digest", "")),
        "last_run_id": record.get("run_id", ""),
        "last_ts": record.get("ts", 0.0),
    }


def check_and_update(
    directory: Union[str, Path],
    record: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict[str, object]]:
    """Watchdog entry point: check first, then fold into the baseline.

    Mutates ``record`` in place (sets ``record["regressions"]``) so the
    flags are persisted inside the ledger record itself -- ``repro
    history regressions`` needs no recomputation, and the verdict can
    never drift from what the watchdog saw at run time.
    """
    baselines = load_baselines(directory)
    key = baseline_key(record)
    flags = check_record(record, baselines.get(key), tolerance=tolerance)
    record["regressions"] = flags
    baselines[key] = update_baseline(baselines.get(key), record)
    save_baselines(directory, baselines)
    return flags


def flagged_records(records) -> List[Dict[str, object]]:
    """The subset of ledger records carrying at least one flag."""
    return [record for record in records if record.get("regressions")]
