"""Nested wall/CPU timing spans.

``span("simulate", workload=..., config=...)`` is a context manager
that, when telemetry is enabled, emits one ``span`` event on exit with
wall seconds, CPU (process) seconds, and a ``span_id``/``parent_id``
pair linking it into the tree.  Span ids are 64-bit random hex drawn
from ``os.urandom`` so they are unique across processes without
coordination; a worker forked while the parent held ``run_cells`` open
inherits the span stack and its ``cell`` spans parent onto the
dispatching span, which is exactly the tree a reader expects.

With telemetry disabled the context manager is a single ``None`` check
— spans sit at cell granularity (never inside the per-branch loop), so
this costs nothing measurable either way.
"""

from __future__ import annotations

import binascii
import os
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs import telemetry as _telemetry
from repro.obs.metrics import registry

__all__ = ["span", "current_span_id"]

# One stack per process; inherited over fork on purpose (see module doc).
_STACK: List[str] = []


def _new_span_id() -> str:
    return binascii.hexlify(os.urandom(8)).decode("ascii")


def current_span_id() -> Optional[str]:
    return _STACK[-1] if _STACK else None


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[str]]:
    """Time a region; no-op (yielding ``None``) when telemetry is off."""
    session = _telemetry.current()
    if session is None:
        yield None
        return
    span_id = _new_span_id()
    parent_id = current_span_id()
    _STACK.append(span_id)
    ts_start = time.time()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        yield span_id
    finally:
        wall = time.perf_counter() - wall_start
        cpu = time.process_time() - cpu_start
        if _STACK and _STACK[-1] == span_id:
            _STACK.pop()
        registry().histogram("span.%s.seconds" % name).observe(wall)
        session.emit(
            "span",
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            ts_start=ts_start,
            wall_seconds=wall,
            cpu_seconds=cpu,
            attrs={k: v for k, v in attrs.items()},
        )
