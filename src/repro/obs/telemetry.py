"""The process-global telemetry session.

One :class:`Telemetry` per process, created by :func:`configure` (the
CLI/parent) or :func:`ensure` (pool workers, which receive the
directory + sampling interval explicitly from :func:`worker_config`
through the task payload rather than ambient environment variables —
deterministic under both ``fork`` and ``spawn`` start methods, and no
state leaks between tests).

Fork safety: :func:`current` compares the session's pid to the caller's
and drops an inherited parent session, so a forked worker never writes
into the parent's per-pid files; its first :func:`ensure` call opens
fresh ``events-<pid>.jsonl``/``metrics-<pid>.json`` and resets the
(inherited) metrics registry so parent totals are not double-counted in
the merge.

Crash safety: workers flush a full metrics snapshot after *every*
completed cell (atomic temp+rename), so a worker later killed by
SIGKILL leaves behind exactly the counts of the cells it finished;
:func:`merged_metrics` sums whatever per-pid snapshots exist.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.events import EventSink
from repro.obs.metrics import merge_snapshots, registry

__all__ = [
    "Telemetry",
    "configure",
    "current",
    "emit_event",
    "enabled",
    "ensure",
    "flush",
    "merged_metrics",
    "shutdown",
    "worker_config",
]

METRICS_FILE_PREFIX = "metrics-"
METRICS_FILE_SUFFIX = ".json"
META_FILENAME = "meta.json"


class Telemetry:
    """One process's telemetry session: event sink + metrics flushing."""

    def __init__(
        self,
        directory: Union[str, Path],
        sample_interval: int = 0,
        role: str = "parent",
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self.sample_interval = int(sample_interval)
        self.role = role
        self.sink = EventSink(self.directory)
        if role == "parent":
            self._write_meta()

    def _write_meta(self) -> None:
        meta = {
            "started": time.time(),
            "parent_pid": self.pid,
            "sample_interval": self.sample_interval,
        }
        tmp = self.directory / (META_FILENAME + ".tmp.%d" % self.pid)
        try:
            tmp.write_text(json.dumps(meta, sort_keys=True))
            os.replace(tmp, self.directory / META_FILENAME)
        except OSError:
            pass

    def emit(self, event_type: str, **fields: object) -> None:
        self.sink.emit(event_type, **fields)

    def flush_metrics(self) -> None:
        """Atomically publish this process's current metrics snapshot."""
        if os.getpid() != self.pid:
            return
        snap = registry().snapshot()
        path = self.directory / ("%s%d%s" % (METRICS_FILE_PREFIX, self.pid, METRICS_FILE_SUFFIX))
        tmp = self.directory / ("%s%d%s.tmp" % (METRICS_FILE_PREFIX, self.pid, METRICS_FILE_SUFFIX))
        try:
            tmp.write_text(json.dumps(snap, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            pass

    def close(self) -> None:
        self.flush_metrics()
        self.sink.close()


_CURRENT: Optional[Telemetry] = None


def current() -> Optional[Telemetry]:
    """This process's session, or ``None``; drops inherited fork copies."""
    global _CURRENT
    session = _CURRENT
    if session is not None and session.pid != os.getpid():
        _CURRENT = None  # forked child: parent's session is not ours
        return None
    return session


def enabled() -> bool:
    return current() is not None


def configure(
    directory: Union[str, Path], sample_interval: int = 0, role: str = "parent"
) -> Telemetry:
    """Start (or replace) this process's telemetry session.

    A session scopes the metrics registry: starting one discards any
    counts (and collectors) accumulated beforehand in this process, so
    the per-pid snapshot reflects only work done under the session.
    """
    global _CURRENT
    previous = current()
    if previous is not None:
        previous.close()
    registry().reset()
    _CURRENT = Telemetry(directory, sample_interval=sample_interval, role=role)
    return _CURRENT


def ensure(directory: Union[str, Path], sample_interval: int = 0) -> Telemetry:
    """Worker-side init: reuse a live same-directory session or build one.

    On first call in a forked/spawned worker this also resets the
    metrics registry, discarding any counts inherited from the parent so
    the per-pid snapshot holds only this worker's work.
    """
    session = current()
    if session is not None and session.directory == Path(directory):
        return session
    registry().reset()
    return configure(directory, sample_interval=sample_interval, role="worker")


def shutdown() -> None:
    """Flush and close this process's session (idempotent)."""
    global _CURRENT
    session = current()
    if session is not None:
        session.close()
    _CURRENT = None


def flush() -> None:
    session = current()
    if session is not None:
        session.flush_metrics()


def emit_event(event_type: str, **fields: object) -> None:
    """Emit an event iff telemetry is enabled; otherwise free."""
    session = current()
    if session is not None:
        session.emit(event_type, **fields)


def worker_config() -> Optional[Tuple[str, int]]:
    """``(directory, sample_interval)`` to ship to pool workers, or None."""
    session = current()
    if session is None:
        return None
    return (str(session.directory), session.sample_interval)


def merged_metrics(
    directory: Union[str, Path], include_local: bool = True
) -> Dict[str, object]:
    """Merge every per-pid metrics snapshot in ``directory``.

    ``include_local`` folds in the calling process's live registry when
    it has not yet flushed its own file (parent-side convenience); if a
    file for this pid exists on disk the live registry wins for it.
    """
    directory = Path(directory)
    snapshots: List[Dict[str, object]] = []
    local_pid = os.getpid()
    seen_local_file = False
    if directory.is_dir():
        for path in sorted(directory.glob(METRICS_FILE_PREFIX + "*" + METRICS_FILE_SUFFIX)):
            try:
                snap = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(snap, dict):
                continue
            if snap.get("pid") == local_pid:
                if include_local:
                    continue  # live registry supersedes our own stale file
                seen_local_file = True
            snapshots.append(snap)
    if include_local and not seen_local_file:
        snapshots.append(registry().snapshot())
    return merge_snapshots(snapshots)
