"""Persistent run ledger: append-only history of every matrix run.

The ledger is the longitudinal complement to :mod:`repro.obs.telemetry`:
telemetry observes *one* run in depth and is discarded afterwards; the
ledger keeps one compact record per run forever, so throughput drift,
cache-health decay, and -- most importantly -- result-digest changes are
visible across days of CLI invocations, service jobs, and benchmark
sweeps sharing a cache directory.

Storage follows the repo's crash-safety house style:

* appends go to a per-pid ``segment-<pid>.jsonl`` (one JSON line per
  record, flushed per write), so concurrent writers never interleave
  within a line and a SIGKILL mid-append can only tear the final line of
  the killer's own segment;
* reads tolerate torn tails by skipping unparseable lines, exactly like
  :func:`repro.obs.events.read_events`;
* the advisory ``index.json`` (per-segment sizes and record counts, for
  fast ``count()``) is replaced atomically via the same
  ``tmp.<pid>`` + ``os.replace`` discipline as ``ResultCache``.

Every record is self-describing: matrix digest (identity of *what* ran),
result digest (identity of *what came out* -- a change for the same
matrix digest is a correctness alarm, see :mod:`repro.obs.regress`),
host/pid/source, wall and CPU seconds, branches per second, the full
:class:`~repro.core.run_report.RunReport` dict, and the merged metrics
snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = [
    "LEDGER_DIRNAME",
    "RunLedger",
    "build_run_record",
    "build_session_record",
    "matrix_digest",
    "result_digest",
]

#: ledger directory, relative to the result-cache directory
LEDGER_DIRNAME = ".ledger"

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".jsonl"
INDEX_FILENAME = "index.json"


def matrix_digest(cell_digests: Iterable[str]) -> str:
    """Identity of *what* ran: hash over the sorted cell digests.

    Cell digests (:meth:`repro.core.runner.Runner.digest`) already cover
    workload, config, overrides, and run parameters, so two runs share a
    matrix digest iff they executed the same cells under the same
    parameters -- the unit the regression watchdog compares across runs.
    """
    payload = "\n".join(sorted(cell_digests))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def result_digest(result_dicts: Sequence[Mapping[str, object]]) -> str:
    """Identity of *what came out*: hash over the serialized results.

    Results are hashed in cell order (matrix order is deterministic), so
    for a fixed matrix digest this digest must be bit-stable across
    re-runs -- simulation is a pure function of the cell key.  A change
    is flagged as a correctness alarm by :mod:`repro.obs.regress`.
    """
    payload = json.dumps(list(result_dicts), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class RunLedger:
    """Append-only, crash-safe run-history store in one directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._seq = 0

    # -- paths --------------------------------------------------------------

    def _segment_path(self) -> Path:
        return self.directory / ("%s%d%s" % (SEGMENT_PREFIX, os.getpid(), SEGMENT_SUFFIX))

    @property
    def index_path(self) -> Path:
        return self.directory / INDEX_FILENAME

    # -- writing ------------------------------------------------------------

    def _run_id(self, ts: float) -> str:
        self._seq += 1
        token = "%s|%d|%.9f|%d" % (socket.gethostname(), os.getpid(), ts, self._seq)
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:12]

    def prepare(self, record: Dict[str, object]) -> Dict[str, object]:
        """Fill a record's identity fields (idempotent).

        Callers that inspect or baseline-check a record before appending
        it (see :meth:`repro.core.runner.Runner._ledger_commit`) call
        this first, so the baseline's host key and ``last_run_id``/
        ``last_ts`` provenance see the final identity.
        """
        ts = float(record.get("ts") or time.time())
        record.setdefault("ts", ts)
        record.setdefault("run_id", self._run_id(ts))
        record.setdefault("host", socket.gethostname())
        record.setdefault("pid", os.getpid())
        record.setdefault("source", "api")
        record.setdefault("regressions", [])
        return record

    def append(self, record: Dict[str, object]) -> Dict[str, object]:
        """Append one run record; fills identity fields if absent.

        The write is a single flushed line in this process's own segment
        -- no cross-process file sharing, so concurrent runners sharing
        the ledger directory can never corrupt each other's records.
        """
        self.prepare(record)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with open(self._segment_path(), "a+b") as handle:
            # heal a torn tail first: a crash mid-append can leave the
            # segment without its final newline, and writing straight on
            # would corrupt this record too instead of just losing that one
            handle.seek(0, os.SEEK_END)
            if handle.tell():
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        self._update_index()
        return record

    def _update_index(self) -> None:
        """Rewrite the advisory index atomically (temp + rename).

        The index is a cache, never the source of truth: readers rescan
        any segment whose size changed since it was indexed, so a crash
        between the segment append and the index replace costs nothing.
        """
        segments: Dict[str, Dict[str, int]] = {}
        total = 0
        for path in sorted(self.directory.glob(SEGMENT_PREFIX + "*" + SEGMENT_SUFFIX)):
            count = sum(1 for _ in self._iter_segment(path))
            segments[path.name] = {"size": path.stat().st_size, "records": count}
            total += count
        index = {"version": 1, "records": total, "segments": segments}
        tmp = self.index_path.with_name("%s.tmp.%d" % (INDEX_FILENAME, os.getpid()))
        try:
            tmp.write_text(json.dumps(index, sort_keys=True))
            os.replace(tmp, self.index_path)
        except OSError:
            pass

    # -- reading ------------------------------------------------------------

    @staticmethod
    def _iter_segment(path: Path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail of a killed writer
                    if isinstance(record, dict):
                        yield record
        except OSError:
            return

    def records(self) -> List[Dict[str, object]]:
        """Every readable record across all segments, oldest first."""
        records: List[Dict[str, object]] = []
        for path in sorted(self.directory.glob(SEGMENT_PREFIX + "*" + SEGMENT_SUFFIX)):
            records.extend(self._iter_segment(path))
        records.sort(key=lambda r: (r.get("ts", 0.0), str(r.get("run_id", ""))))
        return records

    def count(self) -> int:
        """Record count; trusts the index only for unchanged segments."""
        indexed: Dict[str, Dict[str, int]] = {}
        try:
            index = json.loads(self.index_path.read_text())
            if isinstance(index, dict):
                indexed = dict(index.get("segments", {}))
        except (OSError, ValueError):
            pass
        total = 0
        for path in self.directory.glob(SEGMENT_PREFIX + "*" + SEGMENT_SUFFIX):
            entry = indexed.get(path.name)
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if isinstance(entry, dict) and entry.get("size") == size:
                total += int(entry.get("records", 0))
            else:
                total += sum(1 for _ in self._iter_segment(path))
        return total

    def get(self, run_id: str) -> Dict[str, object]:
        """Look up one record by full run id or unique prefix.

        Raises :class:`KeyError` for an unknown id or an ambiguous prefix.
        """
        matches = [
            record
            for record in self.records()
            if str(record.get("run_id", "")).startswith(run_id)
        ]
        if not matches:
            raise KeyError(f"no ledger record matching run id {run_id!r}")
        exact = [record for record in matches if record.get("run_id") == run_id]
        if exact:
            return exact[0]
        if len(matches) > 1:
            raise KeyError(f"run id prefix {run_id!r} is ambiguous ({len(matches)} matches)")
        return matches[0]


def build_run_record(
    runner,
    cells: Sequence,
    results: Sequence,
    wall_seconds: float,
    cpu_seconds: float,
    source: str = "api",
    context: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Assemble one ledger record from a finished runner + its results.

    The record embeds the full run report (with cache/artifact health and
    cost-model accuracy), the merged metrics snapshot (all processes when
    a telemetry session is live, else this process's registry), and the
    throughput figures the regression watchdog compares.
    """
    from repro.core.results_io import result_to_dict
    from repro.obs.metrics import merge_snapshots, registry
    from repro.obs.telemetry import current as obs_current
    from repro.obs.telemetry import merged_metrics

    from repro.core.results_io import result_to_dict

    cell_digests = [runner.digest(workload, name, overrides) for workload, name, overrides in cells]
    workloads: List[str] = []
    configs: List[str] = []
    for workload, name, _overrides in cells:
        if workload not in workloads:
            workloads.append(workload)
        if name not in configs:
            configs.append(name)
    return _assemble_record(
        runner,
        matrix=matrix_digest(cell_digests),
        results_id=result_digest([result_to_dict(result) for result in results]),
        workloads=workloads,
        configs=configs,
        cell_count=len(cells),
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        source=source,
        context=context,
    )


def build_session_record(
    runner,
    wall_seconds: float,
    cpu_seconds: float,
    source: str = "cli",
    context: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Fallback record for harnesses driving ``run_cells`` directly.

    ``repro report`` figures call experiment functions that may never go
    through ``run_matrix``; this builds one record for the whole CLI
    session from the run report's cell set (matrix identity: hashed cell
    keys + run parameters) and the runner's memoised results (result
    identity) instead of an explicit ``(cells, results)`` pair.
    """
    from repro.core.results_io import result_to_dict

    report_cells = runner.report.cells()
    keys = sorted(
        "%s|%s|%s|%d|%d|%s|%s"
        % (
            cell.workload,
            cell.config,
            cell.overrides,
            runner.config.num_branches,
            runner.config.scale,
            runner.config.seed,
            runner.config.warmup_fraction,
        )
        for cell in report_cells
    )
    matrix = hashlib.sha256("\n".join(keys).encode("utf-8")).hexdigest()[:16]
    memo = sorted(runner._results.items(), key=lambda kv: repr(kv[0]))
    results_id = result_digest(
        [{"key": repr(key), "result": result_to_dict(result)} for key, result in memo]
    )
    workloads: List[str] = []
    configs: List[str] = []
    for cell in report_cells:
        if cell.workload not in workloads:
            workloads.append(cell.workload)
        if cell.config not in configs:
            configs.append(cell.config)
    return _assemble_record(
        runner,
        matrix=matrix,
        results_id=results_id,
        workloads=workloads,
        configs=configs,
        cell_count=len(report_cells),
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        source=source,
        context=context,
    )


def _assemble_record(
    runner,
    matrix: str,
    results_id: str,
    workloads: List[str],
    configs: List[str],
    cell_count: int,
    wall_seconds: float,
    cpu_seconds: float,
    source: str,
    context: Optional[Mapping[str, object]],
) -> Dict[str, object]:
    from repro.obs.metrics import merge_snapshots, registry
    from repro.obs.telemetry import current as obs_current
    from repro.obs.telemetry import merged_metrics

    session = obs_current()
    if session is not None:
        metrics = merged_metrics(session.directory)
    else:
        metrics = merge_snapshots([registry().snapshot()])
    totals = runner.report.totals()
    total_cells = int(totals["cells"]) or cell_count
    branches = cell_count * runner.config.num_branches
    # throughput counts only simulated branches: a fully cached replay
    # finishes in milliseconds and must not inflate the rolling baseline
    # the regression watchdog compares real simulations against
    sim_branches = int(totals["simulated"]) * runner.config.num_branches
    bps = sim_branches / wall_seconds if (wall_seconds > 0 and sim_branches) else 0.0
    hit_rate = float(totals["cached"]) / total_cells if total_cells else 0.0
    return {
        "source": source,
        "context": dict(context or {}),
        "workloads": workloads,
        "configs": configs,
        "backend": runner.backend,
        "branches": branches,
        "scale": runner.config.scale,
        "matrix_digest": matrix,
        "result_digest": results_id,
        "cells": cell_count,
        "cache_hit_rate": round(hit_rate, 4),
        "retries": int(totals["retries"]),
        "wall_seconds": round(float(wall_seconds), 6),
        "cpu_seconds": round(float(cpu_seconds), 6),
        "branches_per_sec": round(bps, 2),
        "report": runner.report.to_dict(runner),
        "metrics": metrics,
    }
