"""Render a merged telemetry run: span tree, top metrics, fault timeline.

Works purely from the files in a telemetry directory (events + per-pid
metrics snapshots), so it can be pointed at the output of a crashed run
— killed workers contribute whatever they flushed before dying.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import read_events
from repro.obs.metrics import Histogram
from repro.obs.telemetry import merged_metrics

__all__ = ["load_run", "render_report", "render_trend"]

# Event types that belong on the fault/retry timeline.  ``cell-success``
# is included only for cells that previously failed or were interrupted,
# so a clean run has an empty timeline and a retried run shows
# failure -> ... -> eventual success explicitly.
FAULT_EVENT_TYPES = (
    "cell-failure",
    "cell-interruption",
    "cell-timeout",
    "pool-rebuild",
    "serial-fallback",
)


class SpanNode:
    __slots__ = ("name", "span_id", "parent_id", "pid", "ts_start", "wall", "cpu", "attrs", "children")

    def __init__(self, event: Dict[str, object]) -> None:
        self.name = str(event.get("name", "?"))
        self.span_id = str(event.get("span_id", ""))
        self.parent_id = event.get("parent_id")
        self.pid = event.get("pid")
        self.ts_start = float(event.get("ts_start", 0.0))  # type: ignore[arg-type]
        self.wall = float(event.get("wall_seconds", 0.0))  # type: ignore[arg-type]
        self.cpu = float(event.get("cpu_seconds", 0.0))  # type: ignore[arg-type]
        attrs = event.get("attrs")
        self.attrs = attrs if isinstance(attrs, dict) else {}
        self.children: List["SpanNode"] = []

    @property
    def self_wall(self) -> float:
        return max(0.0, self.wall - sum(c.wall for c in self.children))


def build_span_tree(events: List[Dict[str, object]]) -> List[SpanNode]:
    """Roots of the merged span forest (orphans promoted to roots)."""
    nodes = {
        str(e.get("span_id")): SpanNode(e)
        for e in events
        if e.get("type") == "span" and e.get("span_id")
    }
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(str(node.parent_id)) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.ts_start)
    roots.sort(key=lambda n: n.ts_start)
    return roots


def load_run(directory: Union[str, Path]) -> Dict[str, object]:
    """Everything a report needs: events, span roots, merged metrics."""
    directory = Path(directory)
    events = read_events(directory)
    return {
        "directory": directory,
        "events": events,
        "spans": build_span_tree(events),
        "metrics": merged_metrics(directory, include_local=False),
        "pids": sorted({e.get("pid") for e in events if isinstance(e.get("pid"), int)}),
    }


def _fmt_attrs(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    return " " + " ".join("%s=%s" % (k, attrs[k]) for k in sorted(attrs))


def _render_span(node: SpanNode, depth: int, lines: List[str]) -> None:
    label = "%s%s%s" % ("  " * depth, node.name, _fmt_attrs(node.attrs))
    lines.append(
        "%-58s total %9.3fs  self %9.3fs  cpu %9.3fs  [pid %s]"
        % (label[:58], node.wall, node.self_wall, node.cpu, node.pid)
    )
    for child in node.children:
        _render_span(child, depth + 1, lines)


def _cell_key(event: Dict[str, object]) -> str:
    return "%s/%s" % (event.get("workload", "?"), event.get("config", "?"))


def _timeline(events: List[Dict[str, object]]) -> List[Dict[str, object]]:
    failed = {_cell_key(e) for e in events if e.get("type") in ("cell-failure", "cell-interruption", "cell-timeout")}
    picked = []
    succeeded = set()
    for event in events:
        etype = event.get("type")
        if etype in FAULT_EVENT_TYPES:
            picked.append(event)
        elif etype == "cell-success" and _cell_key(event) in failed:
            # worker and parent both record the success; show it once
            if _cell_key(event) not in succeeded:
                succeeded.add(_cell_key(event))
                picked.append(event)
    return picked


def _fmt_timeline_event(event: Dict[str, object], t0: float) -> str:
    etype = str(event.get("type"))
    offset = float(event.get("ts", t0)) - t0  # type: ignore[arg-type]
    detail_keys = ("workload", "config", "kind", "detail", "attempt", "seconds", "consecutive")
    details = " ".join(
        "%s=%s" % (k, event[k]) for k in detail_keys if k in event and event[k] not in (None, "")
    )
    return "  +%8.3fs  %-17s %s" % (offset, etype, details)


def render_report(directory: Union[str, Path], top: int = 12) -> str:
    """A human-readable merged-run report (the ``obs-report`` payload)."""
    run = load_run(directory)
    events: List[Dict[str, object]] = run["events"]  # type: ignore[assignment]
    spans: List[SpanNode] = run["spans"]  # type: ignore[assignment]
    metrics: Dict[str, object] = run["metrics"]  # type: ignore[assignment]
    lines: List[str] = []
    lines.append("telemetry run: %s" % run["directory"])
    lines.append(
        "events: %d from %d process(es)" % (len(events), len(run["pids"]))  # type: ignore[arg-type]
    )
    lines.append("")
    lines.append("span tree (wall/self/cpu seconds):")
    if spans:
        for root in spans:
            _render_span(root, 1, lines)
    else:
        lines.append("  (no spans recorded)")

    counters: Dict[str, float] = dict(metrics.get("counters", {}))  # type: ignore[arg-type]
    gauges: Dict[str, float] = dict(metrics.get("gauges", {}))  # type: ignore[arg-type]
    histograms: Dict[str, Dict[str, object]] = dict(metrics.get("histograms", {}))  # type: ignore[arg-type]

    lines.append("")
    lines.append("top counters:")
    if counters:
        ranked = sorted(counters.items(), key=lambda kv: (-abs(kv[1]), kv[0]))[:top]
        for name, value in ranked:
            lines.append("  %-48s %s" % (name, _fmt_num(value)))
    else:
        lines.append("  (none)")

    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges)[:top]:
            lines.append("  %-48s %s" % (name, _fmt_num(gauges[name])))

    if histograms:
        lines.append("")
        lines.append("histograms (count / mean / p50 / p90 / p99):")
        for name in sorted(histograms):
            hist = Histogram.from_dict(name, histograms[name])
            lines.append(
                "  %-38s %6d  %8.4f  %8.4f  %8.4f  %8.4f"
                % (name, hist.count, hist.mean, hist.percentile(50), hist.percentile(90), hist.percentile(99))
            )

    batched_groups = [e for e in events if e.get("type") == "batched-group"]
    fallbacks = counters.get("backend.fallbacks", 0)
    if batched_groups or fallbacks:
        sizes = sorted((int(e.get("lanes", 0)) for e in batched_groups), reverse=True)
        lines.append("")
        lines.append("execution backends:")
        lines.append(
            "  batched groups: %d  lanes: %d  max group: %d  fallbacks to reference: %d"
            % (len(sizes), sum(sizes), sizes[0] if sizes else 0, int(fallbacks))
        )
        if sizes:
            lines.append("  group sizes: %s" % ", ".join(str(s) for s in sizes))
        base_records = counters.get("backend.base_records", 0)
        base_loads = counters.get("backend.base_loads", 0)
        if base_records or base_loads:
            lines.append(
                "  base streams: %d recorded, %d loaded (%s stream bytes)"
                % (
                    int(base_records),
                    int(base_loads),
                    _fmt_num(counters.get("backend.base_bytes", 0)),
                )
            )

    if "run.cost_mape_percent" in gauges:
        lines.append("")
        lines.append("cost model:")
        lines.append(
            "  predicted-vs-actual MAPE: %.2f%%" % float(gauges["run.cost_mape_percent"])
        )

    coop_events = [
        e for e in events if e.get("type") in ("coop-start", "cell-claim", "peer-result", "claim-reaped")
    ]
    if coop_events or counters.get("sched.claims"):
        hosts = sorted(
            {str(e.get("host")) for e in coop_events if e.get("host") not in (None, "")}
        )
        lines.append("")
        lines.append("distributed scheduling:")
        lines.append(
            "  hosts: %d  claims: %d  peer results: %d  reaped claims: %d  wait rounds: %d"
            % (
                len(hosts),
                int(counters.get("sched.claims", 0)),
                int(counters.get("sched.peer_results", 0)),
                int(counters.get("sched.reaped_claims", 0)),
                int(counters.get("sched.wait_rounds", 0)),
            )
        )
        for host in hosts:
            claims = sum(1 for e in coop_events if e.get("type") == "cell-claim" and e.get("host") == host)
            peers = sum(1 for e in coop_events if e.get("type") == "peer-result" and e.get("host") == host)
            lines.append("  %-32s claimed %d  adopted %d" % (host, claims, peers))

    timeline = _timeline(events)
    lines.append("")
    lines.append("fault/retry timeline:")
    if timeline:
        t0 = min(float(e.get("ts", 0.0)) for e in timeline)  # type: ignore[arg-type]
        for event in timeline:
            lines.append(_fmt_timeline_event(event, t0))
    else:
        lines.append("  (no faults recorded)")
    return "\n".join(lines)


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return "%d" % int(value)
    return "%.6g" % value


def render_trend(records: List[Dict[str, object]], limit: int = 8) -> str:
    """Longitudinal trend lines over ledger records (``repro history``).

    Records are grouped by baseline identity (matrix digest, backend,
    host); each group renders its recent branches/sec series with the
    delta of the newest run against the group mean, plus a count of
    flagged runs -- the at-a-glance answer to "has this matrix gotten
    slower since last week?".
    """
    groups: Dict[tuple, List[Dict[str, object]]] = {}
    for record in records:
        key = (
            str(record.get("matrix_digest", "")),
            str(record.get("backend", "")),
            str(record.get("host", "")),
        )
        groups.setdefault(key, []).append(record)
    lines: List[str] = ["throughput trend (branches/sec, oldest -> newest):"]
    if not groups:
        lines.append("  (no runs recorded)")
        return "\n".join(lines)
    for key in sorted(groups):
        matrix, backend, host = key
        series = [float(r.get("branches_per_sec", 0.0) or 0.0) for r in groups[key]]
        measured = [bps for bps in series if bps > 0]
        flagged = sum(1 for r in groups[key] if r.get("regressions"))
        label = "%s %s@%s" % (matrix[:12], backend or "?", host or "?")
        if not measured:
            lines.append("  %-40s %d run(s), all cached" % (label, len(series)))
            continue
        mean = sum(measured) / len(measured)
        latest = measured[-1]
        delta = 100.0 * (latest - mean) / mean if mean else 0.0
        tail = " ".join(_fmt_num(round(bps)) for bps in measured[-limit:])
        line = "  %-40s %s  (latest %+.1f%% vs mean)" % (label, tail, delta)
        if flagged:
            line += "  [%d flagged]" % flagged
        lines.append(line)
    return "\n".join(lines)
