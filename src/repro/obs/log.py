"""The ``repro`` logger hierarchy.

All human-facing diagnostics (progress, cache stats, retry warnings)
flow through ``logging.getLogger("repro...")`` instead of bare
``print(..., file=sys.stderr)``.  :func:`configure_logging` installs a
message-only stderr handler on the root ``repro`` logger at the level
chosen by ``--log-level`` (default ``warning``, so routine info lines
stay silent unless asked for).

The handler is torn down and recreated on every call, bound to the
*current* ``sys.stderr`` — this matters under pytest, where each test's
``capsys`` swaps the stream; a handler cached from a previous test
would write into a closed buffer.  Library code that never calls
:func:`configure_logging` still surfaces warnings through logging's
last-resort stderr handler.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["configure_logging", "get_logger"]

ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str = "") -> logging.Logger:
    """``get_logger("parallel")`` -> the ``repro.parallel`` logger."""
    if name:
        return logging.getLogger(ROOT_LOGGER_NAME + "." + name)
    return logging.getLogger(ROOT_LOGGER_NAME)


def configure_logging(level: str = "warning", stream: Optional[IO[str]] = None) -> logging.Logger:
    """(Re)install a message-only handler on the ``repro`` logger."""
    logger = get_logger()
    logger.setLevel(_LEVELS.get(str(level).lower(), logging.WARNING))
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
        try:
            handler.close()
        except Exception:
            pass
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    return logger
