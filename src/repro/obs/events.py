"""Crash-safe JSONL event sink and merger.

Each process appends to its own ``events-<pid>.jsonl`` inside the
telemetry directory — no cross-process file sharing, so a worker killed
mid-write can only ever damage the final line of its own file.
:func:`read_events` therefore skips lines that fail to parse (the torn
tail of a killed worker) instead of raising, and the merged stream is
simply the concatenation of every per-pid file sorted by timestamp.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["EventSink", "compact_events", "read_events"]

EVENT_FILE_PREFIX = "events-"
EVENT_FILE_SUFFIX = ".jsonl"

#: rolled-segment token: ``events-merged.jsonl`` / ``metrics-merged.json``
#: match the readers' globs but are never candidates for compaction
#: themselves (their token is not a pid)
MERGED_TOKEN = "merged"


class EventSink:
    """Append-only JSONL writer for one process.

    Every event is written and flushed as a single line so the file is
    valid (bar at most one torn tail line) at every instant.  The sink
    records the pid it was opened in and refuses to write from another
    process — a forked child must open its own sink.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self.path = self.directory / ("%s%d%s" % (EVENT_FILE_PREFIX, self.pid, EVENT_FILE_SUFFIX))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._closed = False

    def emit(self, event_type: str, **fields: object) -> None:
        if self._closed or os.getpid() != self.pid:
            return
        event: Dict[str, object] = {"ts": time.time(), "pid": self.pid, "type": event_type}
        event.update(fields)
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if os.getpid() == self.pid:
                self._fh.close()

    def compact(self) -> Dict[str, int]:
        """Roll dead-pid files in this sink's directory; see :func:`compact_events`."""
        return compact_events(self.directory)


def _iter_file(path: Path) -> Iterator[Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn tail of a killed worker
                if isinstance(event, dict):
                    yield event
    except OSError:
        return


def read_events(
    directory: Union[str, Path],
    event_type: Optional[str] = None,
    where: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """All events from every per-pid file, sorted by timestamp.

    Tolerates missing directories, unreadable files, and truncated
    lines; optionally filters to one ``event_type`` and/or to events
    whose fields match every ``where`` entry (the experiment service
    uses ``where={"job": job_id}`` to stream one job's progress).
    """
    directory = Path(directory)
    events: List[Dict[str, object]] = []
    if not directory.is_dir():
        return events
    for path in sorted(directory.glob(EVENT_FILE_PREFIX + "*" + EVENT_FILE_SUFFIX)):
        for event in _iter_file(path):
            if event_type is not None and event.get("type") != event_type:
                continue
            if where is not None and any(event.get(k) != v for k, v in where.items()):
                continue
            events.append(event)
    events.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0)))
    return events


def _dead_pid_files(directory: Path, prefix: str, suffix: str) -> List[Path]:
    """Per-pid files whose writer process is gone (never the caller's)."""
    from repro.core.faults import pid_alive

    dead: List[Path] = []
    for path in sorted(directory.glob(prefix + "*" + suffix)):
        token = path.name[len(prefix):][: -len(suffix)]
        try:
            pid = int(token)
        except ValueError:
            continue  # rolled segment or foreign file, never compacted
        if pid != os.getpid() and not pid_alive(pid):
            dead.append(path)
    return dead


def compact_events(directory: Union[str, Path]) -> Dict[str, int]:
    """Merge dead-pid telemetry files into rolled segments.

    A long-lived daemon accumulates one ``events-<pid>.jsonl`` and one
    ``metrics-<pid>.json`` per job-runner worker process; once the
    writer is dead its files are frozen, so they can be folded into a
    single ``events-merged.jsonl`` (events re-emitted in timestamp
    order, torn tails dropped) and ``metrics-merged.json`` (snapshot
    merge: counters/histograms sum, gauges last-writer) and deleted.
    Readers need no migration -- the rolled names match the same globs
    ``read_events``/``merged_metrics`` already scan.

    Only files of provably dead pids are touched (``pid_alive``), never
    the calling process's own, so compaction is safe to run while a
    service is serving.  Returns counts for the CLI/startup log line.
    """
    directory = Path(directory)
    stats = {"event_files": 0, "events": 0, "metrics_files": 0}
    if not directory.is_dir():
        return stats

    merged_events = directory / (EVENT_FILE_PREFIX + MERGED_TOKEN + EVENT_FILE_SUFFIX)
    dead = _dead_pid_files(directory, EVENT_FILE_PREFIX, EVENT_FILE_SUFFIX)
    if dead:
        events: List[Dict[str, object]] = []
        for path in dead:
            events.extend(_iter_file(path))
        events.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0)))
        with open(merged_events, "a", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
            fh.flush()
        for path in dead:
            try:
                path.unlink()
            except OSError:
                pass
        stats["event_files"] = len(dead)
        stats["events"] = len(events)

    # metrics snapshots: fold dead-pid files into the rolled snapshot
    # (import here: telemetry imports this module at load time)
    from repro.obs.metrics import merge_snapshots

    metrics_prefix, metrics_suffix = "metrics-", ".json"
    merged_metrics_path = directory / (metrics_prefix + MERGED_TOKEN + metrics_suffix)
    dead = _dead_pid_files(directory, metrics_prefix, metrics_suffix)
    if dead:
        snapshots: List[Dict[str, object]] = []
        try:
            existing = json.loads(merged_metrics_path.read_text())
            if isinstance(existing, dict):
                snapshots.append(existing)
        except (OSError, ValueError):
            pass
        for path in dead:
            try:
                snap = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(snap, dict):
                snapshots.append(snap)
        merged = merge_snapshots(snapshots)
        tmp = merged_metrics_path.with_name(merged_metrics_path.name + ".tmp.%d" % os.getpid())
        try:
            tmp.write_text(json.dumps(merged, sort_keys=True))
            os.replace(tmp, merged_metrics_path)
        except OSError:
            return stats  # keep sources: nothing was durably merged
        for path in dead:
            try:
                path.unlink()
            except OSError:
                pass
        stats["metrics_files"] = len(dead)
    return stats
