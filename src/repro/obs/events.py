"""Crash-safe JSONL event sink and merger.

Each process appends to its own ``events-<pid>.jsonl`` inside the
telemetry directory — no cross-process file sharing, so a worker killed
mid-write can only ever damage the final line of its own file.
:func:`read_events` therefore skips lines that fail to parse (the torn
tail of a killed worker) instead of raising, and the merged stream is
simply the concatenation of every per-pid file sorted by timestamp.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["EventSink", "read_events"]

EVENT_FILE_PREFIX = "events-"
EVENT_FILE_SUFFIX = ".jsonl"


class EventSink:
    """Append-only JSONL writer for one process.

    Every event is written and flushed as a single line so the file is
    valid (bar at most one torn tail line) at every instant.  The sink
    records the pid it was opened in and refuses to write from another
    process — a forked child must open its own sink.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self.path = self.directory / ("%s%d%s" % (EVENT_FILE_PREFIX, self.pid, EVENT_FILE_SUFFIX))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._closed = False

    def emit(self, event_type: str, **fields: object) -> None:
        if self._closed or os.getpid() != self.pid:
            return
        event: Dict[str, object] = {"ts": time.time(), "pid": self.pid, "type": event_type}
        event.update(fields)
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if os.getpid() == self.pid:
                self._fh.close()


def _iter_file(path: Path) -> Iterator[Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn tail of a killed worker
                if isinstance(event, dict):
                    yield event
    except OSError:
        return


def read_events(
    directory: Union[str, Path],
    event_type: Optional[str] = None,
    where: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """All events from every per-pid file, sorted by timestamp.

    Tolerates missing directories, unreadable files, and truncated
    lines; optionally filters to one ``event_type`` and/or to events
    whose fields match every ``where`` entry (the experiment service
    uses ``where={"job": job_id}`` to stream one job's progress).
    """
    directory = Path(directory)
    events: List[Dict[str, object]] = []
    if not directory.is_dir():
        return events
    for path in sorted(directory.glob(EVENT_FILE_PREFIX + "*" + EVENT_FILE_SUFFIX)):
        for event in _iter_file(path):
            if event_type is not None and event.get("type") != event_type:
                continue
            if where is not None and any(event.get(k) != v for k, v in where.items()):
                continue
            events.append(event)
    events.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0)))
    return events
