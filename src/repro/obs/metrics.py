"""Process-safe metrics: counters, gauges, histograms, and a registry.

Each process owns exactly one :class:`MetricsRegistry` (via
:func:`registry`), guarded by a pid check so a forked pool worker gets a
fresh, empty registry instead of inheriting — and later double-counting —
the parent's totals.  Cross-process aggregation is file-based: every
process serialises its registry with :meth:`MetricsRegistry.snapshot`
into its own ``metrics-<pid>.json`` (written atomically by
:mod:`repro.obs.telemetry`), and the parent merges the per-pid snapshots
with :func:`merge_snapshots` after the pool drains.  There is no shared
memory and no lock shared between processes, so a worker killed by
SIGKILL can never corrupt anyone else's metrics — at worst its own last
snapshot is slightly stale, which the crash-merge test pins as exactly
the counts it had already flushed.

Existing plain-int counters on ``ResultCache``/``ArtifactStore``/
``TimingStore``/``RunReport`` are migrated onto the registry through
*collectors*: weakly-referenced callables polled at snapshot time whose
key/value dicts are folded into the counter section under a prefix.
This keeps the per-instance attribute API (tests assign
``cache.quarantined = 2``) while making every instance visible to
telemetry without explicit flushing.
"""

from __future__ import annotations

import inspect
import math
import os
import re
import threading
import weakref
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "registry",
    "reset_registry",
    "to_prometheus",
]

# Upper bounds (seconds) for duration histograms: sub-millisecond cache
# probes through multi-minute matrix runs.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
    600.0,
)


class Counter:
    """A monotonically increasing count owned by one process."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; merge keeps the most recent snapshot's."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    follows the last bound.  Fixed buckets make cross-process merging a
    plain element-wise sum, at the cost of percentile resolution — a
    percentile is reported as the upper edge of the bucket containing
    it (the overflow bucket reports ``max_seen``).
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "max_seen")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.max_seen = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        if value > self.max_seen:
            self.max_seen = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def percentile(self, pct: float) -> float:
        """Estimate the ``pct``-th percentile (0..100) from the buckets."""
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(self.count * pct / 100.0))
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max_seen
        return self.max_seen

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "max": self.max_seen,
        }

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, object]) -> "Histogram":
        hist = cls(name, data.get("bounds", DEFAULT_SECONDS_BUCKETS))  # type: ignore[arg-type]
        counts = list(data.get("counts", []))  # type: ignore[arg-type]
        if len(counts) == len(hist.counts):
            hist.counts = [int(c) for c in counts]
        hist.sum = float(data.get("sum", 0.0))  # type: ignore[arg-type]
        hist.count = int(data.get("count", 0))  # type: ignore[arg-type]
        hist.max_seen = float(data.get("max", 0.0))  # type: ignore[arg-type]
        return hist


CollectorFn = Callable[[], Mapping[str, float]]


class MetricsRegistry:
    """One process's instruments plus pull-collectors for legacy counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Tuple[str, weakref.ref]] = []

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, bounds)
            return inst

    def register_collector(self, prefix: str, fn: CollectorFn) -> None:
        """Poll ``fn()`` at snapshot time, folding its dict into counters.

        ``fn`` is held weakly (``WeakMethod`` for bound methods) so that
        registering a store never extends its lifetime; dead collectors
        are pruned on the next snapshot.
        """
        ref: weakref.ref
        if inspect.ismethod(fn):
            ref = weakref.WeakMethod(fn)
        else:
            ref = weakref.ref(fn)
        with self._lock:
            self._collectors.append((prefix, ref))

    def snapshot(self) -> Dict[str, object]:
        """Serialise everything, including collector-backed counters."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {name: h.to_dict() for name, h in self._histograms.items()}
            live: List[Tuple[str, weakref.ref]] = []
            polled: List[Tuple[str, CollectorFn]] = []
            for prefix, ref in self._collectors:
                fn = ref()
                if fn is not None:
                    live.append((prefix, ref))
                    polled.append((prefix, fn))
            self._collectors = live
        # Poll outside the lock: collectors are arbitrary store methods.
        for prefix, fn in polled:
            try:
                values = fn()
            except Exception:
                continue
            for key, value in values.items():
                if isinstance(value, (int, float)):
                    name = "%s.%s" % (prefix, key)
                    counters[name] = counters.get(name, 0.0) + float(value)
        return {
            "pid": os.getpid(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._collectors.clear()


def merge_snapshots(snapshots: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Merge per-process snapshots: sum counters and histogram buckets,
    last-writer-wins gauges (file order, parent last by convention)."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}
    pids: List[int] = []
    for snap in snapshots:
        pid = snap.get("pid")
        if isinstance(pid, int):
            pids.append(pid)
        for name, value in dict(snap.get("counters", {})).items():  # type: ignore[arg-type]
            counters[name] = counters.get(name, 0.0) + float(value)
        for name, value in dict(snap.get("gauges", {})).items():  # type: ignore[arg-type]
            gauges[name] = float(value)
        for name, data in dict(snap.get("histograms", {})).items():  # type: ignore[arg-type]
            incoming = Histogram.from_dict(name, data)
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = incoming
            elif existing.bounds == incoming.bounds:
                existing.counts = [a + b for a, b in zip(existing.counts, incoming.counts)]
                existing.sum += incoming.sum
                existing.count += incoming.count
                existing.max_seen = max(existing.max_seen, incoming.max_seen)
    return {
        "pids": sorted(set(pids)),
        "counters": counters,
        "gauges": gauges,
        "histograms": {name: h.to_dict() for name, h in histograms.items()},
    }


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> Tuple[str, str]:
    """Split an instrument name into a Prometheus ``(name, labels)`` pair.

    Registry names are dotted (``jobs.queue_depth``); dots and any other
    character outside Prometheus's grammar become underscores.  A name
    may embed a label set (``jobs.active{tenant="x",state="queued"}``):
    the braces pass through verbatim, only the bare name is sanitised.
    """
    labels = ""
    if "{" in name:
        name, _, rest = name.partition("{")
        labels = "{" + rest
    return prefix + _PROM_INVALID.sub("_", name), labels


def _prom_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(snapshot: Mapping[str, object], prefix: str = "repro_") -> str:
    """Render a (merged) snapshot in Prometheus text exposition format.

    Counters and gauges are one sample each; histograms expand into the
    conventional cumulative ``_bucket{le=...}`` series (including the
    ``+Inf`` bucket) plus ``_sum`` and ``_count``.  Output is sorted so
    scrapes of an unchanged registry are byte-identical.
    """
    lines: List[str] = []
    for raw, value in sorted(dict(snapshot.get("counters", {})).items()):  # type: ignore[arg-type]
        name, labels = _prom_name(raw, prefix)
        lines.append("# TYPE %s counter" % name)
        lines.append("%s%s %s" % (name, labels, _prom_number(float(value))))
    for raw, value in sorted(dict(snapshot.get("gauges", {})).items()):  # type: ignore[arg-type]
        name, labels = _prom_name(raw, prefix)
        lines.append("# TYPE %s gauge" % name)
        lines.append("%s%s %s" % (name, labels, _prom_number(float(value))))
    for raw, data in sorted(dict(snapshot.get("histograms", {})).items()):  # type: ignore[arg-type]
        name, labels = _prom_name(raw, prefix)
        hist = Histogram.from_dict(raw, data)
        lines.append("# TYPE %s histogram" % name)
        label_body = labels[1:-1] if labels else ""
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            le = ",".join(filter(None, [label_body, 'le="%s"' % _prom_number(bound)]))
            lines.append("%s_bucket{%s} %d" % (name, le, cumulative))
        le = ",".join(filter(None, [label_body, 'le="+Inf"']))
        lines.append("%s_bucket{%s} %d" % (name, le, hist.count))
        lines.append("%s_sum%s %s" % (name, labels, repr(float(hist.sum))))
        lines.append("%s_count%s %d" % (name, labels, hist.count))
    return "\n".join(lines) + "\n"


_REGISTRY: Optional[MetricsRegistry] = None
_REGISTRY_PID: Optional[int] = None


def registry() -> MetricsRegistry:
    """The calling process's registry; fresh after a ``fork``."""
    global _REGISTRY, _REGISTRY_PID
    pid = os.getpid()
    if _REGISTRY is None or _REGISTRY_PID != pid:
        _REGISTRY = MetricsRegistry()
        _REGISTRY_PID = pid
    return _REGISTRY


def reset_registry() -> None:
    """Drop all instruments (test isolation; also used on worker init)."""
    registry().reset()
