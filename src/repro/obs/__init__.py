"""``repro.obs``: the unified telemetry layer.

Zero-dependency observability for experiment runs, in four pieces:

* **Spans** (:func:`span`) -- nested wall/CPU timing context managers
  around the runner's phases (``cli`` > ``run_cells`` > ``cell`` >
  ``bundle``/``simulate``).  Span events carry ``span_id``/``parent_id``
  so :mod:`repro.obs.report` can rebuild the tree, including across
  process boundaries (a worker's ``cell`` span parents onto the
  dispatching ``run_cells`` span inherited over ``fork``).
* **Metrics** (:mod:`repro.obs.metrics`) -- a per-process registry of
  counters, gauges, and fixed-bucket histograms (with percentile
  estimation).  Existing store counters (``ResultCache``,
  ``ArtifactStore``, ``TimingStore``, ``RunReport``) are migrated onto
  the registry via pull *collectors*, so per-instance semantics and the
  public attribute API are unchanged while every snapshot sees them.
* **Events** (:mod:`repro.obs.events`) -- a JSONL sink, one
  ``events-<pid>.jsonl`` file per process, flushed per line so files
  from killed workers still merge (a truncated final line is skipped,
  never fatal).  Fault-tolerance incidents (retries, pool rebuilds,
  timeouts, serial fallback) and periodic predictor samples land here.
* **Sampling** (:class:`Sampler`) -- periodic in-simulation snapshots
  of predictor internals (TAGE occupancy and useful-bit saturation,
  LLBP pattern-buffer hit rate, LLBP-X depth adaptation) every N
  branches.  The hook wraps the fused ``step`` kernel *only when
  telemetry is enabled with a sampling interval*; with telemetry off the
  kernel is untouched and the hot path pays nothing.

Everything hangs off one process-global :class:`Telemetry` session
(:func:`configure` / :func:`current` / :func:`shutdown`).  Worker
processes receive the telemetry directory explicitly (no ambient env
vars) and re-initialise per-pid sinks on first use, so ``fork`` and
``spawn`` start methods both produce a clean per-process file set.
``python -m repro obs-report DIR`` renders a merged run.
"""

from repro.obs.events import EventSink, compact_events, read_events
from repro.obs.ledger import RunLedger, build_run_record
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    registry,
    to_prometheus,
)
from repro.obs.regress import check_and_update, flagged_records
from repro.obs.report import load_run, render_report, render_trend
from repro.obs.sampling import Sampler, active_sampler
from repro.obs.spans import span
from repro.obs.telemetry import (
    Telemetry,
    configure,
    current,
    emit_event,
    enabled,
    ensure,
    flush,
    merged_metrics,
    shutdown,
    worker_config,
)

__all__ = [
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunLedger",
    "Sampler",
    "Telemetry",
    "active_sampler",
    "build_run_record",
    "check_and_update",
    "compact_events",
    "configure",
    "flagged_records",
    "to_prometheus",
    "configure_logging",
    "current",
    "emit_event",
    "enabled",
    "ensure",
    "flush",
    "get_logger",
    "load_run",
    "merge_snapshots",
    "merged_metrics",
    "read_events",
    "registry",
    "render_report",
    "render_trend",
    "shutdown",
    "span",
    "worker_config",
]
