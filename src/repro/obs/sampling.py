"""Periodic in-simulation sampling of predictor internals.

A predictor that exposes ``telemetry_sample() -> dict`` can have its
fused ``step`` kernel wrapped by :meth:`Sampler.instrument`: every
``interval`` branches the wrapper emits a ``sample`` event (occupancy,
useful-bit saturation, pattern-buffer hit rate, ...) and mirrors the
values into gauges named ``predictor.<name>.<metric>``.

The wrapper only exists when telemetry is enabled *and* a positive
sampling interval was requested (:func:`active_sampler` returns ``None``
otherwise), so the default hot path runs the bare fused kernel — this
is what keeps ``bench_hotpath.py --floor`` honest with telemetry off.
Even when enabled, the per-branch cost is one integer decrement and
compare; the dict-building sample itself runs once per ``interval``
branches.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.obs import telemetry as _telemetry
from repro.obs.metrics import registry

__all__ = ["Sampler", "active_sampler"]

DEFAULT_SAMPLE_INTERVAL = 20000

StepFn = Callable[[int, int, int], int]
SampleFn = Callable[[], Mapping[str, float]]


class Sampler:
    """Wraps fused ``step`` kernels with an every-N-branches sample hook."""

    def __init__(self, interval: int, session: "_telemetry.Telemetry") -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = int(interval)
        self._session = session

    def emit_sample(self, predictor: str, branch: int, values: Mapping[str, float]) -> None:
        clean = {k: float(v) for k, v in values.items()}
        self._session.emit("sample", predictor=predictor, branch=branch, values=clean)
        reg = registry()
        for key, value in clean.items():
            reg.gauge("predictor.%s.%s" % (predictor, key)).set(value)

    def instrument(self, predictor_name: str, step: StepFn, sample_fn: SampleFn) -> StepFn:
        """Return a drop-in ``step`` that samples every ``interval`` branches."""
        interval = self.interval
        emit = self.emit_sample
        state = {"left": interval, "seen": 0}

        def sampled_step(t: int, pc: int, taken: int) -> int:
            state["left"] -= 1
            if not state["left"]:
                state["left"] = interval
                state["seen"] += interval
                try:
                    emit(predictor_name, state["seen"], sample_fn())
                except Exception:
                    pass  # sampling must never kill a simulation
            return step(t, pc, taken)

        return sampled_step


def active_sampler() -> Optional[Sampler]:
    """The sampler for this process, or ``None`` when sampling is off."""
    session = _telemetry.current()
    if session is None or session.sample_interval <= 0:
        return None
    return Sampler(session.sample_interval, session)
