"""The LLBP pattern store (PS) and context directory (CD).

The pattern store is the high-capacity second level holding one pattern
set per context; the context directory is its set-associative tag array.
This model fuses the two: lookups go through ``(set index, context tag)``
keys, so context-tag aliasing (two contexts mapping to the same set and
tag share a pattern set) is modelled faithfully, and the limit-study
``infinite_contexts`` switch simply keys on the full context ID.

Replacement follows the paper: the victim is the resident set with the
fewest high-confidence patterns (LLBP's policy "favors sets with more
high-confidence patterns"), with insertion order breaking ties (FIFO-ish,
standing in for the replacement bits).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.stats import StatGroup
from repro.llbp.pattern import PatternSet


class PatternStore:
    """Set-associative storage of pattern sets, keyed by context ID."""

    def __init__(
        self,
        num_contexts: int,
        assoc: int,
        context_tag_bits: int,
        infinite: bool = False,
    ) -> None:
        if num_contexts < 1:
            raise ValueError(f"num_contexts must be >= 1, got {num_contexts}")
        if assoc < 1:
            raise ValueError(f"assoc must be >= 1, got {assoc}")
        self.infinite = infinite
        self.assoc = assoc
        self.num_sets = max(1, num_contexts // assoc)
        self.context_tag_bits = context_tag_bits
        self.stats = StatGroup("pattern_store")
        # storage-set index -> list of (key, PatternSet) in insertion order
        self._sets: Dict[int, List[Tuple[int, PatternSet]]] = {}
        self._flat: Dict[int, PatternSet] = {}  # infinite mode
        # small reservoir of recently written context IDs; used by the
        # wrong-path model to pick a real-but-arbitrary resident context
        self._recent: List[int] = []
        self._recent_pos = 0

    def _locate(self, context_id: int) -> Tuple[int, int]:
        """(storage set index, context tag) for a context ID."""
        set_index = context_id % self.num_sets
        tag = (context_id // self.num_sets) & ((1 << self.context_tag_bits) - 1)
        return set_index, tag

    def lookup(self, context_id: int) -> Optional[PatternSet]:
        """Directory probe + read; returns the stored set or ``None``."""
        self.stats.add("lookups")
        if self.infinite:
            return self._flat.get(context_id)
        set_index, tag = self._locate(context_id)
        for key, pattern_set in self._sets.get(set_index, ()):
            if key == tag:
                return pattern_set
        return None

    def contains(self, context_id: int) -> bool:
        """Directory-only probe (no data read is counted)."""
        if self.infinite:
            return context_id in self._flat
        set_index, tag = self._locate(context_id)
        return any(key == tag for key, _ in self._sets.get(set_index, ()))

    def insert(self, context_id: int, pattern_set: PatternSet) -> None:
        """Write a (possibly dirty) pattern set back into the store."""
        self.stats.add("writes")
        pattern_set.dirty = False
        if len(self._recent) < 256:
            self._recent.append(context_id)
        else:
            self._recent[self._recent_pos] = context_id
            self._recent_pos = (self._recent_pos + 1) % 256
        if self.infinite:
            self._flat[context_id] = pattern_set
            return
        set_index, tag = self._locate(context_id)
        ways = self._sets.setdefault(set_index, [])
        for i, (key, _existing) in enumerate(ways):
            if key == tag:
                ways[i] = (tag, pattern_set)
                return
        if len(ways) >= self.assoc:
            victim_pos = min(
                range(len(ways)), key=lambda i: (ways[i][1].confident_count(), i)
            )
            ways.pop(victim_pos)
            self.stats.add("evictions")
        ways.append((tag, pattern_set))

    def sample_context(self, seed: int) -> Optional[int]:
        """A pseudo-randomly chosen recently-stored context ID (or None).

        Used by the wrong-path prefetch model: the wrong path executes
        real code, so its bogus prefetches target real stored contexts.
        """
        if not self._recent:
            return None
        return self._recent[seed % len(self._recent)]

    def resident_sets(self) -> int:
        if self.infinite:
            return len(self._flat)
        return sum(len(ways) for ways in self._sets.values())
