"""Configuration for LLBP and LLBP-X.

All of the paper's design parameters live here, including the limit-study
toggles of §III-A (Fig 5): design tweaks on/off, wider pattern tags,
infinite contexts, infinite patterns per set, and no contextualisation.
Capacities follow the original papers (14K contexts x 16 patterns in the
pattern store, 64-entry pattern buffer, 6K-entry CTT) and scale with the
same ``scale`` divisor as the TAGE presets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.tage.config import (
    DEEP_HISTORY_LENGTHS,
    HISTORY_LENGTHS,
    LLBP_HISTORY_LENGTHS,
    SHALLOW_HISTORY_LENGTHS,
)


@dataclass(frozen=True)
class LLBPConfig:
    """Knobs of the original LLBP design (paper §II-C, §VI)."""

    name: str = "llbp"
    # --- context formation -----------------------------------------------------
    context_depth: int = 8  # W: unconditional branches hashed into a context ID
    prefetch_distance: int = 4  # D: most recent UBs skipped (latency-hiding window)
    # --- pattern store ----------------------------------------------------------
    num_contexts: int = 14336  # pattern sets in the LLBP pattern store (14K)
    store_assoc: int = 7  # context directory associativity
    patterns_per_set: int = 16
    num_buckets: int = 4  # pattern-set buckets (design tweak: sorted per bucket)
    context_tag_bits: int = 14
    pattern_tag_bits: int = 13
    pattern_counter_bits: int = 3
    # --- pattern buffer -----------------------------------------------------------
    pattern_buffer_entries: int = 64
    access_latency: int = 6  # cycles from prefetch to PB availability
    # --- design tweaks (paper §II-C.4); disabled together by "+No Design Tweaks" --
    use_bucketing: bool = True
    restrict_histories: bool = True  # keep only 16 of TAGE's 21 history lengths
    suppress_sc: bool = True  # skip the SC when LLBP provides
    # --- limit-study switches (paper §III-A) ----------------------------------------
    infinite_contexts: bool = False
    infinite_patterns: bool = False
    no_contextualization: bool = False  # context ID := branch PC
    zero_latency: bool = False
    # --- capacity scaling (shared with the TAGE presets; DESIGN.md §1) ---------------
    scale: int = 1
    # --- wrong-path modelling (Fig 14a) ------------------------------------------
    model_false_path: bool = False  # issue wrong-path prefetches after mispredictions
    flush_false_path: bool = False  # drop false-path prefetches from the PB on resolve
    # --- analysis instrumentation (Figs 6-9; costs memory, off by default) ----------
    track_useful: bool = False

    def __post_init__(self) -> None:
        if self.context_depth < 0:
            raise ValueError(f"context depth W must be >= 0, got {self.context_depth}")
        if self.prefetch_distance < 0:
            raise ValueError(f"prefetch distance D must be >= 0, got {self.prefetch_distance}")
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.patterns_per_set < 1:
            raise ValueError("need at least one pattern per set")
        if self.use_bucketing and self.patterns_per_set % self.num_buckets:
            raise ValueError(
                f"{self.patterns_per_set} patterns cannot fill {self.num_buckets} buckets evenly"
            )

    @property
    def effective_contexts(self) -> int:
        return max(self.store_assoc, self.num_contexts // self.scale)

    @property
    def effective_latency(self) -> int:
        return 0 if self.zero_latency else self.access_latency

    @property
    def history_lengths(self) -> Tuple[int, ...]:
        """The history lengths LLBP may store patterns for."""
        if self.restrict_histories:
            return LLBP_HISTORY_LENGTHS
        return HISTORY_LENGTHS

    @property
    def bucket_size(self) -> int:
        return self.patterns_per_set // self.num_buckets

    def storage_bits(self) -> int:
        """Approximate second-level storage (pattern store + CD), in bits."""
        pattern_bits = self.pattern_tag_bits + self.pattern_counter_bits + 5  # 5b length field
        per_set = self.patterns_per_set * pattern_bits
        directory = self.effective_contexts * (self.context_tag_bits + 3)
        return self.effective_contexts * per_set + directory

    def scaled(self, scale: int) -> "LLBPConfig":
        return replace(self, scale=scale)


@dataclass(frozen=True)
class LLBPXConfig(LLBPConfig):
    """LLBP-X: dynamic context depth adaptation plus history range selection.

    Defaults follow §VI: shallow W=2, deep W=64, a 6K-entry 6-way CTT with
    3-bit avg-hist-len counters, overflow threshold of 7 confident
    patterns, and H_th = 232.
    """

    name: str = "llbpx"
    shallow_depth: int = 2
    deep_depth: int = 64
    ctt_entries: int = 6144
    ctt_assoc: int = 6
    ctt_tag_bits: int = 6
    avg_hist_len_bits: int = 3
    overflow_threshold: int = 7  # patterns in a set before a context is tracked
    #: H_th: allocation length that bumps avg-hist-len.  The paper's server
    #: traces use 232; the scaled synthetic universe has shorter useful
    #: histories, so the calibrated default is 64 (swept in bench_sec7f,
    #: which includes the paper's 232 and 1444).
    history_threshold: int = 64
    #: increment applied to avg-hist-len per long allocation attempt (the
    #: decrement per short attempt is always 1).  The paper's traces are
    #: long-history-rich so +-1 suffices there; the scaled universe sees a
    #: shorter length mix, so long attempts carry more weight.
    hist_counter_step: int = 4
    use_history_ranges: bool = True  # restrict lengths by depth (§V-C)
    #: Opt-W oracle: mapping shallow-context-id -> use-deep, fixed ahead of
    #: time (profile-then-replay); None means adapt dynamically via the CTT
    oracle_depths: Optional[dict] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shallow_depth >= self.deep_depth:
            raise ValueError("shallow depth must be smaller than deep depth")
        if not 0 < self.overflow_threshold <= self.patterns_per_set:
            raise ValueError("overflow threshold must be within the pattern set size")

    @property
    def effective_ctt_entries(self) -> int:
        return max(self.ctt_assoc, self.ctt_entries // self.scale)

    @property
    def shallow_lengths(self) -> Tuple[int, ...]:
        """History lengths available to shallow (W=2) contexts."""
        if self.use_history_ranges:
            return SHALLOW_HISTORY_LENGTHS
        return self.history_lengths

    @property
    def deep_lengths(self) -> Tuple[int, ...]:
        """History lengths available to deep (W=64) contexts."""
        if self.use_history_ranges:
            return DEEP_HISTORY_LENGTHS
        return self.history_lengths

    def storage_bits(self) -> int:
        ctt_entry_bits = self.ctt_tag_bits + self.avg_hist_len_bits + 1 + 2
        return super().storage_bits() + self.effective_ctt_entries * ctt_entry_bits


def llbp_default(scale: int = 1, **overrides) -> LLBPConfig:
    """The original LLBP as evaluated in the paper (515KB budget)."""
    return replace(LLBPConfig(), scale=scale, **overrides)


def llbp_zero_latency(scale: int = 1, **overrides) -> LLBPConfig:
    """LLBP-0Lat: the 0-cycle-access variant used by Fig 4 and the limit study."""
    return replace(LLBPConfig(name="llbp_0lat", zero_latency=True), scale=scale, **overrides)


def llbpx_default(scale: int = 1, **overrides) -> LLBPXConfig:
    """LLBP-X as specified in §VI."""
    return replace(LLBPXConfig(), scale=scale, **overrides)
