"""The pattern buffer (PB): LLBP's small in-core staging structure.

The PB caches the pattern sets of recently active and prefetched
contexts.  It is the only LLBP structure on the prediction path; the
pattern store is reached exclusively through prefetches (and writebacks).
Entries carry an availability timestamp so that the multi-cycle
store-to-PB transfer latency is modelled: a prediction may only use a
pattern set whose transfer has completed (otherwise the prefetch counts
as *late*, one of Fig 14a's categories).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.common.stats import StatGroup
from repro.llbp.pattern import PatternSet


class PBEntry:
    """A pattern set staged in the pattern buffer."""

    __slots__ = ("pattern_set", "available_at", "used", "late", "from_prefetch", "false_path")

    def __init__(
        self,
        pattern_set: PatternSet,
        available_at: int,
        from_prefetch: bool,
        false_path: bool = False,
    ) -> None:
        self.pattern_set = pattern_set
        self.available_at = available_at
        self.used = False
        self.late = False  # a use was attempted before the transfer finished
        self.from_prefetch = from_prefetch
        self.false_path = false_path


class PatternBuffer:
    """LRU buffer of pattern sets with transfer-latency modelling."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[int, PBEntry]" = OrderedDict()
        self.stats = StatGroup("pattern_buffer")

    def __contains__(self, context_id: int) -> bool:
        return context_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, context_id: int, now: int) -> Tuple[Optional[PatternSet], bool]:
        """Return ``(pattern_set, late)`` for the active context.

        ``pattern_set`` is ``None`` when the context is absent; ``late``
        is true when it is present but its transfer has not completed.
        """
        entry = self._entries.get(context_id)
        if entry is None:
            return None, False
        if entry.available_at > now:
            entry.late = True
            self.stats.add("late_hits")
            return None, True
        entry.used = True
        self._entries.move_to_end(context_id)
        return entry.pattern_set, False

    def peek(self, context_id: int) -> Optional[PBEntry]:
        """Access an entry without touching LRU or usage state."""
        return self._entries.get(context_id)

    def insert(
        self,
        context_id: int,
        pattern_set: PatternSet,
        available_at: int,
        from_prefetch: bool,
        false_path: bool = False,
    ) -> Optional[Tuple[int, PBEntry]]:
        """Stage a pattern set; returns the evicted ``(cid, entry)`` if any.

        The caller is responsible for writing back a dirty eviction to the
        pattern store and for accounting prefetch usefulness.
        """
        if context_id in self._entries:
            entry = self._entries[context_id]
            entry.available_at = min(entry.available_at, available_at)
            self._entries.move_to_end(context_id)
            return None
        evicted: Optional[Tuple[int, PBEntry]] = None
        if len(self._entries) >= self.capacity:
            evicted = self._entries.popitem(last=False)
            self.stats.add("evictions")
        self._entries[context_id] = PBEntry(pattern_set, available_at, from_prefetch, false_path)
        return evicted

    def items(self) -> Iterator[Tuple[int, PBEntry]]:
        return iter(self._entries.items())

    def drain(self) -> Iterator[Tuple[int, PBEntry]]:
        """Remove and yield everything (end-of-simulation writeback sweep)."""
        while self._entries:
            yield self._entries.popitem(last=False)
