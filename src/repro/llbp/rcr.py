"""The rolling context register (RCR): context-ID formation from UB history.

A context ID is a hash of the ``W`` unconditional branches that precede
the ``D`` most recent ones (paper §II-C.2 and Fig 2).  Because the UB
stream is fixed by the trace, every context ID -- current (CCID) and
prefetch-trigger (PCID) -- is precomputable.  :class:`ContextStreams`
computes, per context depth W:

* ``window_hash[k]``: hash of the UB window ending at UB index ``k``
  (size W, or the available prefix while the register warms up), and

* helpers mapping record positions to UB indices, so a predictor can read
  its active context as ``window_hash[ub_prefix[t] - D - 1]`` and its
  prefetch trigger at UB ``k`` as ``window_hash[k]`` (that context becomes
  active after D further UBs -- the latency-hiding window).

Hashing uses a polynomial rolling hash mod 2**64 finalised with
:func:`repro.common.mix64`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.common.bitops import mix64
from repro.tage.streams import TraceTensors
from repro.traces.record import BranchKind

_B = 0x100000001B3  # odd polynomial base (FNV prime), invertible mod 2^64
_M = (1 << 64) - 1


#: branch kinds that participate in context formation.  Calls and returns
#: carry the call-chain identity the paper's contexts are built from;
#: plain direct jumps would only dilute shallow windows, so the rolling
#: register skips them (they still appear in the trace and in history).
CONTEXT_KINDS = (int(BranchKind.CALL), int(BranchKind.RETURN))


def _ub_values(tensors: TraceTensors) -> List[int]:
    """Per-context-UB identity values: site plus target (path identity)."""
    kinds = tensors.kinds
    pcs = tensors.trace.pcs
    targets = tensors.trace.targets
    return [
        mix64(pcs[t] * 3 ^ targets[t])
        for t in range(tensors.num_records)
        if kinds[t] in CONTEXT_KINDS
    ]


def rolling_window_hashes(values: Sequence[int], window: int) -> List[int]:
    """Hash of the last ``window`` values ending at each position.

    Positions earlier than ``window - 1`` hash the available prefix, which
    models a warming-up rolling register deterministically.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    hashes: List[int] = []
    history: List[int] = []
    b_pow_w = pow(_B, window, 1 << 64)
    window_sum = 0
    for k, value in enumerate(values):
        window_sum = (window_sum * _B + value) & _M
        if k >= window:
            window_sum = (window_sum - history[k - window] * b_pow_w) & _M
        history.append(value)
        hashes.append(mix64(window_sum))
    return hashes


class ContextStreams:
    """Precomputed context-ID streams for one trace and several depths W."""

    def __init__(self, tensors: TraceTensors) -> None:
        self.tensors = tensors
        is_ub = np.isin(tensors.kinds, CONTEXT_KINDS).astype(np.int64)
        #: number of context-forming UBs *strictly before* each record
        self.ub_prefix: List[int] = (np.cumsum(is_ub) - is_ub).tolist()
        self._values = _ub_values(tensors)
        self.num_ubs = len(self._values)
        self._hashes: Dict[int, List[int]] = {}

    def window_hashes(self, depth: int) -> List[int]:
        """Rolling hashes for context depth ``depth`` (cached)."""
        if depth not in self._hashes:
            self._hashes[depth] = rolling_window_hashes(self._values, depth)
        return self._hashes[depth]

    def context_of_record(self, t: int, depth: int, distance: int) -> int:
        """Active context ID for the branch at record ``t`` (-1 while cold).

        The context is formed from the ``depth`` UBs preceding the
        ``distance`` most recent ones, per §II-C.2.
        """
        end = self.ub_prefix[t] - distance - 1
        if end < 0:
            return -1
        return self.window_hashes(depth)[end]
