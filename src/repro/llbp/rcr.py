"""The rolling context register (RCR): context-ID formation from UB history.

A context ID is a hash of the ``W`` unconditional branches that precede
the ``D`` most recent ones (paper §II-C.2 and Fig 2).  Because the UB
stream is fixed by the trace, every context ID -- current (CCID) and
prefetch-trigger (PCID) -- is precomputable.  :class:`ContextStreams`
computes, per context depth W:

* ``window_hash[k]``: hash of the UB window ending at UB index ``k``
  (size W, or the available prefix while the register warms up), and

* helpers mapping record positions to UB indices, so a predictor can read
  its active context as ``window_hash[ub_prefix[t] - D - 1]`` and its
  prefetch trigger at UB ``k`` as ``window_hash[k]`` (that context becomes
  active after D further UBs -- the latency-hiding window).

Hashing uses a polynomial rolling hash mod 2**64 finalised with
:func:`repro.common.mix64`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.bitops import mix64
from repro.tage.streams import TraceTensors
from repro.traces.record import BranchKind

_B = 0x100000001B3  # odd polynomial base (FNV prime), invertible mod 2^64
_M = (1 << 64) - 1


#: branch kinds that participate in context formation.  Calls and returns
#: carry the call-chain identity the paper's contexts are built from;
#: plain direct jumps would only dilute shallow windows, so the rolling
#: register skips them (they still appear in the trace and in history).
CONTEXT_KINDS = (int(BranchKind.CALL), int(BranchKind.RETURN))


def _scalar_list(values: Sequence[int]) -> List[int]:
    """Plain-Python-int list form of a possibly array-backed sequence."""
    if isinstance(values, list):
        return values
    return np.asarray(values).tolist()


def _ub_values(tensors: TraceTensors) -> List[int]:
    """Per-context-UB identity values: site plus target (path identity)."""
    kinds = tensors.kinds
    pcs, targets = tensors.trace.aslists("pcs", "targets")
    return [
        mix64(pcs[t] * 3 ^ targets[t])
        for t in range(tensors.num_records)
        if kinds[t] in CONTEXT_KINDS
    ]


def rolling_window_hashes(values: Sequence[int], window: int) -> List[int]:
    """Hash of the last ``window`` values ending at each position.

    Positions earlier than ``window - 1`` hash the available prefix, which
    models a warming-up rolling register deterministically.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    hashes: List[int] = []
    history: List[int] = []
    b_pow_w = pow(_B, window, 1 << 64)
    window_sum = 0
    for k, value in enumerate(values):
        window_sum = (window_sum * _B + value) & _M
        if k >= window:
            window_sum = (window_sum - history[k - window] * b_pow_w) & _M
        history.append(value)
        hashes.append(mix64(window_sum))
    return hashes


class ContextStreams:
    """Precomputed context-ID streams for one trace and several depths W.

    ``ub_prefix`` and ``values`` may be supplied preloaded (the artifact
    store persists them as raw arrays), skipping the per-record Python
    scan.  ``hash_cache`` optionally attaches a persistent read-through /
    write-back store for the per-depth window hashes (duck-typed:
    ``load_context_hashes(depth)`` / ``store_context_hashes(depth,
    hashes)`` -- see :class:`repro.core.artifacts.BundleArtifacts`).
    """

    def __init__(
        self,
        tensors: TraceTensors,
        ub_prefix: Optional[Sequence[int]] = None,
        values: Optional[Sequence[int]] = None,
        hash_cache: Optional[object] = None,
    ) -> None:
        self.tensors = tensors
        self.hash_cache = hash_cache
        if ub_prefix is not None and values is not None:
            #: number of context-forming UBs *strictly before* each record
            self.ub_prefix: List[int] = _scalar_list(ub_prefix)
            self._values = _scalar_list(values)
        else:
            is_ub = np.isin(tensors.kinds, CONTEXT_KINDS).astype(np.int64)
            self.ub_prefix = (np.cumsum(is_ub) - is_ub).tolist()
            self._values = _ub_values(tensors)
        self.num_ubs = len(self._values)
        self._hashes: Dict[int, List[int]] = {}

    def window_hashes(self, depth: int) -> List[int]:
        """Rolling hashes for context depth ``depth`` (cached)."""
        if depth not in self._hashes:
            hashes = None
            if self.hash_cache is not None:
                hashes = self.hash_cache.load_context_hashes(depth)
            if hashes is None:
                hashes = rolling_window_hashes(self._values, depth)
                if self.hash_cache is not None:
                    self.hash_cache.store_context_hashes(depth, hashes)
            self._hashes[depth] = hashes
        return self._hashes[depth]

    def context_of_record(self, t: int, depth: int, distance: int) -> int:
        """Active context ID for the branch at record ``t`` (-1 while cold).

        The context is formed from the ``depth`` UBs preceding the
        ``distance`` most recent ones, per §II-C.2.
        """
        end = self.ub_prefix[t] - distance - 1
        if end < 0:
            return -1
        return self.window_hashes(depth)[end]
