"""The Context Tracking Table (CTT) -- LLBP-X's new structure (paper §V-B).

The CTT monitors contended contexts and decides, per *shallow* context,
whether to use the shallow (W=2) or deep (W=64) context depth.  Each
entry holds a tag, a saturating ``avg-hist-len`` counter, a depth bit,
and replacement state.  A context enters the CTT when its pattern set
overflows with confident patterns; once tracked, allocations with history
length above ``H_th`` push the counter up, shorter ones push it down, and
the counter's saturation points toggle the depth bit with hysteresis.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.common.stats import StatGroup


class CTTEntry:
    """Tracking state for one shallow context."""

    __slots__ = ("avg_hist_len", "deep")

    def __init__(self) -> None:
        self.avg_hist_len = 0
        self.deep = False


class ContextTrackingTable:
    """Set-associative, LRU-replaced table of tracked contexts."""

    def __init__(
        self,
        entries: int,
        assoc: int,
        tag_bits: int,
        avg_hist_len_bits: int,
    ) -> None:
        if entries < assoc:
            raise ValueError(f"need at least {assoc} entries, got {entries}")
        self.assoc = assoc
        self.num_sets = max(1, entries // assoc)
        self.tag_bits = tag_bits
        self.counter_max = (1 << avg_hist_len_bits) - 1
        self.stats = StatGroup("ctt")
        # one LRU-ordered dict of tag -> entry per set
        self._sets: Dict[int, "OrderedDict[int, CTTEntry]"] = {}

    def _locate(self, context_id: int) -> tuple:
        set_index = context_id % self.num_sets
        tag = (context_id // self.num_sets) & ((1 << self.tag_bits) - 1)
        return set_index, tag

    def lookup(self, context_id: int) -> Optional[CTTEntry]:
        """Probe by shallow context ID; refreshes LRU on hit."""
        set_index, tag = self._locate(context_id)
        ways = self._sets.get(set_index)
        if ways is None:
            return None
        entry = ways.get(tag)
        if entry is not None:
            ways.move_to_end(tag)
        return entry

    def is_deep(self, context_id: int) -> bool:
        """The depth-selection answer the RCR multiplexer consumes."""
        entry = self.lookup(context_id)
        return entry.deep if entry is not None else False

    def track(self, context_id: int) -> CTTEntry:
        """Begin (or continue) tracking a contended context."""
        set_index, tag = self._locate(context_id)
        ways = self._sets.setdefault(set_index, OrderedDict())
        entry = ways.get(tag)
        if entry is not None:
            ways.move_to_end(tag)
            return entry
        if len(ways) >= self.assoc:
            ways.popitem(last=False)
            self.stats.add("evictions")
        entry = CTTEntry()
        ways[tag] = entry
        self.stats.add("insertions")
        return entry

    def observe_allocation(
        self, context_id: int, history_length: int, threshold: int, step: int = 1
    ) -> Optional[bool]:
        """Feed one pattern allocation to a tracked context.

        Returns the new depth bit when a transition happened, else None.
        Long allocations (``>= threshold``) raise ``avg-hist-len`` by
        ``step``; shorter ones lower it by one.  Saturating high switches
        to deep; draining to zero reverts to shallow (the hysteresis of
        §V-B.1).
        """
        entry = self.lookup(context_id)
        if entry is None:
            return None
        if history_length >= threshold:
            entry.avg_hist_len = min(self.counter_max, entry.avg_hist_len + step)
        elif entry.avg_hist_len > 0:
            entry.avg_hist_len -= 1
        if not entry.deep and entry.avg_hist_len >= self.counter_max:
            entry.deep = True
            self.stats.add("to_deep")
            return True
        if entry.deep and entry.avg_hist_len == 0:
            entry.deep = False
            self.stats.add("to_shallow")
            return False
        return None

    def tracked_count(self) -> int:
        return sum(len(ways) for ways in self._sets.values())

    def deep_count(self) -> int:
        return sum(1 for ways in self._sets.values() for e in ways.values() if e.deep)
