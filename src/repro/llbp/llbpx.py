"""LLBP-X: dynamic context depth adaptation + history range selection (§V).

LLBP-X keeps the entire LLBP machinery and changes three things:

1. **Dual context IDs** -- the rolling context register produces both a
   shallow (W=2) and a deep (W=64) context ID per branch; a Context
   Tracking Table (CTT), indexed by the shallow ID, selects which one is
   used for the context directory, the pattern buffer, and prefetching.
2. **Dynamic depth adaptation** -- when a pattern set fills with
   confident patterns (the PB overflow signal), its shallow context
   enters the CTT; the ``avg-hist-len`` counter then migrates the context
   to deep when allocations keep exceeding ``H_th``, with hysteresis in
   the reverse direction.
3. **History range selection** -- shallow contexts may only store the 16
   shortest TAGE history lengths (6..232), deep contexts the 16 longest
   (37..3000); out-of-range allocations are dropped but still feed the
   ``avg-hist-len`` counter, so a shallow context that keeps wanting long
   patterns eventually transitions.

The ``oracle_depths`` configuration implements the paper's *LLBP-X Opt-W*
upper bound: per-context depths fixed ahead of time (profile-then-replay)
so no retraining is lost on transitions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.llbp.config import LLBPXConfig
from repro.llbp.ctt import ContextTrackingTable
from repro.llbp.llbp import LLBP
from repro.llbp.pattern import Pattern, PatternSet, make_bucket_ranges
from repro.llbp.rcr import ContextStreams
from repro.tage.config import HISTORY_LENGTHS, TageConfig, history_length_index
from repro.tage.streams import TraceTensors

#: bit marking a context ID as produced with the deep depth; keeps the two
#: ID spaces disjoint so a context's depth is recoverable from its ID
DEEP_BIT = 1 << 62
_ID_MASK = DEEP_BIT - 1


class LLBPX(LLBP):
    """LLBP with dynamic context depth adaptation (the paper's proposal)."""

    config: LLBPXConfig

    def __init__(
        self,
        config: LLBPXConfig,
        tage_config: TageConfig,
        tensors: TraceTensors,
        context_streams: Optional[ContextStreams] = None,
        tsl: Optional["TageSCL"] = None,
    ) -> None:
        super().__init__(config, tage_config, tensors, context_streams, tsl=tsl)
        self._shallow_window = self.contexts.window_hashes(config.shallow_depth)
        self._deep_window = self.contexts.window_hashes(config.deep_depth)
        self.ctt = ContextTrackingTable(
            entries=config.effective_ctt_entries,
            assoc=config.ctt_assoc,
            tag_bits=config.ctt_tag_bits,
            avg_hist_len_bits=config.avg_hist_len_bits,
        )
        self._shallow_indices = sorted(history_length_index(l) for l in config.shallow_lengths)
        self._deep_indices = sorted(history_length_index(l) for l in config.deep_lengths)
        bucket_size = config.bucket_size
        if config.use_bucketing and self._set_capacity > 0:
            self._shallow_buckets: Optional[List[Tuple[int, int, int]]] = make_bucket_ranges(
                self._shallow_indices, config.num_buckets, bucket_size
            )
            self._deep_buckets: Optional[List[Tuple[int, int, int]]] = make_bucket_ranges(
                self._deep_indices, config.num_buckets, bucket_size
            )
        else:
            self._shallow_buckets = None
            self._deep_buckets = None
        #: every shallow context that ever transitioned to deep (Opt-W profiling)
        self.deep_history: Set[int] = set()
        self._oracle: Optional[Dict[int, bool]] = config.oracle_depths

    # -- depth selection -----------------------------------------------------------

    def _shallow_context_of(self, t: int) -> int:
        end = self._ub_prefix[t] - self.config.prefetch_distance - 1
        if end < 0:
            return -1
        return self._shallow_window[end] & _ID_MASK

    def _is_deep(self, shallow_id: int) -> bool:
        if self._oracle is not None:
            return self._oracle.get(shallow_id, False)
        return self.ctt.is_deep(shallow_id)

    def _context_of(self, t: int, pc: int) -> int:
        end = self._ub_prefix[t] - self.config.prefetch_distance - 1
        if end < 0:
            return -1
        shallow_id = self._shallow_window[end] & _ID_MASK
        if self._is_deep(shallow_id):
            return (self._deep_window[end] & _ID_MASK) | DEEP_BIT
        return shallow_id

    def _prefetch_id(self, ub_index: int) -> int:
        shallow_id = self._shallow_window[ub_index] & _ID_MASK
        if self._is_deep(shallow_id):
            return (self._deep_window[ub_index] & _ID_MASK) | DEEP_BIT
        return shallow_id

    # -- depth-dependent pattern-set layout ---------------------------------------------

    def _bucket_ranges_for(self, context_id: int) -> Optional[List[Tuple[int, int, int]]]:
        if context_id & DEEP_BIT:
            return self._deep_buckets
        return self._shallow_buckets

    def _active_indices_for(self, context_id: int) -> List[int]:
        if context_id & DEEP_BIT:
            return self._deep_indices
        return self._shallow_indices

    # -- CTT feedback ---------------------------------------------------------------------

    def _choose_allocation_index(self, context_id: int, provider_index: int) -> Tuple[int, int]:
        """LLBP-X attempts TAGE's natural next length and *drops* attempts
        outside the context's active history range (paper §V-C)."""
        attempted = provider_index + 1
        if attempted >= len(HISTORY_LENGTHS):
            return -1, -1
        active = self._active_indices_for(context_id)
        if active[0] <= attempted <= active[-1]:
            return attempted, attempted
        return -1, attempted

    def _on_allocation(
        self,
        t: int,
        context_id: int,
        pattern_set: Optional[PatternSet],
        length_index: int,
        allocated: Optional[Pattern],
    ) -> None:
        if self._oracle is not None:
            return  # Opt-W: depths fixed, no adaptation
        shallow_id = self._shallow_context_of(t)
        if shallow_id == -1:
            return
        # Overflow signal (heuristic 1, T_max): a pattern set filling up
        # makes its shallow context a tracking candidate.
        if pattern_set is not None and len(pattern_set) >= self.config.overflow_threshold:
            self.ctt.track(shallow_id)
            self.stats.add("ctt_overflow_signals")
        # Heuristic 2: history length of allocation attempts (including
        # dropped ones) drives the avg-hist-len counter.
        transition = self.ctt.observe_allocation(
            shallow_id,
            HISTORY_LENGTHS[length_index],
            self.config.history_threshold,
            self.config.hist_counter_step,
        )
        if transition is True:
            self.deep_history.add(shallow_id)
            self.stats.add("depth_to_deep")
        elif transition is False:
            self.stats.add("depth_to_shallow")

    # -- reporting -------------------------------------------------------------------------

    def collect_extra(self) -> Dict[str, float]:
        extra = super().collect_extra()
        extra["ctt_tracked"] = float(self.ctt.tracked_count())
        extra["ctt_deep"] = float(self.ctt.deep_count())
        extra["deep_contexts_seen"] = float(len(self.deep_history))
        return extra

    def telemetry_sample(self) -> Dict[str, float]:
        sample = super().telemetry_sample()
        sample["ctt.tracked"] = float(self.ctt.tracked_count())
        sample["ctt.deep"] = float(self.ctt.deep_count())
        sample["ctt.deep_seen"] = float(len(self.deep_history))
        return sample
