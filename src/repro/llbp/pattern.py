"""Pattern sets: LLBP's unit of metadata storage and prefetch.

A pattern set holds up to 16 patterns for one context.  Each pattern is
``(length_index, tag, counter)`` where ``length_index`` points into the
canonical 21-length TAGE series.  With the design tweaks enabled (paper
§II-C.4) the 16 patterns are organised as 4 buckets of 4, each bucket
covering a contiguous range of the *active* history lengths, which limits
the sorting hardware; without tweaks the set is fully associative.

Lookup returns the longest matching pattern, exactly TAGE's partial
pattern matching; replacement evicts the least-confident pattern in the
relevant bucket (LLBP's allocation policy).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class Pattern:
    """One stored (length, tag, counter) pattern."""

    __slots__ = ("length_index", "tag", "ctr", "useful")

    def __init__(self, length_index: int, tag: int, taken: bool) -> None:
        self.length_index = length_index
        self.tag = tag
        self.ctr = 0 if taken else -1  # weakest state of the observed direction
        self.useful = 0  # analysis-mode: correct overrides of the baseline

    def update(self, taken: bool, ctr_max: int, ctr_min: int) -> None:
        if taken:
            if self.ctr < ctr_max:
                self.ctr += 1
        elif self.ctr > ctr_min:
            self.ctr -= 1

    @property
    def pred(self) -> bool:
        return self.ctr >= 0

    def confidence(self) -> int:
        return self.ctr if self.ctr >= 0 else -self.ctr - 1

    def is_confident(self, ctr_max: int) -> bool:
        """Within one step of saturation -- LLBP's "high confidence"."""
        return self.ctr >= ctr_max - 1 or self.ctr <= -ctr_max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern(len_idx={self.length_index}, tag={self.tag:#x}, ctr={self.ctr})"


class PatternSet:
    """A bounded (or unbounded) collection of patterns for one context."""

    __slots__ = (
        "capacity", "bucket_ranges", "patterns", "dirty", "ctr_max", "ctr_min",
    )

    def __init__(
        self,
        capacity: int,
        counter_bits: int = 3,
        bucket_ranges: Optional[List[Tuple[int, int, int]]] = None,
    ) -> None:
        """``capacity`` <= 0 means unlimited (limit-study +Inf Patterns).

        ``bucket_ranges`` is a list of ``(lo_idx, hi_idx, slots)`` triples
        partitioning the active length indices; ``None`` disables
        bucketing (fully associative set).
        """
        self.capacity = capacity
        self.bucket_ranges = bucket_ranges
        self.patterns: List[Pattern] = []
        self.dirty = False
        self.ctr_max = (1 << (counter_bits - 1)) - 1
        self.ctr_min = -(1 << (counter_bits - 1))

    # -- lookup ---------------------------------------------------------------

    def lookup(self, t: int, tag_streams: Sequence, active_indices: Sequence[int]) -> Optional[Pattern]:
        """Longest pattern whose tag matches the branch at record ``t``.

        ``tag_streams[length_index][t]`` gives the live tag for each
        canonical length; ``active_indices`` is unused for matching (the
        stored pattern knows its length) but kept for signature clarity.
        """
        best: Optional[Pattern] = None
        for pattern in self.patterns:
            if tag_streams[pattern.length_index][t] == pattern.tag:
                if best is None or pattern.length_index > best.length_index:
                    best = pattern
        return best

    def find(self, length_index: int, tag: int) -> Optional[Pattern]:
        for pattern in self.patterns:
            if pattern.length_index == length_index and pattern.tag == tag:
                return pattern
        return None

    # -- allocation ------------------------------------------------------------

    def _bucket_of(self, length_index: int) -> Optional[Tuple[int, int, int]]:
        assert self.bucket_ranges is not None
        for bucket in self.bucket_ranges:
            if bucket[0] <= length_index <= bucket[1]:
                return bucket
        return None

    def allocate(self, length_index: int, tag: int, taken: bool) -> Optional[Pattern]:
        """Insert a new pattern, evicting the least-confident on conflict.

        Returns the new pattern, or ``None`` when the length is outside
        every bucket range (LLBP-X drops such allocations, §V-C).
        """
        existing = self.find(length_index, tag)
        if existing is not None:
            existing.update(taken, self.ctr_max, self.ctr_min)
            self.dirty = True
            return existing

        pattern = Pattern(length_index, tag, taken)
        self.dirty = True

        if self.capacity <= 0:  # unlimited
            self.patterns.append(pattern)
            return pattern

        if self.bucket_ranges is not None:
            bucket = self._bucket_of(length_index)
            if bucket is None:
                return None
            lo, hi, slots = bucket
            residents = [p for p in self.patterns if lo <= p.length_index <= hi]
            if len(residents) < slots:
                self.patterns.append(pattern)
                return pattern
            victim = min(residents, key=lambda p: p.confidence())
            self.patterns.remove(victim)
            self.patterns.append(pattern)
            return pattern

        if len(self.patterns) < self.capacity:
            self.patterns.append(pattern)
            return pattern
        victim = min(self.patterns, key=lambda p: p.confidence())
        self.patterns.remove(victim)
        self.patterns.append(pattern)
        return pattern

    # -- bookkeeping ------------------------------------------------------------

    def confident_count(self) -> int:
        """Patterns near counter saturation (drives the CTT overflow signal)."""
        ctr_max = self.ctr_max
        return sum(1 for p in self.patterns if p.is_confident(ctr_max))

    def __len__(self) -> int:
        return len(self.patterns)


def make_bucket_ranges(
    active_indices: Sequence[int], num_buckets: int, bucket_size: int
) -> List[Tuple[int, int, int]]:
    """Partition the active canonical length indices into equal buckets.

    Active histories are split evenly between buckets (paper §V-C), each
    covering a contiguous range ``[lo_idx, hi_idx]`` with ``bucket_size``
    slots.
    """
    if not active_indices:
        raise ValueError("need at least one active history length")
    ordered = sorted(active_indices)
    per_bucket = -(-len(ordered) // num_buckets)
    starts: List[int] = []
    for b in range(num_buckets):
        chunk = ordered[b * per_bucket : (b + 1) * per_bucket]
        if not chunk:
            break
        starts.append(chunk[0])
    # buckets tile the whole index space contiguously: bucket b covers
    # [its first active index .. next bucket's first active index - 1],
    # with the outermost buckets widened to absorb every canonical index
    ranges: List[Tuple[int, int, int]] = []
    for b, start in enumerate(starts):
        lo = 0 if b == 0 else start
        hi = (starts[b + 1] - 1) if b + 1 < len(starts) else 10_000
        ranges.append((lo, hi, bucket_size))
    return ranges


class UsefulTracker:
    """Analysis-mode accounting of *useful* patterns per context (Figs 6-9).

    A pattern occurrence is useful when LLBP's prediction is correct while
    the baseline TSL would have mispredicted.  Keys are ``(context_id,
    length_index, tag)``.
    """

    def __init__(self) -> None:
        self.useful: Dict[Tuple[int, int, int], int] = {}

    def record(self, context_id: int, pattern: Pattern) -> None:
        key = (context_id, pattern.length_index, pattern.tag)
        self.useful[key] = self.useful.get(key, 0) + 1

    def per_context_counts(self) -> Dict[int, int]:
        """Number of distinct useful patterns per context."""
        counts: Dict[int, int] = {}
        for (context_id, _li, _tag) in self.useful:
            counts[context_id] = counts.get(context_id, 0) + 1
        return counts

    def per_context_lengths(self, lengths: Sequence[int]) -> Dict[int, float]:
        """Average history length of useful patterns per context."""
        sums: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for (context_id, length_index, _tag) in self.useful:
            sums[context_id] = sums.get(context_id, 0) + lengths[length_index]
            counts[context_id] = counts.get(context_id, 0) + 1
        return {cid: sums[cid] / counts[cid] for cid in sums}

    def duplication_by_length(self, lengths: Sequence[int]) -> Dict[int, float]:
        """Per history length: duplicate fraction of useful patterns (Fig 8).

        Duplication counts (length, tag) pairs that appear in more than
        one context; the metric is ``1 - unique / total`` as in the paper.
        """
        total: Dict[int, int] = {}
        unique: Dict[int, set] = {}
        for (_cid, length_index, tag) in self.useful:
            length = lengths[length_index]
            total[length] = total.get(length, 0) + 1
            unique.setdefault(length, set()).add((length_index, tag))
        return {
            length: 1.0 - len(unique[length]) / total[length]
            for length in total
        }

    def useful_by_length(self, lengths: Sequence[int]) -> Dict[int, int]:
        """Total useful predictions per history length (Fig 9)."""
        out: Dict[int, int] = {}
        for key, count in self.useful.items():
            length = lengths[key[1]]
            out[length] = out.get(length, 0) + count
        return out
