"""LLBP and LLBP-X: the hierarchical last-level branch predictor designs."""

from repro.llbp.config import (
    LLBPConfig,
    LLBPXConfig,
    llbp_default,
    llbp_zero_latency,
    llbpx_default,
)
from repro.llbp.ctt import ContextTrackingTable, CTTEntry
from repro.llbp.llbp import LLBP, LLBPPrediction
from repro.llbp.llbpx import DEEP_BIT, LLBPX
from repro.llbp.pattern import Pattern, PatternSet, UsefulTracker, make_bucket_ranges
from repro.llbp.pattern_buffer import PatternBuffer, PBEntry
from repro.llbp.pattern_store import PatternStore
from repro.llbp.rcr import ContextStreams, rolling_window_hashes

__all__ = [
    "CTTEntry",
    "ContextStreams",
    "ContextTrackingTable",
    "DEEP_BIT",
    "LLBP",
    "LLBPConfig",
    "LLBPPrediction",
    "LLBPX",
    "LLBPXConfig",
    "PBEntry",
    "Pattern",
    "PatternBuffer",
    "PatternSet",
    "PatternStore",
    "UsefulTracker",
    "llbp_default",
    "llbp_zero_latency",
    "llbpx_default",
    "make_bucket_ranges",
    "rolling_window_hashes",
]
