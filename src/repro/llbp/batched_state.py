"""Per-lane LLBP tail kernel for the config-batched backend.

:func:`build_llbp_tail` is the LLBP-family counterpart of
:meth:`repro.tage.batched_state.SharedBase.build_tsl_tail`: it rebuilds
:meth:`repro.llbp.llbp.LLBP._build_step` with the TAGE-core lookup+train
and the loop predictor read/train replaced by decoding the shared base's
recorded word for the branch (freshly recorded or adopted from a
persisted stream -- the tail cannot tell the difference).  Everything
downstream of the base --
context lookup, pattern buffer / store, arbitration, statistical
corrector (with suppression), allocation, false-path modeling, stats --
is per-lane state and runs verbatim, in the reference kernel's order.

Virtual hooks (``_context_of``, ``_choose_allocation_index``,
``_on_allocation``) are captured as bound methods exactly as in the
reference kernel, so LLBP-X lanes (per-lane CTT feeding ``_context_of``)
use this same tail unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.tage.batched_state import (
    BASE_BIM_PRED,
    BASE_CONF_SHIFT,
    BASE_LOOP_VALID,
    BASE_PROVIDER_MASK,
    BASE_PROVIDER_SHIFT,
    BASE_TSL_PRED,
    SharedBase,
)
from repro.tage.config import HISTORY_LENGTHS

if TYPE_CHECKING:
    from repro.llbp.llbp import LLBP


def build_llbp_tail(llbp: "LLBP", shared: SharedBase) -> Callable[[int, int, bool], bool]:
    """Build the lane tail ``step(t, pc, taken) -> mispredicted`` for LLBP/LLBP-X.

    The caller must have built ``llbp`` with the shared TSL injected
    (``LLBP(..., tsl=TageSCL(config, tensors, core=shared.core,
    loop=shared.loop))``) and must install the returned tail as the
    predictor's ``step`` -- the default kernel would advance the shared
    core a second time.
    """
    # ndarray.item returns a plain Python int -- numpy scalars must not
    # leak into pattern/context hashing, and plain-int bit ops are faster
    packed_word = shared.packed_stream().item
    lengths = shared.config.history_lengths

    config = llbp.config
    no_ctx = config.no_contextualization
    zero_latency = config.zero_latency
    suppress_sc = config.suppress_sc
    model_false_path = config.model_false_path
    flush_false_path = config.flush_false_path

    tsl = llbp.tsl
    sc_fused = tsl.sc.fused_step if tsl.sc is not None else None

    context_of = llbp._context_of  # virtual: LLBP-X overrides
    direct_get = llbp._direct.get
    pb_get = llbp.pattern_buffer.get
    fetch = llbp._fetch_into_pb
    instr = llbp._instr
    tag_streams = llbp.tag_streams
    active_indices = llbp._active_indices
    hist_lengths = HISTORY_LENGTHS
    tracker = llbp.tracker
    allocate_for = llbp._allocate_scalar
    on_false_path = llbp.on_false_path
    flush = llbp._flush_false_path

    stats = llbp.stats
    predictions_counter = stats.counter("predictions")
    hits_counter = stats.counter("llbp_hits")
    provides_counter = stats.counter("llbp_provides")
    stats_add = stats.add

    def tail(t: int, pc: int, taken: bool) -> bool:
        # -- decode the shared base's recorded outputs for this branch
        word = packed_word(t)
        tsl_pred = (word & BASE_TSL_PRED) != 0
        loop_valid = (word & BASE_LOOP_VALID) != 0
        bim_pred = (word & BASE_BIM_PRED) != 0
        tage_conf = word >> BASE_CONF_SHIFT
        provider_table = ((word >> BASE_PROVIDER_SHIFT) & BASE_PROVIDER_MASK) - 1
        provider_length = lengths[provider_table] if provider_table >= 0 else 0

        # -- context + pattern lookup
        pattern = None
        pattern_set = None
        if no_ctx:
            cid = pc
            pattern_set = direct_get(cid)
        else:
            cid = context_of(t, pc)
            if cid != -1:
                now = instr[t]
                pattern_set, late = pb_get(cid, now)
                if pattern_set is None and not late and zero_latency:
                    pattern_set = fetch(cid, now, False)
        if pattern_set is not None:
            pattern = pattern_set.lookup(t, tag_streams, active_indices)

        # -- arbitration: longest history wins; loop beats LLBP
        llbp_provider = False
        pred = tsl_pred
        pattern_pred = False
        if pattern is not None:
            hits_counter.value += 1
            pattern_pred = pattern.ctr >= 0
            if hist_lengths[pattern.length_index] >= provider_length and not loop_valid:
                llbp_provider = True
                pred = pattern_pred
                provides_counter.value += 1

        # -- statistical corrector (fused evaluate+train); suppression
        # uses the pattern's pre-update counter, so compute it first
        if sc_fused is not None:
            if llbp_provider:
                ctr = pattern.ctr
                conf = ctr if ctr >= 0 else -ctr - 1
                ctr_max = pattern_set.ctr_max
                suppress = suppress_sc and (ctr >= ctr_max - 1 or ctr <= -ctr_max)
            else:
                conf = tage_conf
                suppress = False
            sc_pred = sc_fused(t, pc, pred, conf, taken)
            final = pred if suppress else sc_pred
        else:
            final = pred

        # -- update (TAGE + loop already trained by the shared base)
        predictions_counter.value += 1
        mispredicted = final != taken
        if mispredicted:
            stats_add("mispredictions")
        if llbp_provider:
            if pattern_pred == taken and tsl_pred != taken:
                stats_add("llbp_useful")
                if tracker is not None:
                    tracker.record(cid, pattern)
            pattern.update(taken, pattern_set.ctr_max, pattern_set.ctr_min)
            pattern_set.dirty = True
        if mispredicted:
            if cid != -1:
                allocate_for(
                    t, taken, cid, llbp_provider, pattern, provider_table, provider_length
                )
            if model_false_path:
                on_false_path(t)
                if flush_false_path:
                    flush()
        fast = pattern_pred if llbp_provider else bim_pred
        if final != fast:
            stats_add("fast_path_overrides")
        return mispredicted

    return tail
