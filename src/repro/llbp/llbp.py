"""LLBP: the Last-Level Branch Predictor (paper §II-C), wrapping a TSL.

The predictor composes four hardware structures -- rolling context
register (precomputed as :class:`~repro.llbp.rcr.ContextStreams`),
context directory + pattern store (:class:`PatternStore`), and pattern
buffer (:class:`PatternBuffer`) -- around an unmodified first-level
TAGE-SC-L:

* **Prefetch** (``on_unconditional``): each executed UB hashes the most
  recent W UBs into a prefetch context ID; if the context directory has a
  pattern set for it, the set is transferred into the PB, becoming usable
  ``access_latency`` cycles later.  The D-UB skip in context formation is
  what gives the transfer time to complete.
* **Predict**: the active context's pattern set (if staged and arrived)
  is matched with TAGE's partial pattern matching; LLBP overrides the
  baseline only when its matching pattern's history is at least as long
  as TAGE's provider.  With the design tweaks enabled, the SC is
  suppressed whenever LLBP provides.
* **Update/allocate**: the providing pattern trains; a misprediction
  allocates a pattern with the next-longer active history length into the
  current context's set, evicting the least-confident pattern on
  conflict.  Dirty sets write back to the store on PB eviction.

Limit-study configuration switches (Fig 5) are honoured here: zero
latency turns prefetching into on-demand fills, ``infinite_patterns``
unbounds the sets, ``infinite_contexts`` unbounds the directory, and
``no_contextualization`` keys pattern sets by branch PC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.bitops import mix64
from repro.common.stats import StatGroup
from repro.llbp.config import LLBPConfig
from repro.llbp.pattern import Pattern, PatternSet, UsefulTracker, make_bucket_ranges
from repro.llbp.pattern_buffer import PatternBuffer, PBEntry
from repro.llbp.pattern_store import PatternStore
from repro.llbp.rcr import CONTEXT_KINDS, ContextStreams
from repro.obs.sampling import active_sampler
from repro.tage.config import HISTORY_LENGTHS, TageConfig, history_length_index
from repro.tage.loop_predictor import _CONF_MAX
from repro.tage.streams import TraceTensors, build_tag_streams
from repro.tage.tsl import TSLPrediction, TageSCL


@dataclass
class LLBPPrediction:
    """Record of one combined LLBP + TSL prediction."""

    pred: bool
    tsl: TSLPrediction
    context_id: int  # -1 while the RCR is cold
    pattern: Optional[Pattern]
    pattern_set: Optional[PatternSet]
    pattern_pred: bool  # direction the pattern gave at predict time
    llbp_provider: bool  # LLBP's pattern won the length arbitration
    llbp_late: bool  # the context's set was still in flight


class LLBP:
    """The original LLBP design over an unmodified TAGE-SC-L."""

    def __init__(
        self,
        config: LLBPConfig,
        tage_config: TageConfig,
        tensors: TraceTensors,
        context_streams: Optional[ContextStreams] = None,
        tsl: Optional[TageSCL] = None,
    ) -> None:
        self.config = config
        self.name = config.name
        # ``tsl`` optionally injects a pre-built baseline (the batched
        # backend passes one sharing its TAGE core across lanes); callers
        # doing so must also replace ``self.step``.
        self.tsl = tsl if tsl is not None else TageSCL(tage_config, tensors)
        self.tensors = tensors
        self.stats = StatGroup(f"llbp[{config.name}]")
        self.contexts = context_streams if context_streams is not None else ContextStreams(tensors)

        # pattern tags for all 21 canonical lengths at LLBP's tag width
        self.tag_streams = build_tag_streams(
            tensors, HISTORY_LENGTHS, [config.pattern_tag_bits] * len(HISTORY_LENGTHS)
        )
        self._instr = tensors.instr_index.tolist()
        self._ub_prefix = self.contexts.ub_prefix
        self._window = self.contexts.window_hashes(config.context_depth) if not config.no_contextualization else []
        # per-record flag: does this UB update the rolling context register?
        # (bytes: 1 byte per record, indexes to plain ints)
        self._is_context_kind = bytes(np.isin(tensors.kinds, CONTEXT_KINDS).astype(np.uint8))
        self._ub_counter = self.stats.counter("unconditional_branches")

        self.store = PatternStore(
            num_contexts=config.effective_contexts,
            assoc=config.store_assoc,
            context_tag_bits=31 if config.infinite_contexts else config.context_tag_bits,
            infinite=config.infinite_contexts,
        )
        self.pattern_buffer = PatternBuffer(config.pattern_buffer_entries)
        self.tracker = UsefulTracker() if config.track_useful else None

        self._set_capacity = 0 if config.infinite_patterns or config.no_contextualization else config.patterns_per_set
        self._counter_bits = config.pattern_counter_bits
        self._direct: Dict[int, PatternSet] = {}  # no-contextualisation mode

        active = sorted(history_length_index(length) for length in config.history_lengths)
        self._active_indices = active
        self._bucket_ranges = (
            make_bucket_ranges(active, config.num_buckets, config.bucket_size)
            if config.use_bucketing and self._set_capacity > 0
            else None
        )
        #: fused predict+update entry point used by the simulation loop
        self.step = self._build_step()
        sampler = active_sampler()
        if sampler is not None:
            # only wraps when telemetry sampling is enabled; the default
            # hot path runs the bare fused kernel untouched
            self.step = sampler.instrument(self.name, self.step, self.telemetry_sample)

    def telemetry_sample(self) -> Dict[str, float]:
        """Periodic sampler payload: PB health plus the base TAGE core.

        ``pb.hit_rate`` is the cumulative pattern-buffer hit rate at the
        sample point (hits over predictions so far), the in-flight view
        of the paper's Fig 10 steady-state number.
        """
        predictions = self.stats.get("predictions")
        sample = {
            "pb.occupancy": len(self.pattern_buffer) / self.pattern_buffer.capacity,
            "pb.hit_rate": self.stats.get("llbp_hits") / predictions if predictions else 0.0,
            "pb.provide_rate": (
                self.stats.get("llbp_provides") / predictions if predictions else 0.0
            ),
            "store.resident_sets": float(self.store.resident_sets()),
        }
        for key, value in self.tsl.tage.telemetry_sample().items():
            sample["tage.%s" % key] = value
        return sample

    # -- context handling ----------------------------------------------------------

    def _context_of(self, t: int, pc: int) -> int:
        if self.config.no_contextualization:
            return pc
        end = self._ub_prefix[t] - self.config.prefetch_distance - 1
        if end < 0:
            return -1
        return self._window[end]

    def _new_set(self, context_id: int) -> PatternSet:
        return PatternSet(
            capacity=self._set_capacity,
            counter_bits=self._counter_bits,
            bucket_ranges=self._bucket_ranges_for(context_id),
        )

    def _bucket_ranges_for(self, context_id: int) -> Optional[List[Tuple[int, int, int]]]:
        """Bucket layout for a context (LLBP-X varies this by depth)."""
        del context_id
        return self._bucket_ranges

    def _active_indices_for(self, context_id: int) -> List[int]:
        """Allocatable history-length indices (LLBP-X varies this by depth)."""
        del context_id
        return self._active_indices

    # -- pattern buffer plumbing ------------------------------------------------------

    def _handle_eviction(self, evicted: Optional[Tuple[int, PBEntry]]) -> None:
        if evicted is None:
            return
        context_id, entry = evicted
        self._account_prefetch(entry)
        if entry.pattern_set.dirty and len(entry.pattern_set.patterns):
            self.store.insert(context_id, entry.pattern_set)

    def _account_prefetch(self, entry: PBEntry) -> None:
        if not entry.from_prefetch:
            return
        if entry.false_path:
            self.stats.add("prefetch_false_path")
        if not entry.used:
            self.stats.add("prefetch_unused")
        elif entry.late:
            self.stats.add("prefetch_late")
        else:
            self.stats.add("prefetch_timely")

    def _fetch_into_pb(self, context_id: int, available_at: int, from_prefetch: bool, false_path: bool = False) -> Optional[PatternSet]:
        pattern_set = self.store.lookup(context_id)
        if pattern_set is None:
            return None
        evicted = self.pattern_buffer.insert(
            context_id, pattern_set, available_at, from_prefetch, false_path
        )
        self._handle_eviction(evicted)
        return pattern_set

    def _get_or_create_set(self, t: int, context_id: int) -> PatternSet:
        """Locate the context's pattern set for an update, creating if needed."""
        if self.config.no_contextualization:
            pattern_set = self._direct.get(context_id)
            if pattern_set is None:
                pattern_set = self._new_set(context_id)
                self._direct[context_id] = pattern_set
                self.stats.add("set_creations")
            return pattern_set
        entry = self.pattern_buffer.peek(context_id)
        if entry is not None:
            return entry.pattern_set
        now = self._instr[t]
        fetched = self._fetch_into_pb(context_id, now + self.config.effective_latency, from_prefetch=False)
        if fetched is not None:
            return fetched
        pattern_set = self._new_set(context_id)
        evicted = self.pattern_buffer.insert(context_id, pattern_set, now, from_prefetch=False)
        self._handle_eviction(evicted)
        self.stats.add("set_creations")
        return pattern_set

    # -- prefetching ------------------------------------------------------------------

    def on_unconditional(self, t: int, pc: int, target: int) -> None:
        self._ub_counter.value += 1
        if self.config.no_contextualization or self.config.zero_latency:
            return  # on-demand operation; no prefetch pipeline
        if not self._is_context_kind[t]:
            return  # plain jumps do not update the rolling context register
        ub_index = self._ub_prefix[t]  # this UB's own index
        self._prefetch_context(t, self._prefetch_id(ub_index))

    def _prefetch_id(self, ub_index: int) -> int:
        """Context that becomes active D UBs after ``ub_index`` executes."""
        return self._window[ub_index]

    def _prefetch_context(self, t: int, context_id: int, false_path: bool = False) -> None:
        if context_id in self.pattern_buffer:
            self.stats.add("prefetch_pb_hit")
            return
        if not self.store.contains(context_id):
            self.stats.add("prefetch_no_context")
            return
        now = self._instr[t]
        fetched = self._fetch_into_pb(
            context_id, now + self.config.effective_latency, from_prefetch=True, false_path=false_path
        )
        if fetched is not None:
            self.stats.add("prefetches_issued")

    # -- prediction ----------------------------------------------------------------------

    def _lookup_pattern(self, t: int, context_id: int) -> Tuple[Optional[Pattern], Optional[PatternSet], bool]:
        """(pattern, set, late) for the active context at record ``t``."""
        if context_id == -1:
            return None, None, False
        if self.config.no_contextualization:
            pattern_set = self._direct.get(context_id)
            late = False
        else:
            now = self._instr[t]
            pattern_set, late = self.pattern_buffer.get(context_id, now)
            if pattern_set is None and not late and self.config.zero_latency:
                pattern_set = self._fetch_into_pb(context_id, now, from_prefetch=False)
        if pattern_set is None:
            return None, None, late
        pattern = pattern_set.lookup(t, self.tag_streams, self._active_indices)
        return pattern, pattern_set, late

    def predict(self, t: int, pc: int) -> LLBPPrediction:
        tsl_prediction = self.tsl.base_predict(t, pc)
        context_id = self._context_of(t, pc)
        pattern, pattern_set, late = self._lookup_pattern(t, context_id)

        llbp_provider = False
        pred = tsl_prediction.pred
        pattern_pred = False
        if pattern is not None:
            self.stats.add("llbp_hits")
            pattern_pred = pattern.pred
            pattern_length = HISTORY_LENGTHS[pattern.length_index]
            loop_valid = tsl_prediction.loop is not None and tsl_prediction.loop.valid
            if pattern_length >= tsl_prediction.tage.provider_length and not loop_valid:
                llbp_provider = True
                pred = pattern_pred
                self.stats.add("llbp_provides")

        prediction = LLBPPrediction(
            pred=pred,
            tsl=tsl_prediction,
            context_id=context_id,
            pattern=pattern,
            pattern_set=pattern_set,
            pattern_pred=pattern_pred,
            llbp_provider=llbp_provider,
            llbp_late=late,
        )

        # Statistical corrector: always evaluated (so it keeps training),
        # but its override is suppressed when LLBP provides with a
        # high-confidence pattern (the §II-C.4 tweak; low-confidence
        # patterns still accept the SC's correction).
        conf = pattern.confidence() if llbp_provider and pattern else tsl_prediction.tage.confidence
        sc_pred = self.tsl.apply_sc(t, pc, tsl_prediction, pred, conf)
        suppress = (
            self.config.suppress_sc
            and llbp_provider
            and pattern is not None
            and pattern_set is not None
            and pattern.is_confident(pattern_set.ctr_max)
        )
        if not suppress:
            prediction.pred = sc_pred
        return prediction

    # -- update --------------------------------------------------------------------------

    def update(self, t: int, pc: int, taken: bool, prediction: LLBPPrediction) -> None:
        self.stats.add("predictions")
        mispredicted = prediction.pred != taken
        if mispredicted:
            self.stats.add("mispredictions")

        self.tsl.update_sc(t, pc, taken, prediction.tsl)
        self.tsl.base_update(t, pc, taken, prediction.tsl)

        pattern = prediction.pattern
        if pattern is not None and prediction.llbp_provider:
            useful = prediction.pattern_pred == taken and prediction.tsl.pred != taken
            if useful:
                self.stats.add("llbp_useful")
                if self.tracker is not None:
                    self.tracker.record(prediction.context_id, pattern)
            pattern.update(taken, prediction.pattern_set.ctr_max, prediction.pattern_set.ctr_min)
            prediction.pattern_set.dirty = True

        if mispredicted and prediction.context_id != -1:
            self._allocate(t, taken, prediction)
        if mispredicted and self.config.model_false_path:
            # The wrong path ran ahead and issued prefetches before this
            # branch resolved; with flushing enabled they are discarded at
            # resolve time (the "without false path" variant of Fig 14a).
            self.on_false_path(t)
            if self.config.flush_false_path:
                self._flush_false_path()
        # overriding-scheme accounting (Fig 14b): the fast first-cycle
        # prediction is the PB's pattern (when providing) or the bimodal
        fast = prediction.pattern_pred if prediction.llbp_provider else prediction.tsl.tage.bim_pred
        if prediction.pred != fast:
            self.stats.add("fast_path_overrides")

    def _choose_allocation_index(self, context_id: int, provider_index: int) -> Tuple[int, int]:
        """(storable index, attempted index) for a new pattern allocation.

        The *attempted* index is the next canonical history length above
        the incorrect provider (what TAGE-style allocation wants); the
        storable index is where this design actually puts it, or -1 when
        the allocation must be dropped.  Base LLBP rounds the attempt up
        to its nearest kept length; LLBP-X overrides this to drop
        attempts outside the context's active range (§V-C).
        """
        attempted = provider_index + 1
        if attempted >= len(HISTORY_LENGTHS):
            return -1, -1
        for index in self._active_indices_for(context_id):
            if index >= attempted:
                return index, attempted
        return -1, attempted

    def _allocate(self, t: int, taken: bool, prediction: LLBPPrediction) -> None:
        """Allocate a pattern with a longer history than the incorrect one."""
        self._allocate_scalar(
            t,
            taken,
            prediction.context_id,
            prediction.llbp_provider,
            prediction.pattern,
            prediction.tsl.tage.provider_table,
            prediction.tsl.tage.provider_length,
        )

    def _allocate_scalar(
        self,
        t: int,
        taken: bool,
        context_id: int,
        llbp_provider: bool,
        pattern: Optional[Pattern],
        provider_table: int,
        provider_length: int,
    ) -> None:
        """Allocation body over plain scalars (shared with the fused step)."""
        if llbp_provider and pattern is not None:
            provider_index = pattern.length_index
        elif provider_table >= 0:
            provider_index = history_length_index(provider_length)
        else:
            provider_index = -1

        target_index, attempted_index = self._choose_allocation_index(context_id, provider_index)
        if attempted_index < 0:
            return  # provider already at the longest history
        allocated: Optional[Pattern] = None
        pattern_set: Optional[PatternSet] = None
        if target_index >= 0:
            pattern_set = self._get_or_create_set(t, context_id)
            tag = self.tag_streams[target_index][t]
            allocated = pattern_set.allocate(target_index, tag, taken)
        else:
            # Dropped (outside the active history range) -- but the attempt
            # still feeds depth adaptation (paper §V-C).
            entry = self.pattern_buffer.peek(context_id)
            pattern_set = entry.pattern_set if entry is not None else None
        if allocated is not None:
            self.stats.add("pattern_allocations")
        else:
            self.stats.add("allocations_dropped")
        self._on_allocation(t, context_id, pattern_set, attempted_index, allocated)

    def _on_allocation(
        self,
        t: int,
        context_id: int,
        pattern_set: Optional[PatternSet],
        length_index: int,
        allocated: Optional[Pattern],
    ) -> None:
        """Hook for LLBP-X's context tracking table; no-op in base LLBP."""

    # -- fused hot path ----------------------------------------------------------

    def _build_step(self) -> Callable[[int, int, bool], bool]:
        """Build the fused ``step(t, pc, taken) -> mispredicted`` kernel.

        One call per branch replaces :meth:`predict` + :meth:`update`
        without constructing ``LLBPPrediction``/``TSLPrediction`` records:
        the TAGE core and statistical corrector run their own fused
        lookup+train kernels, the loop-predictor lookup is inlined, and the
        pattern-buffer/pattern-set interactions happen in exactly the
        unfused order.  Virtual hooks (``_context_of``,
        ``_choose_allocation_index``, ``_on_allocation``) are captured as
        bound methods, so LLBP-X inherits the kernel unchanged.  Pinned
        bit-identical by ``tests/test_step_equivalence.py``.
        """
        config = self.config
        no_ctx = config.no_contextualization
        zero_latency = config.zero_latency
        suppress_sc = config.suppress_sc
        model_false_path = config.model_false_path
        flush_false_path = config.flush_false_path

        tsl = self.tsl
        tage_fused = tsl.tage.fused_step
        loop = tsl.loop
        sc_fused = tsl.sc.fused_step if tsl.sc is not None else None
        if loop is not None:
            loop_entries = loop._entries
            loop_mask = loop._mask
            loop_update = loop.update

        context_of = self._context_of  # virtual: LLBP-X overrides
        direct_get = self._direct.get
        pb_get = self.pattern_buffer.get
        fetch = self._fetch_into_pb
        instr = self._instr
        tag_streams = self.tag_streams
        active_indices = self._active_indices
        hist_lengths = HISTORY_LENGTHS
        tracker = self.tracker
        allocate_for = self._allocate_scalar
        on_false_path = self.on_false_path
        flush = self._flush_false_path

        stats = self.stats
        predictions_counter = stats.counter("predictions")
        hits_counter = stats.counter("llbp_hits")
        provides_counter = stats.counter("llbp_provides")
        stats_add = stats.add

        def step(t: int, pc: int, taken: bool) -> bool:
            # -- TAGE lookup + train (disjoint state; safe to fuse up front)
            tage_pred, tage_conf, bim_pred, provider_table, provider_length = tage_fused(
                t, pc, taken
            )
            tsl_pred = tage_pred
            loop_valid = False
            if loop is not None:
                key = pc >> 2
                entry = loop_entries[key & loop_mask]
                if entry.tag == (key & 0x3FFF) and entry.confidence >= _CONF_MAX:
                    loop_valid = True
                    direction = entry.direction
                    tsl_pred = (
                        (not direction) if entry.current_iter >= entry.past_iter else direction
                    )

            # -- context + pattern lookup
            pattern = None
            pattern_set = None
            if no_ctx:
                cid = pc
                pattern_set = direct_get(cid)
            else:
                cid = context_of(t, pc)
                if cid != -1:
                    now = instr[t]
                    pattern_set, late = pb_get(cid, now)
                    if pattern_set is None and not late and zero_latency:
                        pattern_set = fetch(cid, now, False)
            if pattern_set is not None:
                pattern = pattern_set.lookup(t, tag_streams, active_indices)

            # -- arbitration: longest history wins; loop beats LLBP
            llbp_provider = False
            pred = tsl_pred
            pattern_pred = False
            if pattern is not None:
                hits_counter.value += 1
                pattern_pred = pattern.ctr >= 0
                if hist_lengths[pattern.length_index] >= provider_length and not loop_valid:
                    llbp_provider = True
                    pred = pattern_pred
                    provides_counter.value += 1

            # -- statistical corrector (fused evaluate+train); suppression
            # uses the pattern's pre-update counter, so compute it first
            if sc_fused is not None:
                if llbp_provider:
                    ctr = pattern.ctr
                    conf = ctr if ctr >= 0 else -ctr - 1
                    ctr_max = pattern_set.ctr_max
                    suppress = suppress_sc and (ctr >= ctr_max - 1 or ctr <= -ctr_max)
                else:
                    conf = tage_conf
                    suppress = False
                sc_pred = sc_fused(t, pc, pred, conf, taken)
                final = pred if suppress else sc_pred
            else:
                final = pred

            # -- update
            predictions_counter.value += 1
            mispredicted = final != taken
            if mispredicted:
                stats_add("mispredictions")
            if loop is not None:
                loop_update(pc, taken, tage_pred != taken)
            if llbp_provider:
                if pattern_pred == taken and tsl_pred != taken:
                    stats_add("llbp_useful")
                    if tracker is not None:
                        tracker.record(cid, pattern)
                pattern.update(taken, pattern_set.ctr_max, pattern_set.ctr_min)
                pattern_set.dirty = True
            if mispredicted:
                if cid != -1:
                    allocate_for(
                        t, taken, cid, llbp_provider, pattern, provider_table, provider_length
                    )
                if model_false_path:
                    on_false_path(t)
                    if flush_false_path:
                        flush()
            fast = pattern_pred if llbp_provider else bim_pred
            if final != fast:
                stats_add("fast_path_overrides")
            return mispredicted

        return step

    # -- teardown / reporting ------------------------------------------------------------

    def finalize(self) -> None:
        """Flush the pattern buffer (writebacks) and settle prefetch stats."""
        for context_id, entry in self.pattern_buffer.drain():
            self._account_prefetch(entry)
            if entry.pattern_set.dirty and len(entry.pattern_set.patterns):
                self.store.insert(context_id, entry.pattern_set)

    def collect_extra(self) -> Dict[str, float]:
        """Per-run derived metrics consumed by the metrics/experiments layers."""
        self.finalize()
        store_stats = self.store.stats.as_dict()
        return {
            "store_reads": float(store_stats.get("lookups", 0)),
            "store_writes": float(store_stats.get("writes", 0)),
            "store_evictions": float(store_stats.get("evictions", 0)),
            "resident_sets": float(self.store.resident_sets()),
            "pb_late_hits": float(self.pattern_buffer.stats.get("late_hits")),
        }

    def _flush_false_path(self) -> None:
        """Drop wrong-path-prefetched sets from the PB (Fig 14a's variant).

        Flushed prefetches are *not* accounted in the timely/late/unused
        classification: the "without false path" variant models a frontend
        that never lets them take effect.
        """
        stale = [cid for cid, entry in self.pattern_buffer.items() if entry.false_path]
        for cid in stale:
            self.pattern_buffer._entries.pop(cid, None)
            self.stats.add("false_path_flushed")

    def on_false_path(self, t: int) -> None:
        """Model wrong-path prefetches after a misprediction (Fig 14a).

        The wrong path runs ahead for a few fetch cycles and issues
        prefetches of *real* contexts (it executes real code): half the
        time a reconvergent target a few UBs ahead of the correct path
        (potentially useful later), otherwise an arbitrary stored context
        (pure pollution).
        """
        if self.config.no_contextualization or self.config.zero_latency:
            return
        coin = mix64(t)
        ub_index = self._ub_prefix[t]
        lookahead = 2 + (coin >> 8) % 3
        # wrong paths reconverge often: most bogus prefetches target a
        # context the correct path will also reach shortly
        if coin % 10 < 7 and ub_index + lookahead < len(self._window):
            target = self._window[ub_index + lookahead]
        else:
            sampled = self.store.sample_context(coin >> 16)
            if sampled is None:
                return
            target = sampled
        self.stats.add("false_path_issued")
        self._prefetch_context(t, target, false_path=True)
