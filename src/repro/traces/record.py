"""Branch trace representation.

A trace is the unit of input for every simulation in this repository.  It
is stored column-wise (parallel lists) because the simulator's inner loop
iterates millions of records and CPython iterates parallel lists much
faster than it constructs objects.  :meth:`Trace.records` provides a
record-at-a-time view for convenience and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple


class BranchKind(enum.IntEnum):
    """Branch classes relevant to the predictors.

    ``COND`` branches are predicted; all other kinds are *unconditional*
    and participate in context formation (LLBP's rolling context register)
    and path history.
    """

    COND = 0
    JUMP = 1
    CALL = 2
    RETURN = 3

    @property
    def is_unconditional(self) -> bool:
        return self is not BranchKind.COND


class BranchRecord(NamedTuple):
    """One dynamic branch instance."""

    pc: int
    target: int
    kind: BranchKind
    taken: bool
    inst_gap: int  # non-branch instructions executed since the previous branch


@dataclass
class Trace:
    """A columnar dynamic branch trace plus provenance metadata."""

    name: str = "unnamed"
    seed: int = 0
    pcs: List[int] = field(default_factory=list)
    targets: List[int] = field(default_factory=list)
    kinds: List[int] = field(default_factory=list)
    taken: List[bool] = field(default_factory=list)
    inst_gaps: List[int] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def append(self, pc: int, target: int, kind: BranchKind, taken: bool, inst_gap: int) -> None:
        if inst_gap < 0:
            raise ValueError(f"inst_gap must be non-negative, got {inst_gap}")
        self.pcs.append(pc)
        self.targets.append(target)
        self.kinds.append(int(kind))
        self.taken.append(taken)
        self.inst_gaps.append(inst_gap)

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def num_branches(self) -> int:
        return len(self.pcs)

    @property
    def num_conditional(self) -> int:
        return sum(1 for kind in self.kinds if kind == BranchKind.COND)

    @property
    def num_unconditional(self) -> int:
        return len(self.kinds) - self.num_conditional

    @property
    def num_instructions(self) -> int:
        """Total instructions: every branch is itself one instruction."""
        return sum(self.inst_gaps) + len(self.pcs)

    def records(self) -> Iterator[BranchRecord]:
        for pc, target, kind, taken, gap in zip(self.pcs, self.targets, self.kinds, self.taken, self.inst_gaps):
            yield BranchRecord(pc, target, BranchKind(kind), taken, gap)

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace covering records ``[start, stop)``."""
        sub = Trace(name=f"{self.name}[{start}:{stop}]", seed=self.seed, meta=dict(self.meta))
        sub.pcs = self.pcs[start:stop]
        sub.targets = self.targets[start:stop]
        sub.kinds = self.kinds[start:stop]
        sub.taken = self.taken[start:stop]
        sub.inst_gaps = self.inst_gaps[start:stop]
        return sub

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        lengths = {
            len(self.pcs),
            len(self.targets),
            len(self.kinds),
            len(self.taken),
            len(self.inst_gaps),
        }
        if len(lengths) != 1:
            raise ValueError(f"column lengths disagree: {lengths}")
        for i, (kind, taken) in enumerate(zip(self.kinds, self.taken)):
            if kind != BranchKind.COND and not taken:
                raise ValueError(f"record {i}: unconditional branches are always taken")
        for i, gap in enumerate(self.inst_gaps):
            if gap < 0:
                raise ValueError(f"record {i}: negative inst_gap {gap}")

    def statistics(self) -> Dict[str, float]:
        """Summary statistics used by tests and workload reports."""
        n_cond = self.num_conditional
        n_taken = sum(
            1 for kind, taken in zip(self.kinds, self.taken) if kind == BranchKind.COND and taken
        )
        n_static = len(set(self.pcs))
        n_static_cond = len({pc for pc, kind in zip(self.pcs, self.kinds) if kind == BranchKind.COND})
        instructions = self.num_instructions
        return {
            "branches": float(len(self)),
            "conditional": float(n_cond),
            "unconditional": float(len(self) - n_cond),
            "instructions": float(instructions),
            "taken_ratio": n_taken / n_cond if n_cond else 0.0,
            "branches_per_kilo_inst": 1000.0 * len(self) / instructions if instructions else 0.0,
            "static_branches": float(n_static),
            "static_conditional": float(n_static_cond),
        }
