"""Branch trace representation.

A trace is the unit of input for every simulation in this repository.  It
is stored column-wise because the simulator's inner loop iterates millions
of records and CPython iterates flat columns much faster than it
constructs objects.  Columns are *dual-backed*: traces under construction
use plain Python lists (``append`` is the builder API), while traces
loaded from disk or the artifact store keep numpy arrays -- possibly
memory-mapped, so loading a million-branch trace touches no pages until
they are read.  :meth:`Trace.aslists` converts any column to a cached
Python list of scalars for the hot simulation loop, making the two
backings bit-identical to consume.  :meth:`Trace.records` provides a
record-at-a-time view for convenience and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Sequence, Tuple

import numpy as np


class BranchKind(enum.IntEnum):
    """Branch classes relevant to the predictors.

    ``COND`` branches are predicted; all other kinds are *unconditional*
    and participate in context formation (LLBP's rolling context register)
    and path history.
    """

    COND = 0
    JUMP = 1
    CALL = 2
    RETURN = 3

    @property
    def is_unconditional(self) -> bool:
        return self is not BranchKind.COND


class BranchRecord(NamedTuple):
    """One dynamic branch instance."""

    pc: int
    target: int
    kind: BranchKind
    taken: bool
    inst_gap: int  # non-branch instructions executed since the previous branch


#: numpy dtypes of the five trace columns (shared by io and the artifact
#: store so every serialised form agrees)
COLUMN_DTYPES: Dict[str, object] = {
    "pcs": np.uint64,
    "targets": np.uint64,
    "kinds": np.uint8,
    "taken": np.bool_,
    "inst_gaps": np.uint32,
}

_COLUMN_NAMES: Tuple[str, ...] = tuple(COLUMN_DTYPES)


def _column_list(values: Sequence) -> List:
    """Python-list-of-scalars form of a column (either backing)."""
    if isinstance(values, list):
        return values
    return np.asarray(values).tolist()


@dataclass(eq=False)
class Trace:
    """A columnar dynamic branch trace plus provenance metadata.

    Columns are Python lists while a trace is being built (``append``)
    and may be numpy arrays -- including read-only memmaps -- once frozen
    by :meth:`compact` or loaded from disk.  Consumers that index
    per-record should go through :meth:`aslists` so they always see plain
    Python scalars regardless of the backing.
    """

    name: str = "unnamed"
    seed: int = 0
    pcs: Sequence[int] = field(default_factory=list)
    targets: Sequence[int] = field(default_factory=list)
    kinds: Sequence[int] = field(default_factory=list)
    taken: Sequence[bool] = field(default_factory=list)
    inst_gaps: Sequence[int] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._list_cache: Dict[str, List] = {}
        self._num_cond_cache: Tuple[int, int] = (-1, 0)  # (len at computation, value)

    def append(self, pc: int, target: int, kind: BranchKind, taken: bool, inst_gap: int) -> None:
        if inst_gap < 0:
            raise ValueError(f"inst_gap must be non-negative, got {inst_gap}")
        self.pcs.append(pc)
        self.targets.append(target)
        self.kinds.append(int(kind))
        self.taken.append(taken)
        self.inst_gaps.append(inst_gap)
        self._list_cache.clear()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        if (self.name, self.seed, self.meta) != (other.name, other.seed, other.meta):
            return False
        return all(self.aslists(n)[0] == other.aslists(n)[0] for n in _COLUMN_NAMES)

    def compact(self) -> "Trace":
        """Freeze list columns into compact numpy arrays (in place).

        Generated traces call this once construction finishes: the arrays
        serialise to the artifact store without conversion and cost a
        fraction of the list memory.  ``append`` is invalid afterwards.
        Returns ``self`` for chaining.
        """
        for column, dtype in COLUMN_DTYPES.items():
            values = getattr(self, column)
            if isinstance(values, list):
                setattr(self, column, np.asarray(values, dtype=dtype))
        return self

    def aslists(self, *names: str) -> Tuple[List, ...]:
        """Requested columns as Python lists of plain scalars (cached).

        ``trace.aslists("pcs", "taken")`` returns ``(pcs, taken)``.  For
        list-backed columns this is the column itself; array-backed
        columns are converted once via ``tolist`` (milliseconds for a
        million records, versus seconds for element-wise conversion) and
        cached.  The hot loops index these lists, so numpy scalar types
        never leak into predictor arithmetic.
        """
        out = []
        for column in names:
            if column not in _COLUMN_NAMES:
                raise KeyError(f"unknown trace column {column!r}")
            cached = self._list_cache.get(column)
            if cached is None:
                cached = _column_list(getattr(self, column))
                self._list_cache[column] = cached
            out.append(cached)
        return tuple(out)

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def num_branches(self) -> int:
        return len(self.pcs)

    @property
    def num_conditional(self) -> int:
        """Number of conditional records (cached; invalidated by growth)."""
        n, value = self._num_cond_cache
        if n != len(self.kinds):
            kinds = np.asarray(self.kinds, dtype=np.uint8)
            value = int(np.count_nonzero(kinds == np.uint8(int(BranchKind.COND))))
            self._num_cond_cache = (len(self.kinds), value)
        return value

    @property
    def num_unconditional(self) -> int:
        return len(self.kinds) - self.num_conditional

    @property
    def num_instructions(self) -> int:
        """Total instructions: every branch is itself one instruction."""
        return int(np.sum(np.asarray(self.inst_gaps, dtype=np.int64))) + len(self.pcs)

    def records(self) -> Iterator[BranchRecord]:
        columns = self.aslists(*_COLUMN_NAMES)
        for pc, target, kind, taken, gap in zip(*columns):
            yield BranchRecord(pc, target, BranchKind(kind), taken, gap)

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace covering records ``[start, stop)``."""
        sub = Trace(name=f"{self.name}[{start}:{stop}]", seed=self.seed, meta=dict(self.meta))
        sub.pcs = self.pcs[start:stop]
        sub.targets = self.targets[start:stop]
        sub.kinds = self.kinds[start:stop]
        sub.taken = self.taken[start:stop]
        sub.inst_gaps = self.inst_gaps[start:stop]
        return sub

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        lengths = {
            len(self.pcs),
            len(self.targets),
            len(self.kinds),
            len(self.taken),
            len(self.inst_gaps),
        }
        if len(lengths) != 1:
            raise ValueError(f"column lengths disagree: {lengths}")
        kinds, taken, gaps = self.aslists("kinds", "taken", "inst_gaps")
        for i, (kind, is_taken) in enumerate(zip(kinds, taken)):
            if kind != BranchKind.COND and not is_taken:
                raise ValueError(f"record {i}: unconditional branches are always taken")
        for i, gap in enumerate(gaps):
            if gap < 0:
                raise ValueError(f"record {i}: negative inst_gap {gap}")

    def statistics(self) -> Dict[str, float]:
        """Summary statistics used by tests and workload reports."""
        pcs, kinds, taken = self.aslists("pcs", "kinds", "taken")
        n_cond = self.num_conditional
        n_taken = sum(
            1 for kind, is_taken in zip(kinds, taken) if kind == BranchKind.COND and is_taken
        )
        n_static = len(set(pcs))
        n_static_cond = len({pc for pc, kind in zip(pcs, kinds) if kind == BranchKind.COND})
        instructions = self.num_instructions
        return {
            "branches": float(len(self)),
            "conditional": float(n_cond),
            "unconditional": float(len(self) - n_cond),
            "instructions": float(instructions),
            "taken_ratio": n_taken / n_cond if n_cond else 0.0,
            "branches_per_kilo_inst": 1000.0 * len(self) / instructions if instructions else 0.0,
            "static_branches": float(n_static),
            "static_conditional": float(n_static_cond),
        }
