"""Workload characterisation: structural statistics of generated traces.

Used to document the synthetic substrate (DESIGN.md §1's substitution
argument rests on these properties) and by tests that assert the
workloads stay server-like: substantial unconditional-branch share,
repeating call paths, a small H2P population with high dynamic weight.

:func:`probe_features` / :func:`workload_features` expose a cheap
numeric fingerprint of a workload (conditional share, H2P density,
context diversity) computed from a short *probe* trace.  The scheduler's
learned cost model (:mod:`repro.core.costmodel`) uses these as
regression features: simulation time varies with how much predictor
work a trace induces, and these structural densities are the observable
proxies for that work.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.traces.cfg import Program
from repro.traces.record import BranchKind, Trace
from repro.traces.workloads import WorkloadSpec, build_program, generate_workload


@dataclass
class WorkloadProfile:
    """Summary statistics of one generated workload trace."""

    name: str
    branches: int
    instructions: int
    conditional_share: float
    call_share: float
    return_share: float
    jump_share: float
    static_conditional: int
    branches_per_kilo_inst: float
    #: dynamic share of conditional executions per behaviour class
    behavior_shares: Dict[str, float]
    #: distinct (call, return) windows of depth 2 per 1K UBs -- a proxy for
    #: context-space size (lower = more repetitive paths)
    context_diversity: float


def characterize(trace: Trace, program: Optional[Program] = None, spec: Optional[WorkloadSpec] = None) -> WorkloadProfile:
    """Compute the profile of a trace (behaviour shares need the program)."""
    pcs_l, targets_l, kinds_l = trace.aslists("pcs", "targets", "kinds")
    kinds = Counter(kinds_l)
    n = len(trace)
    cond = kinds.get(int(BranchKind.COND), 0)

    behavior_shares: Dict[str, float] = {}
    if program is None and spec is not None:
        program = build_program(spec)
    if program is not None:
        tag_by_pc = {
            site.pc: site.behavior.tag
            for function in program.functions
            for site in function.conditional_sites()
        }
        tags = Counter(
            tag_by_pc.get(pc, "loopback")
            for pc, kind in zip(pcs_l, kinds_l)
            if kind == int(BranchKind.COND)
        )
        total = sum(tags.values())
        behavior_shares = {tag: count / total for tag, count in sorted(tags.items())}

    # context diversity: distinct depth-2 call/return windows per 1K UBs
    ub_stream = [
        (pc, target)
        for pc, target, kind in zip(pcs_l, targets_l, kinds_l)
        if kind in (int(BranchKind.CALL), int(BranchKind.RETURN))
    ]
    windows = {tuple(ub_stream[i : i + 2]) for i in range(len(ub_stream) - 1)}
    diversity = 1000.0 * len(windows) / max(1, len(ub_stream))

    instructions = trace.num_instructions
    static_cond = len(
        {pc for pc, kind in zip(pcs_l, kinds_l) if kind == int(BranchKind.COND)}
    )
    return WorkloadProfile(
        name=trace.name,
        branches=n,
        instructions=instructions,
        conditional_share=cond / n if n else 0.0,
        call_share=kinds.get(int(BranchKind.CALL), 0) / n if n else 0.0,
        return_share=kinds.get(int(BranchKind.RETURN), 0) / n if n else 0.0,
        jump_share=kinds.get(int(BranchKind.JUMP), 0) / n if n else 0.0,
        static_conditional=static_cond,
        branches_per_kilo_inst=1000.0 * n / instructions if instructions else 0.0,
        behavior_shares=behavior_shares,
        context_diversity=diversity,
    )


# -- cost-model features -------------------------------------------------------

#: probe-trace length for :func:`workload_features` -- long enough that the
#: structural densities stabilise, short enough to generate in tens of ms
PROBE_BRANCHES = 6000

#: per-process memo of probe features (generation dominates the cost)
_FEATURE_CACHE: Dict[Tuple[str, int, Optional[int]], Dict[str, float]] = {}


def probe_features(trace: Trace) -> Dict[str, float]:
    """Numeric fingerprint of a trace for cost-model regression.

    All features are densities in [0, ~1] or small ratios, so one scale
    suits every workload/trace-length combination:

    * ``cond_share`` -- dynamic share of conditional branches (only
      conditionals exercise the TAGE/SC/LLBP tables).
    * ``h2p_density`` -- dynamic share of conditional executions coming
      from *hard* static branches (per-PC taken rate in [0.1, 0.9]).
      True H2P identification needs a simulation; biased-rate filtering
      is the standard trace-only proxy (hard branches drive allocations,
      useful-bit churn, and pattern-store traffic -- the work that makes
      one cell slower than another at equal length).
    * ``context_diversity`` -- distinct depth-2 call/return windows per
      1K unconditional branches (more contexts = more RCR/CTT work),
      rescaled to [0, 1].
    * ``static_density`` -- static conditional PCs per dynamic
      conditional execution (table pressure proxy).
    """
    pcs_l, kinds_l, taken_l = trace.aslists("pcs", "kinds", "taken")
    cond_kind = int(BranchKind.COND)
    n = len(trace)
    executions: Counter = Counter()
    taken_counts: Counter = Counter()
    for pc, kind, taken in zip(pcs_l, kinds_l, taken_l):
        if kind == cond_kind:
            executions[pc] += 1
            if taken:
                taken_counts[pc] += 1
    cond = sum(executions.values())
    hard = 0
    for pc, count in executions.items():
        rate = taken_counts[pc] / count
        if 0.1 <= rate <= 0.9:
            hard += count
    ub_stream = [
        (pc, kind) for pc, kind in zip(pcs_l, kinds_l)
        if kind in (int(BranchKind.CALL), int(BranchKind.RETURN))
    ]
    windows = {tuple(ub_stream[i: i + 2]) for i in range(len(ub_stream) - 1)}
    return {
        "cond_share": cond / n if n else 0.0,
        "h2p_density": hard / cond if cond else 0.0,
        "context_diversity": min(1.0, len(windows) / max(1, len(ub_stream))),
        "static_density": len(executions) / cond if cond else 0.0,
    }


def workload_features(
    name: str, num_branches: int = PROBE_BRANCHES, seed: Optional[int] = None
) -> Dict[str, float]:
    """Probe features of a named workload (memoised per process).

    Generates a short probe trace (``num_branches``, default
    :data:`PROBE_BRANCHES`) rather than a full experiment-length one:
    the densities are length-stable, and the cost model only needs them
    once per workload per process.
    """
    key = (name, num_branches, seed)
    if key not in _FEATURE_CACHE:
        trace = generate_workload(name, num_branches=num_branches, seed=seed, use_cache=False)
        _FEATURE_CACHE[key] = probe_features(trace)
    return _FEATURE_CACHE[key]
