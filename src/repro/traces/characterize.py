"""Workload characterisation: structural statistics of generated traces.

Used to document the synthetic substrate (DESIGN.md §1's substitution
argument rests on these properties) and by tests that assert the
workloads stay server-like: substantial unconditional-branch share,
repeating call paths, a small H2P population with high dynamic weight.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

from repro.traces.cfg import Program
from repro.traces.record import BranchKind, Trace
from repro.traces.workloads import WorkloadSpec, build_program


@dataclass
class WorkloadProfile:
    """Summary statistics of one generated workload trace."""

    name: str
    branches: int
    instructions: int
    conditional_share: float
    call_share: float
    return_share: float
    jump_share: float
    static_conditional: int
    branches_per_kilo_inst: float
    #: dynamic share of conditional executions per behaviour class
    behavior_shares: Dict[str, float]
    #: distinct (call, return) windows of depth 2 per 1K UBs -- a proxy for
    #: context-space size (lower = more repetitive paths)
    context_diversity: float


def characterize(trace: Trace, program: Optional[Program] = None, spec: Optional[WorkloadSpec] = None) -> WorkloadProfile:
    """Compute the profile of a trace (behaviour shares need the program)."""
    pcs_l, targets_l, kinds_l = trace.aslists("pcs", "targets", "kinds")
    kinds = Counter(kinds_l)
    n = len(trace)
    cond = kinds.get(int(BranchKind.COND), 0)

    behavior_shares: Dict[str, float] = {}
    if program is None and spec is not None:
        program = build_program(spec)
    if program is not None:
        tag_by_pc = {
            site.pc: site.behavior.tag
            for function in program.functions
            for site in function.conditional_sites()
        }
        tags = Counter(
            tag_by_pc.get(pc, "loopback")
            for pc, kind in zip(pcs_l, kinds_l)
            if kind == int(BranchKind.COND)
        )
        total = sum(tags.values())
        behavior_shares = {tag: count / total for tag, count in sorted(tags.items())}

    # context diversity: distinct depth-2 call/return windows per 1K UBs
    ub_stream = [
        (pc, target)
        for pc, target, kind in zip(pcs_l, targets_l, kinds_l)
        if kind in (int(BranchKind.CALL), int(BranchKind.RETURN))
    ]
    windows = {tuple(ub_stream[i : i + 2]) for i in range(len(ub_stream) - 1)}
    diversity = 1000.0 * len(windows) / max(1, len(ub_stream))

    instructions = trace.num_instructions
    static_cond = len(
        {pc for pc, kind in zip(pcs_l, kinds_l) if kind == int(BranchKind.COND)}
    )
    return WorkloadProfile(
        name=trace.name,
        branches=n,
        instructions=instructions,
        conditional_share=cond / n if n else 0.0,
        call_share=kinds.get(int(BranchKind.CALL), 0) / n if n else 0.0,
        return_share=kinds.get(int(BranchKind.RETURN), 0) / n if n else 0.0,
        jump_share=kinds.get(int(BranchKind.JUMP), 0) / n if n else 0.0,
        static_conditional=static_cond,
        branches_per_kilo_inst=1000.0 * n / instructions if instructions else 0.0,
        behavior_shares=behavior_shares,
        context_diversity=diversity,
    )
