"""Branch behaviour models for the synthetic workload generator.

Each conditional branch in a synthetic program owns a *behaviour*: a
deterministic function from execution context (recent conditional-outcome
history, current call path, per-branch occurrence count) to a direction.
Determinism matters twice over: traces are reproducible from a seed, and
the mapping "history pattern -> outcome" is a *function*, so a predictor
with enough history and capacity can in principle learn it -- exactly the
premise of TAGE, LLBP, and LLBP-X.

The behaviour classes mirror the branch taxonomy the paper's analysis
relies on:

* :class:`BiasedBehavior` / :class:`RandomBehavior` -- statistically biased
  or irreducibly noisy branches (the Statistical Corrector's domain).
* :class:`LocalPatternBehavior` -- short repeating per-branch patterns.
* :class:`GlobalCorrelatedBehavior` -- outcome determined by the last *k*
  global conditional outcomes; small *k* gives the easy, short-history
  branches that contextualisation duplicates, large *k* gives
  capacity-hungry branches.
* :class:`PathCorrelatedBehavior` -- outcome determined by the call path
  plus a short outcome window: the hard-to-predict (H2P) branches whose
  hundreds of long-history patterns overflow LLBP's pattern sets and that
  dynamic context depth adaptation targets.

Lazy truth tables are realised with :func:`repro.common.mix64`: the hash
of (branch seed, pattern key) *is* the table entry, so tables cost no
memory and never desynchronise between runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import mask, mix64

_P_SCALE = float(1 << 64)


@dataclass(frozen=True)
class BehaviorContext:
    """Execution context visible to a behaviour when producing an outcome."""

    cond_history: int  # recent global conditional outcomes, bit 0 = newest
    path_hash: int  # rolling hash of the current call stack
    occurrence: int  # how many times this branch has executed before


class Behavior:
    """Base class: a deterministic direction function."""

    #: human-readable class tag used by trace metadata and analyses
    tag = "abstract"

    def __init__(self, seed: int) -> None:
        self.seed = seed & ((1 << 64) - 1)

    def outcome(self, ctx: BehaviorContext) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.tag}(seed={self.seed:#x})"


class BiasedBehavior(Behavior):
    """Taken with fixed probability ``p_taken``, independently per instance.

    The per-occurrence hash makes the stream i.i.d.: no predictor can do
    better than ``min(p, 1-p)`` on it, but the statistical corrector and
    the bimodal table capture the bias.
    """

    tag = "biased"

    def __init__(self, seed: int, p_taken: float) -> None:
        super().__init__(seed)
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError(f"p_taken must be in [0, 1], got {p_taken}")
        self.p_taken = p_taken

    def outcome(self, ctx: BehaviorContext) -> bool:
        draw = mix64(self.seed ^ (ctx.occurrence * 0x2545F4914F6CDD1D))
        return draw < self.p_taken * _P_SCALE

    def describe(self) -> str:
        return f"biased(p={self.p_taken:.2f})"


class RandomBehavior(BiasedBehavior):
    """An alias of :class:`BiasedBehavior` marking irreducible noise.

    Kept as a distinct class so workload specs and analyses can tell
    deliberate noise apart from predictable-but-biased branches.
    """

    tag = "random"

    def describe(self) -> str:
        return f"random(p={self.p_taken:.2f})"


class LoopBehavior(Behavior):
    """Taken ``trip_count - 1`` times, then not taken, repeating.

    Matches the classic loop back-edge shape the loop predictor targets.
    """

    tag = "loop"

    def __init__(self, seed: int, trip_count: int) -> None:
        super().__init__(seed)
        if trip_count < 2:
            raise ValueError(f"trip_count must be >= 2, got {trip_count}")
        self.trip_count = trip_count

    def outcome(self, ctx: BehaviorContext) -> bool:
        return (ctx.occurrence % self.trip_count) != self.trip_count - 1

    def describe(self) -> str:
        return f"loop(trip={self.trip_count})"


class LocalPatternBehavior(Behavior):
    """A fixed repeating direction pattern of the given length."""

    tag = "local_pattern"

    def __init__(self, seed: int, length: int) -> None:
        super().__init__(seed)
        if length < 1:
            raise ValueError(f"pattern length must be >= 1, got {length}")
        self.length = length
        self.pattern = mix64(seed ^ 0xA5A5A5A5) & mask(length)
        if length >= 2 and self.pattern in (0, mask(length)):
            # Avoid degenerate all-same patterns: use half ones, half zeros.
            self.pattern = mask(length) >> (length // 2)

    def outcome(self, ctx: BehaviorContext) -> bool:
        return bool((self.pattern >> (ctx.occurrence % self.length)) & 1)

    def describe(self) -> str:
        return f"local_pattern(len={self.length})"


class GlobalCorrelatedBehavior(Behavior):
    """Outcome is a lazy truth table over the last ``k`` conditional outcomes.

    With history length >= roughly ``k`` (plus interleaved unconditional
    bits) and sufficient table capacity, TAGE predicts these perfectly
    after training.  The number of distinct patterns the predictor must
    hold is the number of distinct ``k``-bit windows occurring at the
    branch -- controlled by ``k``.
    """

    tag = "global_correlated"

    def __init__(self, seed: int, k: int, noise: float = 0.0) -> None:
        super().__init__(seed)
        if k < 1:
            raise ValueError(f"history width k must be >= 1, got {k}")
        if not 0.0 <= noise < 1.0:
            raise ValueError(f"noise must be in [0, 1), got {noise}")
        self.k = k
        self.noise = noise

    def outcome(self, ctx: BehaviorContext) -> bool:
        key = ctx.cond_history & mask(self.k)
        bit = mix64(self.seed ^ key) & 1
        if self.noise:
            flip_draw = mix64(self.seed ^ 0xFEED ^ (ctx.occurrence * 0x9E3779B97F4A7C15))
            if flip_draw < self.noise * _P_SCALE:
                bit ^= 1
        return bool(bit)

    def describe(self) -> str:
        return f"global_correlated(k={self.k}, noise={self.noise:.2f})"


class PathCorrelatedBehavior(Behavior):
    """Outcome determined by the call path plus a short outcome window.

    These are the H2P branches of the paper: a branch living in a shared
    function reached through many call paths.  Each (path, window) pair is
    one pattern, so pattern counts scale with path diversity -- hundreds
    to thousands for hot library code.  Only a long global history (which
    encodes the path) or LLBP's explicit contexts can separate them.
    """

    tag = "path_correlated"

    def __init__(self, seed: int, hist_k: int, noise: float = 0.0) -> None:
        super().__init__(seed)
        if hist_k < 0:
            raise ValueError(f"hist_k must be >= 0, got {hist_k}")
        if not 0.0 <= noise < 1.0:
            raise ValueError(f"noise must be in [0, 1), got {noise}")
        self.hist_k = hist_k
        self.noise = noise

    def outcome(self, ctx: BehaviorContext) -> bool:
        key = mix64(ctx.path_hash ^ self.seed) ^ (ctx.cond_history & mask(self.hist_k) if self.hist_k else 0)
        bit = mix64(self.seed ^ key) & 1
        if self.noise:
            flip_draw = mix64(self.seed ^ 0xBEEF ^ (ctx.occurrence * 0x2545F4914F6CDD1D))
            if flip_draw < self.noise * _P_SCALE:
                bit ^= 1
        return bool(bit)

    def describe(self) -> str:
        return f"path_correlated(hist_k={self.hist_k}, noise={self.noise:.2f})"
