"""Trace (de)serialisation.

Traces are stored as ``.npz`` archives (compact, fast, dependency-free
beyond numpy) with a JSON-encoded metadata blob.  Round-tripping is exact;
the property tests check it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.traces.record import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "seed": trace.seed,
        "meta": trace.meta,
    }
    np.savez_compressed(
        path,
        pcs=np.asarray(trace.pcs, dtype=np.uint64),
        targets=np.asarray(trace.targets, dtype=np.uint64),
        kinds=np.asarray(trace.kinds, dtype=np.uint8),
        taken=np.asarray(trace.taken, dtype=np.bool_),
        inst_gaps=np.asarray(trace.inst_gaps, dtype=np.uint32),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {meta.get('version')!r}")
        trace = Trace(name=meta["name"], seed=meta["seed"], meta=meta["meta"])
        trace.pcs = [int(v) for v in data["pcs"]]
        trace.targets = [int(v) for v in data["targets"]]
        trace.kinds = [int(v) for v in data["kinds"]]
        trace.taken = [bool(v) for v in data["taken"]]
        trace.inst_gaps = [int(v) for v in data["inst_gaps"]]
    return trace
