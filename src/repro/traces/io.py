"""Trace (de)serialisation.

Traces are stored as ``.npz`` archives (compact, fast, dependency-free
beyond numpy) with a JSON-encoded metadata blob.  Round-tripping is exact;
the property tests check it.

Loaded traces keep their columns *numpy-backed* (``Trace`` accepts array
columns; :meth:`~repro.traces.record.Trace.aslists` converts on demand
for the hot loop), so loading a million-branch trace costs milliseconds
instead of the seconds an element-by-element Python-list rebuild took.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.traces.record import COLUMN_DTYPES, Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    meta = {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "seed": trace.seed,
        "meta": trace.meta,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        **{
            column: np.asarray(getattr(trace, column), dtype=dtype)
            for column, dtype in COLUMN_DTYPES.items()
        },
    )


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    A missing ``.npz`` suffix is retried whenever ``path`` itself is not
    a regular file -- including when it exists as a *directory* (the old
    check only fired when the path was absent entirely, so ``foo`` next
    to ``foo.npz`` could shadow the archive).
    """
    path = Path(path)
    if path.suffix != ".npz" and not path.is_file():
        candidate = path.with_name(path.name + ".npz")
        if candidate.is_file() or not path.exists():
            path = candidate
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {meta.get('version')!r}")
        trace = Trace(name=meta["name"], seed=meta["seed"], meta=meta["meta"])
        for column in COLUMN_DTYPES:
            setattr(trace, column, data[column])
    return trace
