"""Synthetic server-workload traces (the data substrate of the reproduction).

Real gem5 / Google datacenter traces are network-gated, so this package
generates synthetic programs whose branch streams exhibit the structural
properties every mechanism in the paper keys on; see DESIGN.md §1.
"""

from repro.traces.behaviors import (
    Behavior,
    BehaviorContext,
    BiasedBehavior,
    GlobalCorrelatedBehavior,
    LocalPatternBehavior,
    LoopBehavior,
    PathCorrelatedBehavior,
    RandomBehavior,
)
from repro.traces.characterize import WorkloadProfile, characterize
from repro.traces.cfg import (
    CallSite,
    CondSite,
    Function,
    JumpSite,
    LoopSite,
    PcAllocator,
    Program,
)
from repro.traces.generator import TraceGenerator, generate_trace
from repro.traces.io import load_trace, save_trace
from repro.traces.record import BranchKind, BranchRecord, Trace
from repro.traces.workloads import (
    ANALYSIS_WORKLOAD,
    GEM5_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    WorkloadSpec,
    build_program,
    clear_trace_cache,
    generate_workload,
    workload_spec,
)

__all__ = [
    "ANALYSIS_WORKLOAD",
    "Behavior",
    "BehaviorContext",
    "BiasedBehavior",
    "BranchKind",
    "BranchRecord",
    "CallSite",
    "CondSite",
    "Function",
    "GEM5_WORKLOAD_NAMES",
    "GlobalCorrelatedBehavior",
    "JumpSite",
    "LocalPatternBehavior",
    "LoopBehavior",
    "LoopSite",
    "PathCorrelatedBehavior",
    "PcAllocator",
    "Program",
    "RandomBehavior",
    "Trace",
    "TraceGenerator",
    "WORKLOAD_NAMES",
    "WorkloadProfile",
    "WorkloadSpec",
    "build_program",
    "characterize",
    "clear_trace_cache",
    "generate_trace",
    "generate_workload",
    "load_trace",
    "save_trace",
    "workload_spec",
]
