"""Synthetic program model: functions, call sites, loops, branch sites.

A synthetic *program* is a DAG of functions (callees always have a higher
index than their callers, so execution always terminates).  Each function
body is a sequence of *sites*:

* :class:`CondSite` -- a conditional branch with an attached behaviour,
* :class:`CallSite` -- an unconditional call choosing among weighted
  callees (plus the matching return when the callee finishes),
* :class:`JumpSite` -- an unconditional direct jump (context "dilution":
  real code has many non-call unconditional branches between calls),
* :class:`LoopSite` -- a loop with a body of sites and a back-edge
  conditional branch.

The model deliberately contains everything LLBP's mechanisms key on --
call chains form contexts, shared library functions reached through many
paths create both pattern duplication (easy branches) and pattern-set
contention (H2P branches) -- and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.traces.behaviors import Behavior

#: code addresses advance in 4-byte steps, like a RISC ISA
PC_STRIDE = 4


@dataclass
class CondSite:
    """A conditional branch location inside a function body."""

    pc: int
    target: int
    behavior: Behavior


@dataclass
class JumpSite:
    """An unconditional direct jump (always taken)."""

    pc: int
    target: int


@dataclass
class CallSite:
    """A call choosing one of several callees with the given weights."""

    pc: int
    callees: List["Function"]
    weights: List[float]

    def __post_init__(self) -> None:
        if not self.callees:
            raise ValueError("call site needs at least one callee")
        if len(self.callees) != len(self.weights):
            raise ValueError(
                f"{len(self.callees)} callees but {len(self.weights)} weights"
            )
        if any(w <= 0 for w in self.weights):
            raise ValueError("callee weights must be positive")


@dataclass
class LoopSite:
    """A counted loop: body sites plus a back-edge conditional branch."""

    pc: int  # back-edge branch address
    target: int  # loop header address
    body: List["Site"]
    mean_trips: int

    def __post_init__(self) -> None:
        if self.mean_trips < 1:
            raise ValueError(f"mean_trips must be >= 1, got {self.mean_trips}")


Site = Union[CondSite, JumpSite, CallSite, LoopSite]


@dataclass
class Function:
    """A function: an entry point, an exit point, and a body of sites."""

    name: str
    entry_pc: int
    exit_pc: int
    sites: List[Site] = field(default_factory=list)

    def conditional_sites(self) -> List[CondSite]:
        """All conditional branch sites, including those nested in loops."""
        found: List[CondSite] = []

        def visit(sites: Sequence[Site]) -> None:
            for site in sites:
                if isinstance(site, CondSite):
                    found.append(site)
                elif isinstance(site, LoopSite):
                    visit(site.body)

        visit(self.sites)
        return found


@dataclass
class Program:
    """A whole synthetic program: functions with ``functions[0]`` as root."""

    name: str
    functions: List[Function]

    def __post_init__(self) -> None:
        if not self.functions:
            raise ValueError("a program needs at least one function")

    @property
    def root(self) -> Function:
        return self.functions[0]

    def conditional_sites(self) -> List[CondSite]:
        sites: List[CondSite] = []
        for function in self.functions:
            sites.extend(function.conditional_sites())
        return sites

    def static_branch_count(self) -> int:
        """Static branches of all kinds (conditional + call/jump/loop edges)."""

        def count(sites: Sequence[Site]) -> int:
            total = 0
            for site in sites:
                if isinstance(site, LoopSite):
                    total += 1 + count(site.body)
                else:
                    total += 1
            return total

        # +1 per function for the return branch
        return sum(count(f.sites) + 1 for f in self.functions)


class PcAllocator:
    """Hands out unique, word-aligned code addresses."""

    def __init__(self, base: int = 0x400000) -> None:
        self._next = base

    def alloc(self, slots: int = 1) -> int:
        """Reserve ``slots`` consecutive instruction addresses; return the first."""
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        pc = self._next
        self._next += slots * PC_STRIDE
        return pc
