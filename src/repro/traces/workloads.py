"""The 14 server workloads of Table I as synthetic program profiles.

Each named profile mirrors one application from the paper's Table I
(NodeApp, PHPWiki, TPCC, Twitter, Wikipedia, Kafka, Spring, Tomcat,
Finagle-Chirper, Finagle-HTTP, Charlie, Delta, Merced, Whiskey).  Real
traces are network-gated, so profiles are *structural stand-ins*: a
layered call DAG (request dispatcher -> handlers -> mid-level helpers ->
shared library leaves) whose knobs control exactly the properties the
paper's mechanisms depend on:

* ``h2p_*`` knobs size the population of path-correlated hard-to-predict
  branches (pattern-set contention, Figs 6/7),
* ``short_k`` branches in shared leaves create the short patterns that
  contextualisation duplicates (Fig 8),
* ``noise_frac`` sets the irreducible misprediction floor, and the H2P
  volume sets the capacity-sensitive component, together calibrated so
  the 64K-TSL MPKI ordering roughly tracks Table I.

Profiles are deliberately *not* claims about the actual applications;
see DESIGN.md §1 for the substitution rationale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.common.bitops import mix64
from repro.traces.behaviors import (
    Behavior,
    BiasedBehavior,
    GlobalCorrelatedBehavior,
    LocalPatternBehavior,
    PathCorrelatedBehavior,
    RandomBehavior,
)
from repro.traces.cfg import (
    CallSite,
    CondSite,
    Function,
    JumpSite,
    LoopSite,
    PcAllocator,
    Program,
)
from repro.traces.generator import TraceGenerator
from repro.traces.record import Trace


@dataclass(frozen=True)
class WorkloadSpec:
    """Structural and behavioural knobs for one synthetic workload."""

    name: str
    seed: int = 1
    # --- call-graph shape ---------------------------------------------------
    num_handlers: int = 10
    num_mid: int = 16
    num_sub: Optional[int] = None  # sub-level helpers; defaults to num_mid
    num_lib: int = 8
    calls_per_handler: Tuple[int, int] = (2, 3)
    calls_per_mid: Tuple[int, int] = (1, 2)
    calls_per_sub: Tuple[int, int] = (1, 2)
    fanout_mid: int = 5  # candidate mid-level callees per handler call site
    fanout_sub: int = 3  # candidate sub-level callees per mid call site
    fanout_lib: int = 3  # candidate library callees per sub call site
    jumps_per_function: Tuple[int, int] = (1, 3)
    # --- regular conditional branches ----------------------------------------
    conds_per_function: Tuple[int, int] = (4, 8)
    behavior_mix: Dict[str, float] = field(
        default_factory=lambda: {
            "biased": 0.30,
            "local": 0.12,
            "short_global": 0.40,
            "long_global": 0.18,
        }
    )
    bias_range: Tuple[float, float] = (0.005, 0.05)  # distance from fully biased
    local_len: Tuple[int, int] = (2, 8)
    short_k: Tuple[int, int] = (2, 5)
    long_k: Tuple[int, int] = (6, 10)
    correlated_noise: float = 0.0
    # --- hard-to-predict branches in shared library leaves --------------------
    h2p_per_lib: int = 2
    h2p_hist_k: Tuple[int, int] = (0, 1)
    h2p_noise: float = 0.0
    # --- noise branches -------------------------------------------------------
    noise_frac: float = 0.05  # fraction of cond sites that are irreducible noise
    noise_p: Tuple[float, float] = (0.90, 0.98)
    # --- loops & instruction mix ----------------------------------------------
    loops_per_handler: Tuple[int, int] = (0, 1)
    loop_trips: Tuple[int, int] = (3, 9)
    mean_gap: float = 7.0
    # --- request mix ------------------------------------------------------------
    request_types: int = 32  # distinct recurring request kinds (path diversity)
    type_skew: float = 0.7  # Zipf exponent of the request-type popularity
    type_stickiness: float = 0.6  # session affinity: P(next request repeats type)

    def with_seed(self, seed: int) -> "WorkloadSpec":
        return replace(self, seed=seed)


class ProgramBuilder:
    """Synthesises a :class:`Program` from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._rng = random.Random(mix64(spec.seed ^ 0xB111D))
        self._pc = PcAllocator()
        self._behavior_seed = mix64(spec.seed ^ 0xBEAF)
        self._behavior_count = 0

    # -- behaviour synthesis ---------------------------------------------------

    def _next_seed(self) -> int:
        self._behavior_count += 1
        return mix64(self._behavior_seed ^ self._behavior_count)

    def _make_regular_behavior(self) -> Behavior:
        spec = self.spec
        if self._rng.random() < spec.noise_frac:
            return RandomBehavior(self._next_seed(), self._rng.uniform(*spec.noise_p))
        kinds = list(spec.behavior_mix.keys())
        weights = list(spec.behavior_mix.values())
        kind = self._rng.choices(kinds, weights=weights, k=1)[0]
        seed = self._next_seed()
        if kind == "biased":
            margin = self._rng.uniform(*spec.bias_range)
            p_taken = margin if self._rng.random() < 0.5 else 1.0 - margin
            return BiasedBehavior(seed, p_taken)
        if kind == "local":
            return LocalPatternBehavior(seed, self._rng.randint(*spec.local_len))
        if kind == "short_global":
            return GlobalCorrelatedBehavior(seed, self._rng.randint(*spec.short_k), spec.correlated_noise)
        if kind == "long_global":
            return GlobalCorrelatedBehavior(seed, self._rng.randint(*spec.long_k), spec.correlated_noise)
        raise ValueError(f"unknown behaviour kind in mix: {kind!r}")

    def _make_h2p_behavior(self) -> Behavior:
        spec = self.spec
        return PathCorrelatedBehavior(
            self._next_seed(), self._rng.randint(*spec.h2p_hist_k), spec.h2p_noise
        )

    # -- function synthesis -----------------------------------------------------

    def _cond_site(self, behavior: Behavior) -> CondSite:
        pc = self._pc.alloc(2)
        return CondSite(pc=pc, target=pc + 16, behavior=behavior)

    def _body_sites(self, n_conds: int, h2p: int = 0) -> List:
        sites: List = []
        for _ in range(n_conds):
            sites.append(self._cond_site(self._make_regular_behavior()))
        for _ in range(h2p):
            sites.append(self._cond_site(self._make_h2p_behavior()))
        for _ in range(self._rng.randint(*self.spec.jumps_per_function)):
            pc = self._pc.alloc(2)
            sites.append(JumpSite(pc=pc, target=pc + 24))
        self._rng.shuffle(sites)
        return sites

    def _make_function(self, name: str, n_conds: int, h2p: int = 0) -> Function:
        entry = self._pc.alloc(4)
        sites = self._body_sites(n_conds, h2p)
        exit_pc = self._pc.alloc(1)
        return Function(name=name, entry_pc=entry, exit_pc=exit_pc, sites=sites)

    def _add_call_sites(self, function: Function, callees: List[Function], n_sites: int, fanout: int) -> None:
        for _ in range(n_sites):
            n_cand = min(fanout, len(callees))
            candidates = self._rng.sample(callees, n_cand)
            weights = [self._rng.uniform(0.5, 2.0) for _ in candidates]
            pc = self._pc.alloc(2)
            position = self._rng.randint(0, len(function.sites))
            function.sites.insert(position, CallSite(pc=pc, callees=candidates, weights=weights))

    def _add_loop(self, function: Function) -> None:
        spec = self.spec
        body = [self._cond_site(self._make_regular_behavior())]
        header = self._pc.alloc(1)
        pc = self._pc.alloc(2)
        loop = LoopSite(pc=pc, target=header, body=body, mean_trips=self._rng.randint(*spec.loop_trips))
        function.sites.insert(self._rng.randint(0, len(function.sites)), loop)

    # -- program assembly ---------------------------------------------------------

    def build(self) -> Program:
        spec = self.spec
        lo, hi = spec.conds_per_function

        num_sub = spec.num_sub if spec.num_sub is not None else spec.num_mid

        libs = [
            self._make_function(f"lib{i}", self._rng.randint(lo, hi), h2p=spec.h2p_per_lib)
            for i in range(spec.num_lib)
        ]
        subs = [self._make_function(f"sub{i}", self._rng.randint(lo, hi)) for i in range(num_sub)]
        for sub in subs:
            self._add_call_sites(sub, libs, self._rng.randint(*spec.calls_per_sub), spec.fanout_lib)
        mids = [self._make_function(f"mid{i}", self._rng.randint(lo, hi)) for i in range(spec.num_mid)]
        for mid in mids:
            self._add_call_sites(mid, subs, self._rng.randint(*spec.calls_per_mid), spec.fanout_sub)

        handlers = [self._make_function(f"handler{i}", self._rng.randint(lo, hi)) for i in range(spec.num_handlers)]
        for handler in handlers:
            self._add_call_sites(handler, mids, self._rng.randint(*spec.calls_per_handler), spec.fanout_mid)
            for _ in range(self._rng.randint(*spec.loops_per_handler)):
                self._add_loop(handler)

        root = self._make_function("dispatch", n_conds=2)
        self._add_call_sites(root, handlers, n_sites=1, fanout=len(handlers))

        return Program(name=spec.name, functions=[root] + handlers + mids + subs + libs)


def build_program(spec: WorkloadSpec) -> Program:
    """Synthesise the program for ``spec`` (deterministic in ``spec.seed``)."""
    return ProgramBuilder(spec).build()


# ---------------------------------------------------------------------------
# The 14 named workload profiles of Table I.
#
# Knob intuition: ``noise_frac`` sets the MPKI floor no predictor can fix;
# ``h2p_per_lib``/``num_lib``/``h2p_hist_k`` size the capacity-sensitive H2P
# pattern population (what 512K TSL and LLBP recover); ``long_k`` widens
# plain global-history patterns.  Values were calibrated against the 64K-TSL
# baseline so the resulting MPKI ordering tracks Table I.
# ---------------------------------------------------------------------------

_PROFILES: Dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    if spec.name in _PROFILES:
        raise ValueError(f"duplicate workload profile {spec.name!r}")
    _PROFILES[spec.name] = spec


_register(WorkloadSpec(
    name="kafka", seed=101,
    num_handlers=6, num_mid=8, num_lib=4,
    conds_per_function=(3, 6),
    behavior_mix={"biased": 0.55, "local": 0.2, "short_global": 0.2, "long_global": 0.05},
    noise_frac=0.0020, h2p_per_lib=1, long_k=(5, 8),
))
_register(WorkloadSpec(
    name="chirper", seed=102,
    num_handlers=6, num_mid=10, num_lib=5,
    conds_per_function=(3, 6),
    behavior_mix={"biased": 0.5, "local": 0.2, "short_global": 0.22, "long_global": 0.08},
    noise_frac=0.0040, h2p_per_lib=1, long_k=(5, 8),
))
_register(WorkloadSpec(
    name="delta", seed=103,
    num_handlers=8, num_mid=12, num_lib=6,
    behavior_mix={"biased": 0.45, "local": 0.18, "short_global": 0.25, "long_global": 0.12},
    noise_frac=0.0100, h2p_per_lib=1, long_k=(6, 9),
))
_register(WorkloadSpec(
    name="wikipedia", seed=104,
    num_handlers=10, num_mid=14, num_lib=7,
    noise_frac=0.0225, h2p_per_lib=2, long_k=(6, 9),
))
_register(WorkloadSpec(
    name="finagle_http", seed=105,
    num_handlers=10, num_mid=14, num_lib=7,
    noise_frac=0.0250, h2p_per_lib=2, long_k=(6, 9),
))
_register(WorkloadSpec(
    name="charlie", seed=106,
    num_handlers=12, num_mid=16, num_lib=8,
    noise_frac=0.0250, h2p_per_lib=2, long_k=(6, 10),
))
_register(WorkloadSpec(
    name="twitter", seed=107,
    num_handlers=12, num_mid=16, num_lib=8,
    noise_frac=0.0275, h2p_per_lib=2, long_k=(6, 10),
))
_register(WorkloadSpec(
    name="phpwiki", seed=108,
    num_handlers=12, num_mid=16, num_lib=8,
    noise_frac=0.0275, h2p_per_lib=2, long_k=(6, 10),
))
_register(WorkloadSpec(
    name="tomcat", seed=109,
    num_handlers=14, num_mid=18, num_lib=9,
    noise_frac=0.0300, h2p_per_lib=2, long_k=(6, 10),
))
_register(WorkloadSpec(
    name="spring", seed=110,
    num_handlers=14, num_mid=18, num_lib=9,
    noise_frac=0.0325, h2p_per_lib=2, long_k=(7, 10),
))
_register(WorkloadSpec(
    name="tpcc", seed=111,
    num_handlers=14, num_mid=20, num_lib=10,
    noise_frac=0.0325, h2p_per_lib=3, long_k=(7, 10),
))
_register(WorkloadSpec(
    name="merced", seed=112,
    num_handlers=16, num_mid=20, num_lib=10,
    noise_frac=0.0350, h2p_per_lib=3, long_k=(7, 11),
))
_register(WorkloadSpec(
    name="nodeapp", seed=113,
    num_handlers=16, num_mid=22, num_lib=11,
    noise_frac=0.0375, h2p_per_lib=3, long_k=(7, 11),
))
_register(WorkloadSpec(
    name="whiskey", seed=114,
    num_handlers=18, num_mid=24, num_lib=12,
    noise_frac=0.0475, h2p_per_lib=3, long_k=(7, 11),
))

#: canonical workload ordering used by reports (Table I grouping)
WORKLOAD_NAMES: List[str] = list(_PROFILES.keys())

#: workloads available in the gem5 performance evaluation (paper omits the
#: four Google traces there because they exist only in trace form)
GEM5_WORKLOAD_NAMES: List[str] = [
    name for name in WORKLOAD_NAMES if name not in ("charlie", "delta", "merced", "whiskey")
]

#: the workload the paper's single-application analyses (Figs 6-9) use
ANALYSIS_WORKLOAD = "nodeapp"


def workload_spec(name: str) -> WorkloadSpec:
    """Look up a named profile (case-insensitive)."""
    key = name.lower()
    if key not in _PROFILES:
        raise KeyError(f"unknown workload {name!r}; known: {', '.join(WORKLOAD_NAMES)}")
    return _PROFILES[key]


_TRACE_CACHE: Dict[Tuple[str, int, int], Trace] = {}


def generate_workload(
    name: str,
    num_branches: int = 120_000,
    seed: Optional[int] = None,
    use_cache: bool = True,
) -> Trace:
    """Generate (or fetch from the in-process cache) a workload trace."""
    spec = workload_spec(name)
    if seed is not None:
        spec = spec.with_seed(seed)
    key = (spec.name, spec.seed, num_branches)
    if use_cache and key in _TRACE_CACHE:
        return _TRACE_CACHE[key]
    program = build_program(spec)
    generator = TraceGenerator(
        program,
        seed=spec.seed,
        mean_gap=spec.mean_gap,
        request_types=spec.request_types,
        type_skew=spec.type_skew,
        type_stickiness=spec.type_stickiness,
    )
    trace = generator.generate(num_branches)
    trace.meta["workload"] = spec.name
    if use_cache:
        _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    _TRACE_CACHE.clear()
