"""Trace generation: interpret a synthetic :class:`~repro.traces.cfg.Program`.

The generator walks the program's call DAG, emitting one
:class:`~repro.traces.record.BranchRecord` per executed branch.  It
maintains exactly the execution context the behaviour models consume:

* a global register of recent *conditional* outcomes (``cond_history``),
* a rolling hash of the current call stack (``path_hash``),
* per-branch occurrence counters.

Structural randomness (callee selection, loop trip counts, instruction
gaps) is drawn from a dedicated ``random.Random`` seeded per trace, so a
``(program, seed, length)`` triple always produces the identical trace.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.common.bitops import mix64
from repro.traces.behaviors import BehaviorContext
from repro.traces.cfg import CallSite, CondSite, Function, JumpSite, LoopSite, Program, Site
from repro.traces.record import BranchKind, Trace

_COND_HISTORY_BITS = 256
_COND_HISTORY_MASK = (1 << _COND_HISTORY_BITS) - 1

#: Version of the trace-generation semantics.  Persistent result caches
#: embed this in their content hash, so bumping it (whenever generator or
#: behaviour-model changes alter traces -- the golden hashes in
#: tests/test_reproducibility.py will catch it) invalidates every cached
#: simulation without any manual cleanup.
GENERATOR_VERSION = 1


class TraceGenerator:
    """Executes a program until the requested number of branches is emitted."""

    def __init__(
        self,
        program: Program,
        seed: int = 1,
        mean_gap: float = 5.0,
        max_call_depth: int = 64,
        request_types: int = 16,
        type_skew: float = 0.8,
        type_stickiness: float = 0.6,
    ) -> None:
        if mean_gap < 0:
            raise ValueError(f"mean_gap must be non-negative, got {mean_gap}")
        if request_types < 1:
            raise ValueError(f"request_types must be >= 1, got {request_types}")
        if not 0.0 <= type_stickiness < 1.0:
            raise ValueError(f"type_stickiness must be in [0, 1), got {type_stickiness}")
        self.program = program
        self.seed = seed
        self.mean_gap = mean_gap
        self.max_call_depth = max_call_depth
        self.request_types = request_types
        #: probability that the next request repeats the previous type --
        #: server workloads see bursty, session-affine request streams,
        #: which is what makes deep (W=64) context windows repeat
        self.type_stickiness = type_stickiness
        #: Zipf-like popularity of request types: real services handle a
        #: small set of recurring request kinds, which is what makes control
        #: flow paths (and therefore history patterns) *repeat*.
        self._type_weights = [1.0 / (r + 1) ** type_skew for r in range(request_types)]
        self._rng = random.Random(mix64(seed ^ 0xC0FFEE))
        #: structural RNG of the current request; re-seeded deterministically
        #: per request type so same-type requests follow identical paths
        self._req_rng = self._rng
        self._cond_history = 0
        self._path_hashes: List[int] = [mix64(seed ^ 0x57AC)]  # root frame
        self._occurrences: dict = {}
        self._trace: Optional[Trace] = None
        self._budget = 0

    # -- public API ---------------------------------------------------------

    def generate(self, num_branches: int) -> Trace:
        """Produce a trace with at least ``num_branches`` records.

        The generator finishes the in-flight request (root-function
        activation) before stopping, so the trace may run slightly longer
        than requested; callers that need an exact length can slice.
        """
        if num_branches <= 0:
            raise ValueError(f"num_branches must be positive, got {num_branches}")
        trace = Trace(name=self.program.name, seed=self.seed)
        self._trace = trace
        self._budget = num_branches
        self._cond_history = 0
        self._path_hashes = [mix64(self.seed ^ 0x57AC)]
        self._occurrences = {}
        types = list(range(self.request_types))
        request_type = 0
        first = True
        while len(trace) < num_branches:
            if first or self._rng.random() >= self.type_stickiness:
                request_type = self._rng.choices(types, weights=self._type_weights, k=1)[0]
            first = False
            self._req_rng = random.Random(mix64(self.seed ^ 0xF00D ^ request_type))
            self._execute_function(self.program.root, return_to=self.program.root.entry_pc)
        trace.meta["requested_branches"] = num_branches
        trace.meta["request_types"] = self.request_types
        trace.meta["static_branches"] = self.program.static_branch_count()
        self._trace = None
        # Freeze the builder lists into columnar numpy: downstream tensor
        # construction and artifact-store serialisation consume the arrays
        # directly, and the hot loop re-materialises Python scalars once
        # via Trace.aslists.
        return trace.compact()

    # -- execution engine ----------------------------------------------------

    def _gap(self) -> int:
        """Sample the number of plain instructions before the next branch."""
        if self.mean_gap == 0:
            return 0
        # Geometric-ish gap with the requested mean; bounded for sanity.
        gap = int(self._rng.expovariate(1.0 / self.mean_gap))
        return min(gap, int(self.mean_gap * 8) + 1)

    def _emit(self, pc: int, target: int, kind: BranchKind, taken: bool) -> None:
        assert self._trace is not None
        self._trace.append(pc, target, kind, taken, self._gap())

    def _context(self, pc: int) -> BehaviorContext:
        occurrence = self._occurrences.get(pc, 0)
        self._occurrences[pc] = occurrence + 1
        return BehaviorContext(
            cond_history=self._cond_history,
            path_hash=self._path_hashes[-1],
            occurrence=occurrence,
        )

    def _record_cond_outcome(self, taken: bool) -> None:
        self._cond_history = ((self._cond_history << 1) | int(taken)) & _COND_HISTORY_MASK

    def _execute_function(self, function: Function, return_to: int) -> None:
        for site in function.sites:
            self._execute_site(site)
        self._emit(function.exit_pc, return_to, BranchKind.RETURN, True)

    def _execute_site(self, site: Site) -> None:
        if isinstance(site, CondSite):
            ctx = self._context(site.pc)
            taken = site.behavior.outcome(ctx)
            self._emit(site.pc, site.target if taken else site.pc + 4, BranchKind.COND, taken)
            self._record_cond_outcome(taken)
        elif isinstance(site, JumpSite):
            self._emit(site.pc, site.target, BranchKind.JUMP, True)
        elif isinstance(site, CallSite):
            callee = self._pick_callee(site)
            self._emit(site.pc, callee.entry_pc, BranchKind.CALL, True)
            if len(self._path_hashes) <= self.max_call_depth:
                self._path_hashes.append(mix64(self._path_hashes[-1] ^ site.pc))
                self._execute_function(callee, return_to=site.pc + 4)
                self._path_hashes.pop()
            else:  # depth limit: treat the call as a leaf no-op
                self._emit(callee.exit_pc, site.pc + 4, BranchKind.RETURN, True)
        elif isinstance(site, LoopSite):
            trips = self._sample_trips(site)
            for trip in range(trips):
                for inner in site.body:
                    self._execute_site(inner)
                last = trip == trips - 1
                self._emit(site.pc, site.pc + 4 if last else site.target, BranchKind.COND, not last)
                self._record_cond_outcome(not last)
        else:  # pragma: no cover - exhaustive over the Site union
            raise TypeError(f"unknown site type: {type(site).__name__}")

    def _pick_callee(self, site: CallSite) -> Function:
        if len(site.callees) == 1:
            return site.callees[0]
        return self._req_rng.choices(site.callees, weights=site.weights, k=1)[0]

    def _sample_trips(self, site: LoopSite) -> int:
        if site.mean_trips == 1:
            return 1
        jitter = self._req_rng.randint(-1, 1) if site.mean_trips > 2 else 0
        return max(1, site.mean_trips + jitter)


def generate_trace(
    program: Program,
    num_branches: int,
    seed: int = 1,
    mean_gap: float = 5.0,
    request_types: int = 16,
    type_stickiness: float = 0.6,
) -> Trace:
    """Convenience wrapper: build a generator and produce one trace."""
    generator = TraceGenerator(
        program, seed=seed, mean_gap=mean_gap,
        request_types=request_types, type_stickiness=type_stickiness,
    )
    return generator.generate(num_branches)
