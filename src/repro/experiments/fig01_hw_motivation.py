"""Fig 1: the branch-prediction bottleneck grows on aggressive cores.

The paper measures Intel Skylake vs Sapphire Rapids with hardware
counters; this harness substitutes the two analytical machine models
(DESIGN.md §1) driven by the same traces.  The reproduced claim: the
aggressive machine achieves lower MPKI *and* lower CPI, yet the share of
stall cycles caused by branch mispredictions *increases*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.runner import Runner, RunnerConfig
from repro.experiments.report import format_table, pct
from repro.timing.machines import MachineConfig, sapphire_rapids_like, skylake_like
from repro.timing.pipeline import evaluate_timing

#: the three applications Fig 1 plots
FIG1_WORKLOADS = ("nodeapp", "tomcat", "wikipedia")


@dataclass
class Fig1Row:
    workload: str
    machine: str
    mpki: float
    cpi: float
    branch_stall_share: float


def _run_machine(
    machine: MachineConfig,
    base_runner_config: RunnerConfig,
    workloads: Sequence[str],
    jobs: int = 1,
) -> List[Fig1Row]:
    runner = Runner(
        RunnerConfig(
            scale=machine.predictor_scale,
            num_branches=base_runner_config.num_branches,
            warmup_fraction=base_runner_config.warmup_fraction,
        )
    )
    if jobs > 1:
        runner.run_cells([(w, "tsl_64k", {}) for w in workloads], jobs=jobs)
    rows = []
    for workload in workloads:
        result = runner.run_one(workload, "tsl_64k")
        timing = evaluate_timing(result, machine)
        rows.append(
            Fig1Row(
                workload=workload,
                machine=machine.name,
                mpki=result.mpki,
                cpi=timing.cpi,
                branch_stall_share=timing.branch_stall_share,
            )
        )
        runner.release(workload)
    return rows


def run_fig01(
    runner: Optional[Runner] = None,
    workloads: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> List[Fig1Row]:
    base_config = runner.config if runner is not None else RunnerConfig()
    names = list(workloads) if workloads is not None else list(FIG1_WORKLOADS)
    rows: List[Fig1Row] = []
    for machine in (skylake_like(), sapphire_rapids_like()):
        rows.extend(_run_machine(machine, base_config, names, jobs=jobs))
    return rows


def format_fig01(rows: Sequence[Fig1Row]) -> str:
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row.workload, {})[row.machine] = row
    body = []
    for workload, machines in by_workload.items():
        sky = machines["skylake_like"]
        spr = machines["sapphire_rapids_like"]
        body.append(
            [
                workload,
                f"{sky.mpki:.2f}",
                f"{spr.mpki:.2f}",
                pct(100 * (spr.mpki / sky.mpki - 1)),
                f"{100 * sky.branch_stall_share:.1f}%",
                f"{100 * spr.branch_stall_share:.1f}%",
                pct(100 * (spr.branch_stall_share / sky.branch_stall_share - 1)),
            ]
        )
    return format_table(
        [
            "workload",
            "MPKI sky", "MPKI spr", "d MPKI",
            "br-stall% sky", "br-stall% spr", "d share",
        ],
        body,
        title="Fig 1: branch MPKI and branch-misprediction stall share, "
        "conservative vs aggressive machine",
    )
