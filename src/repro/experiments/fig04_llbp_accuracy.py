"""Fig 4: LLBP vs the idealised 512K and infinite TSL, over 64K TSL.

Paper values: LLBP reduces MPKI by 0.6-25% (avg 8.8%), LLBP-0Lat a bit
more, 512K TSL by 12.7-46.1% (avg 27.5%), infinite TSL by 13.2-54%
(avg 32.5%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.runner import Runner, reduction
from repro.experiments.report import default_workloads, format_table, pct

FIG4_CONFIGS = ("llbp", "llbp_0lat", "tsl_512k", "tsl_inf")

PAPER_AVERAGES = {"llbp": 8.8, "tsl_512k": 27.5, "tsl_inf": 32.5}


@dataclass
class Fig4Row:
    workload: str
    baseline_mpki: float
    reductions: Dict[str, float] = field(default_factory=dict)


def run_fig04(
    runner: Runner,
    workloads: Optional[Sequence[str]] = None,
    configs: Sequence[str] = FIG4_CONFIGS,
    jobs: int = 1,
) -> List[Fig4Row]:
    names = list(workloads) if workloads is not None else default_workloads("all")
    if jobs > 1:
        runner.run_cells(
            [(w, c, {}) for w in names for c in ("tsl_64k", *configs)], jobs=jobs
        )
    rows: List[Fig4Row] = []
    for workload in names:
        base = runner.run_one(workload, "tsl_64k")
        row = Fig4Row(workload=workload, baseline_mpki=base.mpki)
        for config in configs:
            row.reductions[config] = reduction(base, runner.run_one(workload, config))
        rows.append(row)
        runner.release(workload)
    return rows


def format_fig04(rows: Sequence[Fig4Row], configs: Sequence[str] = FIG4_CONFIGS) -> str:
    body = []
    for row in rows:
        body.append(
            [row.workload, f"{row.baseline_mpki:.2f}"]
            + [pct(row.reductions[c]) for c in configs]
        )
    averages = ["average", ""]
    for config in configs:
        averages.append(pct(sum(r.reductions[config] for r in rows) / len(rows)))
    body.append(averages)
    body.append(
        ["paper avg", ""]
        + [pct(PAPER_AVERAGES[c]) if c in PAPER_AVERAGES else "-" for c in configs]
    )
    return format_table(
        ["workload", "64K MPKI"] + [f"{c} red." for c in configs],
        body,
        title="Fig 4: MPKI reduction of LLBP / 512K TSL / Inf TSL vs 64K TSL",
    )
