"""Experiment harnesses: one module per paper table/figure.

Each module exposes ``run_*`` (structured results) and ``format_*``
(the text report the corresponding benchmark prints).
"""

from repro.experiments.export import (
    export_context_profile,
    export_per_length_series,
    export_reduction_rows,
)
from repro.experiments.fig01_hw_motivation import Fig1Row, format_fig01, run_fig01
from repro.experiments.fig04_llbp_accuracy import Fig4Row, format_fig04, run_fig04
from repro.experiments.fig05_limit_study import format_fig05, run_fig05
from repro.experiments.fig06_09_analysis import (
    Fig67Result,
    format_fig06_07,
    format_fig08,
    format_fig09,
    run_fig06_07,
    run_fig08,
    run_fig09,
)
from repro.experiments.fig12_mpki_reduction import Fig12Row, format_fig12, run_fig12
from repro.experiments.fig13_speedup import Fig13Row, format_fig13, run_fig13
from repro.experiments.fig14_prefetch_overriding import (
    Fig14aResult,
    Fig14bRow,
    format_fig14a,
    format_fig14b,
    run_fig14a,
    run_fig14b,
)
from repro.experiments.fig15_bandwidth_energy import Fig15Result, format_fig15, run_fig15
from repro.experiments.fig16_capacity import (
    SweepPoint,
    format_fig16,
    run_fig16a,
    run_fig16b,
)
from repro.experiments.report import default_branches, default_workloads, format_table
from repro.experiments.sec7ef_ablation import (
    BreakdownResult,
    SensitivityPoint,
    format_breakdown,
    format_sensitivity,
    run_breakdown,
    run_ctt_sweep,
    run_hth_sweep,
)
from repro.experiments.tables import (
    PAPER_TABLE_I,
    TableIRow,
    format_table1,
    format_table2,
    run_table1,
)

__all__ = [
    "BreakdownResult",
    "Fig12Row",
    "Fig13Row",
    "Fig14aResult",
    "Fig14bRow",
    "Fig15Result",
    "Fig1Row",
    "Fig4Row",
    "Fig67Result",
    "PAPER_TABLE_I",
    "SensitivityPoint",
    "SweepPoint",
    "TableIRow",
    "default_branches",
    "default_workloads",
    "export_context_profile",
    "export_per_length_series",
    "export_reduction_rows",
    "format_breakdown",
    "format_fig01",
    "format_fig04",
    "format_fig05",
    "format_fig06_07",
    "format_fig08",
    "format_fig09",
    "format_fig12",
    "format_fig13",
    "format_fig14a",
    "format_fig14b",
    "format_fig15",
    "format_fig16",
    "format_sensitivity",
    "format_table",
    "format_table1",
    "format_table2",
    "run_breakdown",
    "run_ctt_sweep",
    "run_fig01",
    "run_fig04",
    "run_fig05",
    "run_fig06_07",
    "run_fig08",
    "run_fig09",
    "run_fig12",
    "run_fig13",
    "run_fig14a",
    "run_fig14b",
    "run_fig15",
    "run_fig16a",
    "run_fig16b",
    "run_hth_sweep",
    "run_table1",
]
