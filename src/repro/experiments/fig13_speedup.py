"""Fig 13: speedup over the 64K TSL baseline (the gem5 stand-in).

Paper values: LLBP-X 1% average (0.08-2.7%), LLBP 0.71% average, ideal
512K TSL 2.4% average.  The Google traces are excluded, matching the
paper (they exist only in trace form there; here we simply honour the
same workload set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.runner import Runner
from repro.experiments.report import default_workloads, format_table, pct
from repro.timing.machines import table_ii_machine
from repro.timing.pipeline import speedup

FIG13_CONFIGS = ("llbp", "llbpx", "tsl_512k")

PAPER_AVERAGES = {"llbp": 0.71, "llbpx": 1.0, "tsl_512k": 2.4}


@dataclass
class Fig13Row:
    workload: str
    speedups: Dict[str, float] = field(default_factory=dict)


def run_fig13(
    runner: Runner,
    workloads: Optional[Sequence[str]] = None,
    configs: Sequence[str] = FIG13_CONFIGS,
    jobs: int = 1,
) -> List[Fig13Row]:
    names = list(workloads) if workloads is not None else default_workloads("gem5")
    if jobs > 1:
        runner.run_cells(
            [(w, c, {}) for w in names for c in ("tsl_64k", *configs)], jobs=jobs
        )
    machine = table_ii_machine()
    rows: List[Fig13Row] = []
    for workload in names:
        base = runner.run_one(workload, "tsl_64k")
        row = Fig13Row(workload=workload)
        for config in configs:
            row.speedups[config] = speedup(base, runner.run_one(workload, config), machine)
        rows.append(row)
        runner.release(workload)
    return rows


def format_fig13(rows: Sequence[Fig13Row], configs: Sequence[str] = FIG13_CONFIGS) -> str:
    body = [
        [row.workload] + [pct(row.speedups[c]) for c in configs] for row in rows
    ]
    body.append(
        ["average"]
        + [pct(sum(r.speedups[c] for r in rows) / len(rows)) for c in configs]
    )
    body.append(["paper avg"] + [pct(PAPER_AVERAGES[c]) for c in configs])
    return format_table(
        ["workload"] + [f"{c} speedup" for c in configs],
        body,
        title="Fig 13: speedup over 64K TSL (analytical pipeline model)",
    )
