"""§VII-E (optimisation breakdown) and §VII-F (sensitivity studies).

* Breakdown: of LLBP-X's gain over LLBP, the paper attributes 82% to
  dynamic context depth adaptation and 18% to dynamic history range
  selection.  We ablate history-range selection (``use_history_ranges``)
  to split the measured gain.
* Sensitivity: sweeps of H_th (paper optimum 232 on real traces; the
  scaled universe's optimum is lower -- the sweep includes both) and of
  the CTT capacity (paper: 6K entries suffice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.runner import Runner, reduction
from repro.experiments.report import default_workloads, format_table, pct

#: H_th sweep values: the scaled universe's range plus the paper's anchors
HTH_SWEEP = (18, 26, 37, 64, 112, 232, 1444)
#: CTT logical entry counts (paper sweeps 4K..8K)
CTT_SWEEP = (2048, 4096, 6144, 8192)


@dataclass
class BreakdownResult:
    llbp_reduction: float
    llbpx_reduction: float
    llbpx_no_ranges_reduction: float

    @property
    def total_gain(self) -> float:
        return self.llbpx_reduction - self.llbp_reduction

    @property
    def range_selection_share(self) -> float:
        """Fraction of the gain attributable to history range selection."""
        if self.total_gain == 0:
            return 0.0
        from_ranges = self.llbpx_reduction - self.llbpx_no_ranges_reduction
        return max(0.0, min(1.0, from_ranges / self.total_gain))

    @property
    def depth_adaptation_share(self) -> float:
        return 1.0 - self.range_selection_share


def run_breakdown(
    runner: Runner, workloads: Optional[Sequence[str]] = None, jobs: int = 1
) -> BreakdownResult:
    names = list(workloads) if workloads is not None else default_workloads("all")
    if jobs > 1:
        cells = [(w, c, {}) for w in names for c in ("tsl_64k", "llbp", "llbpx")]
        cells += [(w, "llbpx", {"use_history_ranges": False}) for w in names]
        runner.run_cells(cells, jobs=jobs)
    llbp_reds, llbpx_reds, ablated_reds = [], [], []
    for workload in names:
        base = runner.run_one(workload, "tsl_64k")
        llbp_reds.append(reduction(base, runner.run_one(workload, "llbp")))
        llbpx_reds.append(reduction(base, runner.run_one(workload, "llbpx")))
        ablated_reds.append(
            reduction(base, runner.run_one(workload, "llbpx", use_history_ranges=False))
        )
        runner.release(workload)
    n = len(names)
    return BreakdownResult(
        llbp_reduction=sum(llbp_reds) / n,
        llbpx_reduction=sum(llbpx_reds) / n,
        llbpx_no_ranges_reduction=sum(ablated_reds) / n,
    )


def format_breakdown(result: BreakdownResult) -> str:
    body = [
        ["LLBP", pct(result.llbp_reduction)],
        ["LLBP-X (full)", pct(result.llbpx_reduction)],
        ["LLBP-X w/o history ranges", pct(result.llbpx_no_ranges_reduction)],
        ["depth adaptation share", f"{100 * result.depth_adaptation_share:.0f}% (paper 82%)"],
        ["history range share", f"{100 * result.range_selection_share:.0f}% (paper 18%)"],
    ]
    return format_table(
        ["configuration", "avg MPKI reduction / share"],
        body,
        title="Sec VII-E: optimisation breakdown",
    )


@dataclass
class SensitivityPoint:
    label: str
    reduction_percent: float


def run_hth_sweep(
    runner: Runner,
    workloads: Optional[Sequence[str]] = None,
    values: Sequence[int] = HTH_SWEEP,
    jobs: int = 1,
) -> List[SensitivityPoint]:
    names = list(workloads) if workloads is not None else default_workloads("subset")
    if jobs > 1:
        cells = [(w, "tsl_64k", {}) for w in names]
        cells += [
            (w, "llbpx", {"history_threshold": h_th}) for h_th in values for w in names
        ]
        runner.run_cells(cells, jobs=jobs)
    points = []
    for h_th in values:
        reductions = []
        for workload in names:
            base = runner.run_one(workload, "tsl_64k")
            improved = runner.run_one(workload, "llbpx", history_threshold=h_th)
            reductions.append(reduction(base, improved))
        points.append(SensitivityPoint(f"H_th={h_th}", sum(reductions) / len(reductions)))
    for workload in names:
        runner.release(workload)
    return points


def run_ctt_sweep(
    runner: Runner,
    workloads: Optional[Sequence[str]] = None,
    values: Sequence[int] = CTT_SWEEP,
    jobs: int = 1,
) -> List[SensitivityPoint]:
    names = list(workloads) if workloads is not None else default_workloads("subset")
    if jobs > 1:
        cells = [(w, "tsl_64k", {}) for w in names]
        cells += [
            (w, "llbpx", {"ctt_entries": entries}) for entries in values for w in names
        ]
        runner.run_cells(cells, jobs=jobs)
    points = []
    for entries in values:
        reductions = []
        for workload in names:
            base = runner.run_one(workload, "tsl_64k")
            improved = runner.run_one(workload, "llbpx", ctt_entries=entries)
            reductions.append(reduction(base, improved))
        points.append(
            SensitivityPoint(f"CTT={entries // 1024}K", sum(reductions) / len(reductions))
        )
    for workload in names:
        runner.release(workload)
    return points


def format_sensitivity(hth: Sequence[SensitivityPoint], ctt: Sequence[SensitivityPoint]) -> str:
    table_h = format_table(
        ["H_th", "avg MPKI reduction"],
        [[p.label, pct(p.reduction_percent)] for p in hth],
        title="Sec VII-F: H_th sensitivity (paper best 232 on real traces; 13.6% at best)",
    )
    table_c = format_table(
        ["CTT entries", "avg MPKI reduction"],
        [[p.label, pct(p.reduction_percent)] for p in ctt],
        title="Sec VII-F: CTT capacity sensitivity (paper: 6K entries suffice)",
    )
    return table_h + "\n\n" + table_c
