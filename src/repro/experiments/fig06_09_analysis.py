"""Figs 6-9: the context/pattern analyses motivating LLBP-X.

* Fig 6 -- useful patterns per context, sorted (skew: a few contexts
  overflow the 16-pattern sets, most are underutilised).
* Fig 7 -- contended contexts hold the longest-history patterns.
* Fig 8 -- pattern duplication falls with history length and grows with
  context depth W.
* Fig 9 -- short lengths favour W=2, long lengths favour deeper contexts
  (relative to the W=8 LLBP baseline).

All four run on the paper's analysis workload (NodeApp) by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.analysis import (
    ContextProfile,
    context_profile,
    depth_sweep_relative,
    duplication_by_depth,
)
from repro.core.runner import Runner
from repro.experiments.report import format_table
from repro.traces.workloads import ANALYSIS_WORKLOAD


@dataclass
class Fig67Result:
    profile: ContextProfile


def run_fig06_07(runner: Runner, workload: str = ANALYSIS_WORKLOAD) -> Fig67Result:
    return Fig67Result(profile=context_profile(runner, workload, context_depth=8))


def format_fig06_07(result: Fig67Result) -> str:
    profile = result.profile
    counts = profile.counts
    lengths = profile.avg_lengths
    # decile summary of the sorted per-context curve (what the figure plots)
    body = []
    n = len(counts)
    for decile in range(0, 10):
        lo = decile * n // 10
        hi = max(lo + 1, (decile + 1) * n // 10)
        chunk = counts[lo:hi]
        chunk_len = lengths[lo:hi]
        body.append(
            [
                f"{10 * decile}-{10 * (decile + 1)}%",
                f"{max(chunk)}",
                f"{sum(chunk) / len(chunk):.1f}",
                f"{sum(chunk_len) / len(chunk_len):.0f}",
            ]
        )
    summary = (
        f"contexts with useful patterns: {n}; "
        f"over 16-pattern capacity: {100 * profile.over_capacity_fraction:.1f}% "
        f"(paper: 14%); <=8 useful: {100 * profile.underutilized_fraction:.1f}% (paper: 68%)\n"
        f"avg history length, top-10 contexts: "
        f"{sum(lengths[:10]) / max(1, len(lengths[:10])):.0f}; "
        f"bottom half: {sum(lengths[n // 2:]) / max(1, len(lengths[n // 2:])):.0f} "
        "(paper: up to 112 vs 17)"
    )
    table = format_table(
        ["context percentile", "max useful", "mean useful", "mean hist len"],
        body,
        title=f"Figs 6+7: useful patterns per context, {profile.workload} (sorted desc)",
    )
    return table + "\n" + summary


def run_fig08(
    runner: Runner, workload: str = ANALYSIS_WORKLOAD, depths: Sequence[int] = (2, 8, 64)
) -> Dict[int, Dict[int, float]]:
    return duplication_by_depth(runner, workload, depths)


def format_fig08(duplication: Dict[int, Dict[int, float]]) -> str:
    depths = sorted(duplication)
    lengths: List[int] = sorted({length for per in duplication.values() for length in per})
    body = []
    for length in lengths:
        row = [str(length)]
        for depth in depths:
            value = duplication[depth].get(length)
            row.append(f"{100 * value:.1f}%" if value is not None else "-")
        body.append(row)
    return format_table(
        ["hist length"] + [f"W={d}" for d in depths],
        body,
        title="Fig 8: duplicate fraction of useful patterns by history length",
    )


def run_fig09(
    runner: Runner, workload: str = ANALYSIS_WORKLOAD
) -> Dict[int, Dict[int, float]]:
    return depth_sweep_relative(runner, workload, depths=(2, 64), baseline_depth=8)


def format_fig09(ratios: Dict[int, Dict[int, float]]) -> str:
    lengths = sorted({length for per in ratios.values() for length in per})
    body = []
    for length in lengths:
        body.append(
            [
                str(length),
                f"{ratios[2].get(length, 0):.2f}x",
                f"{ratios[64].get(length, 0):.2f}x",
            ]
        )
    return format_table(
        ["hist length", "W=2 / W=8", "W=64 / W=8"],
        body,
        title="Fig 9: useful predictions per history length relative to W=8",
    )
