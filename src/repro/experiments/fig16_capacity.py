"""Fig 16: sensitivity to pattern-store and baseline-TAGE capacity.

(a) sweeps LLBP-X's pattern store from 8K to 128K contexts at 0-latency
with a fully associative directory (paper: -10.5% to -17.6% MPKI vs the
64K TSL, monotonically improving).

(b) sweeps the baseline TAGE from 8K- to 64K-entry configurations under a
fixed LLBP-X (paper: LLBP-X keeps helping smaller TAGEs, e.g. +2.6% on a
4x smaller baseline; reductions are relative to the same-size TSL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.runner import Runner, reduction
from repro.core.simulator import simulate
from repro.experiments.report import default_workloads, format_table, pct
from repro.llbp import LLBPX, llbpx_default
from repro.tage import preset_by_name

#: logical pattern-store context counts swept.  The paper sweeps 8K-128K
#: at full scale; the scaled universe's context working sets are ~8x
#: smaller, so the sweep extends downward to keep the capacity-pressured
#: region in frame (1K scaled = the paper's 8K regime).
FIG16A_CONTEXTS = (1024, 2048, 4096, 8192, 14336, 32768)
#: baseline TSL presets the paper sweeps
FIG16B_PRESETS = ("tsl_8k", "tsl_16k", "tsl_32k", "tsl_64k")


@dataclass
class SweepPoint:
    label: str
    reduction_percent: float


def run_fig16a(
    runner: Runner,
    workloads: Optional[Sequence[str]] = None,
    context_counts: Sequence[int] = FIG16A_CONTEXTS,
    jobs: int = 1,
) -> List[SweepPoint]:
    names = list(workloads) if workloads is not None else default_workloads("subset")
    if jobs > 1:
        cells = [(w, "tsl_64k", {}) for w in names]
        cells += [
            (w, "llbpx_0lat", {"num_contexts": contexts, "store_assoc": 64})
            for contexts in context_counts
            for w in names
        ]
        runner.run_cells(cells, jobs=jobs)
    points = []
    for contexts in context_counts:
        reductions = []
        for workload in names:
            base = runner.run_one(workload, "tsl_64k")
            improved = runner.run_one(
                workload,
                "llbpx_0lat",
                num_contexts=contexts,
                store_assoc=64,  # ~fully associative directory, as in the paper
            )
            reductions.append(reduction(base, improved))
        points.append(
            SweepPoint(label=f"{contexts // 1024}K ctx", reduction_percent=sum(reductions) / len(reductions))
        )
    for workload in names:
        runner.release(workload)
    return points


def run_fig16b(
    runner: Runner,
    workloads: Optional[Sequence[str]] = None,
    presets: Sequence[str] = FIG16B_PRESETS,
    jobs: int = 1,
) -> List[SweepPoint]:
    """Each point: LLBP-X over a smaller TSL, relative to that same TSL.

    Only the TSL baselines prewarm in parallel -- the LLBP-X-over-small-TSL
    runs are built directly on the bundle (no config name), so they stay
    in-process.
    """
    names = list(workloads) if workloads is not None else default_workloads("subset")
    if jobs > 1:
        runner.run_cells(
            [(w, preset, {}) for preset in presets for w in names], jobs=jobs
        )
    points = []
    for preset in presets:
        reductions = []
        for workload in names:
            bundle = runner.bundle(workload)
            tage_config = preset_by_name(preset, scale=runner.config.scale)
            base = runner.run_one(workload, preset)
            predictor = LLBPX(
                llbpx_default(scale=runner.config.scale, zero_latency=True),
                tage_config,
                bundle.tensors,
                bundle.contexts,
            )
            improved = simulate(
                predictor, bundle.trace, bundle.tensors,
                warmup_fraction=runner.config.warmup_fraction,
            )
            reductions.append(reduction(base, improved))
        points.append(SweepPoint(label=preset, reduction_percent=sum(reductions) / len(reductions)))
    for workload in names:
        runner.release(workload)
    return points


def format_fig16(points_a: Sequence[SweepPoint], points_b: Sequence[SweepPoint]) -> str:
    table_a = format_table(
        ["pattern store size", "MPKI reduction vs 64K TSL"],
        [[p.label, pct(p.reduction_percent)] for p in points_a],
        title="Fig 16a: LLBP-X pattern-store capacity sensitivity (paper: 10.5%..17.6%)",
    )
    table_b = format_table(
        ["baseline TSL", "LLBP-X MPKI reduction vs same TSL"],
        [[p.label, pct(p.reduction_percent)] for p in points_b],
        title="Fig 16b: baseline TAGE size sensitivity (paper: helps even 4x-smaller TAGE)",
    )
    return table_a + "\n\n" + table_b
