"""Fig 15: transfer bandwidth and energy, LLBP-X vs LLBP.

Paper values: LLBP-X moves 9.9 bits/instruction vs LLBP's 10.6 (-6.1%),
reads dominating (~5x the writes); energy rises 1.5% overall -- the
pattern store saves 5.4% but the new CTT adds 5.2%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.runner import Runner
from repro.experiments.report import default_workloads, format_table, pct
from repro.llbp.config import llbp_default, llbpx_default
from repro.metrics.bandwidth import BandwidthReport, bandwidth_report
from repro.metrics.energy import EnergyReport, energy_report


@dataclass
class Fig15Result:
    bandwidth: Dict[str, List[BandwidthReport]]  # config -> per-workload reports
    energy: Dict[str, List[EnergyReport]]


def run_fig15(
    runner: Runner, workloads: Optional[Sequence[str]] = None, jobs: int = 1
) -> Fig15Result:
    names = list(workloads) if workloads is not None else default_workloads("all")
    if jobs > 1:
        runner.run_cells([(w, c, {}) for w in names for c in ("llbp", "llbpx")], jobs=jobs)
    scale = runner.config.scale
    configs = {"llbp": llbp_default(scale=scale), "llbpx": llbpx_default(scale=scale)}
    bandwidth: Dict[str, List[BandwidthReport]] = {c: [] for c in configs}
    energy: Dict[str, List[EnergyReport]] = {c: [] for c in configs}
    for workload in names:
        for config_name, config in configs.items():
            result = runner.run_one(workload, config_name)
            bandwidth[config_name].append(bandwidth_report(result))
            energy[config_name].append(energy_report(result, config))
        runner.release(workload)
    return Fig15Result(bandwidth=bandwidth, energy=energy)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def format_fig15(result: Fig15Result) -> str:
    rows = []
    means: Dict[str, float] = {}
    for config_name, reports in result.bandwidth.items():
        reads = _mean([r.read_bits_per_instruction for r in reports])
        writes = _mean([r.write_bits_per_instruction for r in reports])
        means[config_name] = reads + writes
        rows.append([config_name, f"{reads:.2f}", f"{writes:.2f}", f"{reads + writes:.2f}"])
    delta = 100.0 * (means["llbpx"] / means["llbp"] - 1.0) if means.get("llbp") else 0.0
    bw_table = format_table(
        ["design", "read b/inst", "write b/inst", "total b/inst"],
        rows,
        title="Fig 15a: pattern store <-> pattern buffer transfer bandwidth",
    )
    bw_note = f"LLBP-X vs LLBP bandwidth: {pct(delta)} (paper -6.1%)"

    # energy: aggregate per structure across workloads
    structure_totals: Dict[str, Dict[str, float]] = {}
    for config_name, reports in result.energy.items():
        totals: Dict[str, float] = {}
        for report in reports:
            for structure, value in report.per_structure.items():
                totals[structure] = totals.get(structure, 0.0) + value
        structure_totals[config_name] = totals
    llbp_total = sum(structure_totals["llbp"].values())
    structures = sorted(set().union(*structure_totals.values()))
    rows = []
    for structure in structures:
        rows.append(
            [structure]
            + [
                f"{100 * structure_totals[c].get(structure, 0.0) / llbp_total:.1f}%"
                for c in ("llbp", "llbpx")
            ]
        )
    llbpx_total = sum(structure_totals["llbpx"].values())
    rows.append(["total", "100.0%", f"{100 * llbpx_total / llbp_total:.1f}%"])
    energy_table = format_table(
        ["structure", "llbp", "llbpx"],
        rows,
        title="Fig 15b: energy relative to total LLBP energy (paper: LLBP-X +1.5%)",
    )
    return bw_table + "\n" + bw_note + "\n\n" + energy_table
