"""Shared report formatting for the experiment harnesses.

Every experiment module returns structured results plus a
``format_*`` function producing the text table its benchmark prints, so
``pytest benchmarks/ --benchmark-only`` regenerates the paper's rows.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

from repro.traces.workloads import GEM5_WORKLOAD_NAMES, WORKLOAD_NAMES


def hrule(width: int = 78) -> str:
    return "-" * width


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = "") -> str:
    """Fixed-width text table with right-aligned numeric-ish columns."""
    materialised: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append(hrule(sum(widths) + 2 * len(widths)))
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(value: float, signed: bool = True) -> str:
    return f"{value:+.1f}%" if signed else f"{value:.1f}%"


def default_workloads(kind: str = "all") -> List[str]:
    """Workload set selection honouring the ``REPRO_WORKLOADS`` env knob.

    ``kind`` picks the paper's set for the experiment (``all`` = Table I's
    14, ``gem5`` = the 10 the gem5 evaluation covers, ``subset`` = a
    3-workload sample for expensive sweeps); setting ``REPRO_WORKLOADS=quick``
    trims every set to at most 3 for fast benchmark runs.
    """
    if kind == "gem5":
        names = list(GEM5_WORKLOAD_NAMES)
    elif kind == "subset":
        names = ["kafka", "nodeapp", "whiskey"]
    else:
        names = list(WORKLOAD_NAMES)
    if os.environ.get("REPRO_WORKLOADS", "").lower() == "quick":
        names = names[:3]
    return names


def default_branches() -> int:
    """Trace length for experiment runs (``REPRO_BRANCHES`` env override)."""
    return int(os.environ.get("REPRO_BRANCHES", "120000"))
