"""Fig 5: the limit-study ladder over the 0-latency LLBP.

Paper step reductions: +No Design Tweaks 4.6%, +20b Tag 1.3%,
+Inf Contexts 3.9%, +Inf Patterns 9.1%, +No Contextualization 4.3%.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.limit_study import LimitStep, run_limit_study
from repro.core.runner import Runner
from repro.experiments.report import default_workloads, format_table, pct

PAPER_STEP_REDUCTIONS = {
    "+No Design Tweaks": 4.6,
    "+20b Tag": 1.3,
    "+Inf Contexts": 3.9,
    "+Inf Patterns": 9.1,
    "+No Contextualization": 4.3,
}


def run_fig05(
    runner: Runner, workloads: Optional[Sequence[str]] = None, jobs: int = 1
) -> List[LimitStep]:
    names = list(workloads) if workloads is not None else default_workloads("subset")
    return run_limit_study(runner, names, jobs=jobs)


def format_fig05(steps: Sequence[LimitStep]) -> str:
    body = []
    for step in steps:
        paper = PAPER_STEP_REDUCTIONS.get(step.label)
        body.append(
            [
                step.label,
                f"{step.mpki:.3f}",
                f"{step.normalized:.3f}",
                pct(step.step_reduction) if step.label != "LLBP-0Lat" else "-",
                pct(paper) if paper is not None else "-",
            ]
        )
    return format_table(
        ["configuration", "MPKI", "norm. to LLBP-0Lat", "step red.", "paper step red."],
        body,
        title="Fig 5: successively removing LLBP's design constraints",
    )
