"""Tables I and II of the paper.

Table I lists the workloads with their 64K-TSL branch MPKI; Table II the
simulated processor parameters.  Table I also records the paper's
reference MPKI so reports can show paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.runner import Runner
from repro.experiments.report import default_workloads, format_table
from repro.timing.machines import TABLE_II

#: Table I of the paper: application -> 64K-TSL branch MPKI on real traces
PAPER_TABLE_I: Dict[str, float] = {
    "nodeapp": 4.43,
    "phpwiki": 3.08,
    "tpcc": 3.74,
    "twitter": 3.03,
    "wikipedia": 2.52,
    "kafka": 0.26,
    "spring": 3.58,
    "tomcat": 3.40,
    "chirper": 0.48,
    "finagle_http": 2.81,
    "charlie": 2.89,
    "delta": 1.09,
    "merced": 4.13,
    "whiskey": 5.38,
}


@dataclass
class TableIRow:
    workload: str
    measured_mpki: float
    paper_mpki: float


def run_table1(
    runner: Runner, workloads: Optional[Sequence[str]] = None, jobs: int = 1
) -> List[TableIRow]:
    """Measure 64K-TSL MPKI per workload (the baseline of everything)."""
    names = list(workloads) if workloads is not None else default_workloads("all")
    if jobs > 1:
        runner.run_cells([(w, "tsl_64k", {}) for w in names], jobs=jobs)
    rows = []
    for name in names:
        result = runner.run_one(name, "tsl_64k")
        rows.append(TableIRow(name, result.mpki, PAPER_TABLE_I.get(name, float("nan"))))
    return rows


def format_table1(rows: Sequence[TableIRow]) -> str:
    mean_measured = sum(r.measured_mpki for r in rows) / len(rows)
    mean_paper = sum(r.paper_mpki for r in rows) / len(rows)
    body = [[r.workload, f"{r.measured_mpki:.2f}", f"{r.paper_mpki:.2f}"] for r in rows]
    body.append(["average", f"{mean_measured:.2f}", f"{mean_paper:.2f}"])
    return format_table(
        ["workload", "measured MPKI (64K TSL)", "paper MPKI"],
        body,
        title="Table I: workloads with branch MPKI for 64K TSL",
    )


def format_table2() -> str:
    """Table II verbatim (the simulated-processor parameters)."""
    return format_table(
        ["component", "configuration"],
        [[k, v] for k, v in TABLE_II.items()],
        title="Table II: parameters of the simulated processor",
    )
