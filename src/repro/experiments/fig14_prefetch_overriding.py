"""Fig 14: prefetch effectiveness, false-path effects, overriding scheme.

(a) classifies LLBP-X's prefetches into timely / late / never-used, with
and without wrong-path prefetches (paper: 84% timely, ~40% over-prefetch;
omitting false-path prefetches cuts over-prefetches by 56% but costs 8%
coverage and 1.4% accuracy).

(b) models the overriding pipeline: the bimodal and the PB answer in one
cycle; TAGE/SC overrides cost a 3-cycle redirect.  Paper: LLBP-X +1.4%
vs 128K TSL +0.6% over the 64K baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.runner import Runner
from repro.experiments.report import default_workloads, format_table, pct
from repro.metrics.prefetch import PrefetchReport, prefetch_report
from repro.timing.machines import table_ii_machine
from repro.timing.pipeline import speedup


@dataclass
class Fig14aResult:
    with_false_path: PrefetchReport
    without_false_path: PrefetchReport
    accuracy_drop_percent: float  # MPKI increase from dropping FP prefetches


def run_fig14a(
    runner: Runner, workloads: Optional[Sequence[str]] = None, jobs: int = 1
) -> List[Fig14aResult]:
    names = list(workloads) if workloads is not None else default_workloads("gem5")
    if jobs > 1:
        runner.run_cells(
            [
                (w, "llbpx", overrides)
                for w in names
                for overrides in (
                    {"model_false_path": True},
                    {"model_false_path": True, "flush_false_path": True},
                )
            ],
            jobs=jobs,
        )
    results = []
    for workload in names:
        with_fp = runner.run_one(workload, "llbpx", model_false_path=True)
        without_fp = runner.run_one(
            workload, "llbpx", model_false_path=True, flush_false_path=True
        )
        drop = 100.0 * (without_fp.mpki / with_fp.mpki - 1.0) if with_fp.mpki else 0.0
        results.append(
            Fig14aResult(
                with_false_path=prefetch_report(with_fp),
                without_false_path=prefetch_report(without_fp),
                accuracy_drop_percent=drop,
            )
        )
        runner.release(workload)
    return results


def format_fig14a(results: Sequence[Fig14aResult]) -> str:
    def aggregate(reports: Sequence[PrefetchReport]) -> PrefetchReport:
        return PrefetchReport(
            predictor=reports[0].predictor,
            workload="all",
            timely=sum(r.timely for r in reports),
            late=sum(r.late for r in reports),
            unused=sum(r.unused for r in reports),
            false_path_issued=sum(r.false_path_issued for r in reports),
        )

    with_fp = aggregate([r.with_false_path for r in results])
    without_fp = aggregate([r.without_false_path for r in results])
    over_reduction = (
        100.0 * (1.0 - without_fp.unused / with_fp.unused) if with_fp.unused else 0.0
    )
    # coverage compares *absolute* useful-prefetch volume, as in the paper
    covered_with = with_fp.timely + with_fp.late
    covered_without = without_fp.timely + without_fp.late
    coverage_drop = 100.0 * (1.0 - covered_without / covered_with) if covered_with else 0.0
    accuracy = sum(r.accuracy_drop_percent for r in results) / len(results)
    body = [
        [
            "with false path",
            f"{100 * with_fp.timely_fraction:.1f}%",
            f"{100 * with_fp.late_fraction:.1f}%",
            f"{100 * with_fp.unused_fraction:.1f}%",
        ],
        [
            "without false path",
            f"{100 * without_fp.timely_fraction:.1f}%",
            f"{100 * without_fp.late_fraction:.1f}%",
            f"{100 * without_fp.unused_fraction:.1f}%",
        ],
    ]
    table = format_table(
        ["variant", "timely", "late", "unused"],
        body,
        title="Fig 14a: prefetch effectiveness (paper: 84% timely, ~40% over-prefetch)",
    )
    return table + (
        f"\nomitting false-path prefetches: over-prefetch {pct(-over_reduction)} "
        f"(paper -56%), coverage {pct(-coverage_drop)} (paper -8%), "
        f"MPKI {pct(accuracy)} (paper +1.4%)"
    )


@dataclass
class Fig14bRow:
    workload: str
    speedups: Dict[str, float] = field(default_factory=dict)


FIG14B_CONFIGS = ("tsl_128k", "llbpx")


def run_fig14b(
    runner: Runner, workloads: Optional[Sequence[str]] = None, jobs: int = 1
) -> List[Fig14bRow]:
    names = list(workloads) if workloads is not None else default_workloads("gem5")
    if jobs > 1:
        runner.run_cells(
            [(w, c, {}) for w in names for c in ("tsl_64k", *FIG14B_CONFIGS)], jobs=jobs
        )
    machine = table_ii_machine()
    rows = []
    for workload in names:
        base = runner.run_one(workload, "tsl_64k")
        row = Fig14bRow(workload=workload)
        for config in FIG14B_CONFIGS:
            improved = runner.run_one(workload, config)
            row.speedups[config] = speedup(base, improved, machine, model_overriding=True)
        rows.append(row)
        runner.release(workload)
    return rows


def format_fig14b(rows: Sequence[Fig14bRow]) -> str:
    body = [[r.workload] + [pct(r.speedups[c]) for c in FIG14B_CONFIGS] for r in rows]
    body.append(
        ["average"]
        + [pct(sum(r.speedups[c] for r in rows) / len(rows)) for c in FIG14B_CONFIGS]
    )
    body.append(["paper avg", pct(0.6), pct(1.4)])
    return format_table(
        ["workload"] + [f"{c} speedup" for c in FIG14B_CONFIGS],
        body,
        title="Fig 14b: speedups under a 3-cycle overriding scheme",
    )
