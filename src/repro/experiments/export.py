"""CSV export of figure series.

The benchmarks print text tables; this module exports the same series as
CSV files so they can be plotted or diffed externally (the paper's
artifact uses a Jupyter notebook for the same purpose).  Each exporter
takes the structured results of the corresponding ``run_*`` function.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Sequence, Union

from repro.core.analysis import ContextProfile
from repro.experiments.fig12_mpki_reduction import Fig12Row
from repro.experiments.fig04_llbp_accuracy import Fig4Row

PathLike = Union[str, Path]


def _write(path: PathLike, header: Sequence[str], rows) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_reduction_rows(
    rows: Sequence[Union[Fig4Row, Fig12Row]], path: PathLike
) -> Path:
    """Export Fig 4/12-style per-workload reduction tables."""
    if not rows:
        raise ValueError("nothing to export")
    configs = sorted(rows[0].reductions)
    return _write(
        path,
        ["workload", "baseline_mpki"] + configs,
        [
            [row.workload, f"{row.baseline_mpki:.4f}"]
            + [f"{row.reductions[c]:.3f}" for c in configs]
            for row in rows
        ],
    )


def export_context_profile(profile: ContextProfile, path: PathLike) -> Path:
    """Export the Fig 6/7 sorted per-context series."""
    return _write(
        path,
        ["rank", "useful_patterns", "avg_history_length"],
        [
            [rank, count, f"{length:.2f}"]
            for rank, (count, length) in enumerate(zip(profile.counts, profile.avg_lengths))
        ],
    )


def export_per_length_series(
    series: Dict[int, Dict[int, float]], path: PathLike, value_name: str = "value"
) -> Path:
    """Export Fig 8/9-style ``{W: {history_length: value}}`` series."""
    depths = sorted(series)
    lengths = sorted({length for per in series.values() for length in per})
    return _write(
        path,
        ["history_length"] + [f"{value_name}_W{d}" for d in depths],
        [
            [length] + [f"{series[d].get(length, 0.0):.4f}" for d in depths]
            for length in lengths
        ],
    )
