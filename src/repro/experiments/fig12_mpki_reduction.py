"""Fig 12: the headline result -- LLBP-X vs LLBP vs Opt-W vs 512K TSL.

Paper values: LLBP-X reduces MPKI by 1.4-27% (avg 12.1%) vs 64K TSL, a
36% improvement over LLBP (avg 8.8%); Opt-W reaches 12.6% avg; the
idealised 512K TSL 27.5%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.runner import Runner, reduction
from repro.experiments.report import default_workloads, format_table, pct

FIG12_CONFIGS = ("llbp", "llbpx", "llbpx_optw", "tsl_512k")

PAPER_AVERAGES = {"llbp": 8.8, "llbpx": 12.1, "llbpx_optw": 12.6, "tsl_512k": 27.5}


@dataclass
class Fig12Row:
    workload: str
    baseline_mpki: float
    reductions: Dict[str, float] = field(default_factory=dict)

    @property
    def llbpx_gain_over_llbp(self) -> float:
        """LLBP-X's relative accuracy gain over LLBP (the paper's 0.8-11.5%)."""
        llbp_mpki = self.baseline_mpki * (1 - self.reductions["llbp"] / 100)
        llbpx_mpki = self.baseline_mpki * (1 - self.reductions["llbpx"] / 100)
        if llbp_mpki == 0:
            return 0.0
        return 100.0 * (llbp_mpki - llbpx_mpki) / llbp_mpki


def run_fig12(
    runner: Runner,
    workloads: Optional[Sequence[str]] = None,
    configs: Sequence[str] = FIG12_CONFIGS,
    jobs: int = 1,
) -> List[Fig12Row]:
    names = list(workloads) if workloads is not None else default_workloads("all")
    if jobs > 1:
        runner.run_cells(
            [(w, c, {}) for w in names for c in ("tsl_64k", *configs)], jobs=jobs
        )
    rows: List[Fig12Row] = []
    for workload in names:
        base = runner.run_one(workload, "tsl_64k")
        row = Fig12Row(workload=workload, baseline_mpki=base.mpki)
        for config in configs:
            row.reductions[config] = reduction(base, runner.run_one(workload, config))
        rows.append(row)
        runner.release(workload)
    return rows


def format_fig12(rows: Sequence[Fig12Row], configs: Sequence[str] = FIG12_CONFIGS) -> str:
    body = []
    for row in rows:
        body.append(
            [row.workload, f"{row.baseline_mpki:.2f}"]
            + [pct(row.reductions[c]) for c in configs]
            + [pct(row.llbpx_gain_over_llbp)]
        )
    averages = ["average", ""]
    for config in configs:
        averages.append(pct(sum(r.reductions[config] for r in rows) / len(rows)))
    averages.append(pct(sum(r.llbpx_gain_over_llbp for r in rows) / len(rows)))
    body.append(averages)
    body.append(
        ["paper avg", ""]
        + [pct(PAPER_AVERAGES.get(c, float("nan"))) for c in configs]
        + [pct(3.6)]
    )
    return format_table(
        ["workload", "64K MPKI"] + [f"{c} red." for c in configs] + ["X-over-LLBP"],
        body,
        title="Fig 12: branch misprediction reduction over 64K TSL",
    )
