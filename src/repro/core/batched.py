"""Config-batched execution engine: shared-base groups over one bundle.

The batched backend exploits the lane-invariance of the TAGE core and
loop predictor (see :mod:`repro.tage.batched_state`): matrix cells over
one workload bundle whose predictors share a base
:class:`~repro.tage.config.TageConfig` -- a Fig-16 capacity sweep's
LLBP-X lanes, or a ``tsl_64k``/``llbp``/``llbpx`` column -- are executed
as one *group*.  The group pays the shared TAGE+loop base exactly once
(recording its per-branch outputs), then runs each lane as a replay tail
over only that lane's divergent state (SC, pattern store/buffer, CTT).
With an :class:`~repro.core.artifacts.ArtifactStore` attached the
recording is persisted and the base is paid once *ever* per (bundle,
base config): later runs -- and peer ``--join`` hosts -- adopt the
stored stream and run tail-only, including warm singletons.

Why record/replay rather than the numpy-stacked lane state the ROADMAP
sketched: at realistic lane counts (2-8) the per-branch cost of even one
vectorised gather/scatter (~0.5-1us in numpy) exceeds the whole fused
Python step, so stacking loses throughput while record/replay removes
the genuinely redundant work -- the shared base is ~55% of a fused TSL
step and every lane of a group repeats it.  The numpy array holding the
recorded stream *is* the stacked state's degenerate (shared) axis; the
divergent structures stay as the reference implementations so
bit-identity is by construction, pinned by
``tests/test_batched_equivalence.py``.

Structurally divergent configurations -- infinite-capacity cells
(``tsl_inf``) and the profile-then-replay ``llbpx_optw`` -- cannot share
a base and fall back lane-by-lane to the reference backend
(``backend.fallbacks`` counts them).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.llbp.batched_state import build_llbp_tail
from repro.obs.metrics import registry as obs_registry
from repro.obs.sampling import active_sampler
from repro.obs.spans import span
from repro.core.simulator import SimulationResult, simulate
from repro.tage.batched_state import SharedBase, batchable_config
from repro.tage.config import TageConfig, preset_by_name, tsl_64k

if TYPE_CHECKING:
    from repro.core.runner import Cell, Runner

#: LLBP-family configurations that run on the shared ``tsl_64k`` base
BATCHABLE_LLBP = ("llbp", "llbp_0lat", "llbpx", "llbpx_0lat")


def base_config(name: str, scale: int) -> Optional[TageConfig]:
    """The shared-base TAGE configuration of a cell, or ``None``.

    ``None`` marks a structurally non-batchable cell: infinite-capacity
    presets, the multi-pass ``llbpx_optw``, and unknown names -- all of
    which the caller must route to the reference backend.
    """
    if name.startswith("tsl_"):
        try:
            config = preset_by_name(name, scale=scale)
        except KeyError:
            return None
        return config if batchable_config(config) else None
    if name in BATCHABLE_LLBP:
        return tsl_64k(scale=scale)
    return None


@dataclass
class BatchPlan:
    """Partition of one workload's cells into batched groups and the rest.

    ``groups`` hold cells sharing a base config (each a batched task);
    ``singles`` run on the reference backend; ``fallbacks`` counts the
    structurally non-batchable cells among the singles (the
    ``backend.fallbacks`` metric).
    """

    groups: List[List["Cell"]]
    singles: List["Cell"]
    fallbacks: int

    @property
    def lanes(self) -> int:
        return sum(len(group) for group in self.groups)


def plan_batches(
    cells: Sequence["Cell"],
    scale: int,
    min_lanes: int = 2,
    base_warm: Optional[Callable[[str, TageConfig], bool]] = None,
) -> BatchPlan:
    """Group one workload's cells by shared base configuration.

    ``min_lanes`` is the smallest group worth batching: ``auto`` uses 2
    (a *cold* singleton gains nothing over reference), forcing
    ``batched`` uses 1 so even lone cells exercise the batched engine.
    ``base_warm(workload, base_config)`` relaxes the floor per group: a
    singleton whose base stream is already persisted runs tail-only --
    replaying a loaded stream beats re-simulating the base, so the warm
    path batches it regardless of ``min_lanes``.  Order inside a group
    and among singles follows first appearance.
    """
    by_base: Dict[TageConfig, List["Cell"]] = {}
    singles: List["Cell"] = []
    fallbacks = 0
    for cell in cells:
        config = base_config(cell[1], scale)
        if config is None:
            singles.append(cell)
            fallbacks += 1
        else:
            by_base.setdefault(config, []).append(cell)
    groups: List[List["Cell"]] = []
    for config, grouped in by_base.items():
        if len(grouped) >= min_lanes or (
            base_warm is not None and base_warm(grouped[0][0], config)
        ):
            groups.append(grouped)
        else:
            singles.extend(grouped)
    return BatchPlan(groups=groups, singles=singles, fallbacks=fallbacks)


@dataclass
class LaneOutcome:
    """One lane's result within a batched group.

    ``seconds`` is the lane's attributable wall time: its own tail
    simulation plus an equal share of the group's shared-base pass --
    the number the :class:`~repro.core.results_io.TimingStore` observes
    under the ``batched`` backend key.
    """

    cell: "Cell"
    result: SimulationResult
    seconds: float
    backend: str = "batched"
    #: whether the group's base stream was adopted from the artifact
    #: store (tail-only replay) instead of freshly recorded
    base_warm: bool = False
    #: the lane's predictor instance (full final table state, for
    #: equivalence tests); dropped before results cross process borders
    predictor: Optional[object] = None


def run_group(runner: "Runner", workload: str, cells: Sequence["Cell"]) -> List[LaneOutcome]:
    """Execute one batched group: shared base once, then each lane's tail.

    Every cell must share ``base_config`` (callers use
    :func:`plan_batches`).  When the runner has an artifact store and it
    holds this (bundle, base config) stream, the base pass is skipped
    entirely -- the stream is adopted ``mmap``-backed and only the lane
    tails run; a freshly recorded stream is persisted for every later
    run.  Per-lane *results* -- counts, stats, extra -- are bit-identical
    to the reference backend either way; final predictor *table state*
    matches only on the record path (an adopted base leaves the shared
    core/loop untrained, which tails never read).  Span names
    ``cell``/``simulate`` match the reference path (with a ``backend``
    attribute) so observability tooling sees one tree shape regardless
    of backend.
    """
    cells = list(cells)
    config = base_config(cells[0][1], runner.config.scale)
    if config is None:
        raise ValueError(f"cell {cells[0][1]!r} has no batchable base config")
    registry = obs_registry()
    outcomes: List[LaneOutcome] = []
    with span("backend.batched", workload=workload, lanes=len(cells), base=config.name):
        group_start = time.perf_counter()
        bundle = runner.bundle(workload)
        shared = SharedBase(config, bundle.tensors)
        artifacts = runner.artifacts
        packed = None
        if artifacts is not None:
            packed = artifacts.load_base_stream(
                workload, runner.config, config, expected_length=len(bundle.trace)
            )
        if packed is not None:
            with span("backend.base", workload=workload, base=config.name, mode="load"):
                shared.adopt_stream(packed)
            registry.counter("backend.base_loads").inc()
        else:
            with span("backend.base", workload=workload, base=config.name, mode="record"):
                shared.record(bundle.trace, bundle.tensors)
            registry.counter("backend.base_records").inc()
            if artifacts is not None:
                artifacts.save_base_stream(workload, runner.config, config, shared.packed_stream())
        registry.counter("backend.base_bytes").inc(shared.footprint_bytes())
        base_seconds = time.perf_counter() - group_start
        base_share = base_seconds / len(cells)
        registry.counter("backend.batched.groups").inc()
        registry.counter("backend.batched.lanes").inc(len(cells))
        registry.histogram("backend.batched.group_lanes").observe(len(cells))
        sampler = active_sampler()
        for cell in cells:
            _, name, overrides = cell
            with span("cell", workload=workload, config=name, backend="batched"):
                lane_start = time.perf_counter()
                predictor = runner.build_predictor(name, bundle, shared_base=shared, **overrides)
                if name.startswith("tsl_"):
                    tail = shared.build_tsl_tail(predictor)
                else:
                    tail = build_llbp_tail(predictor, shared)
                if sampler is not None:
                    tail = sampler.instrument(name, tail, predictor.telemetry_sample)
                # the tail *replaces* the default kernel: the lane's own
                # step closure would advance the shared core a second time
                predictor.step = tail
                with span("simulate", workload=workload, config=name, backend="batched"):
                    result = simulate(
                        predictor,
                        bundle.trace,
                        bundle.tensors,
                        warmup_fraction=runner.config.warmup_fraction,
                        use_step=True,
                    )
                result.predictor = name
                elapsed = (time.perf_counter() - lane_start) + base_share
                runner.sim_count += 1
                runner.sim_seconds += elapsed
                registry.counter("runner.simulations").inc()
                registry.counter("runner.branches").inc(runner.config.num_branches)
                registry.histogram("cell.seconds").observe(elapsed)
                outcomes.append(
                    LaneOutcome(
                        cell=cell,
                        result=result,
                        seconds=elapsed,
                        base_warm=shared.adopted,
                        predictor=predictor,
                    )
                )
    return outcomes
