"""Structured reports of how a matrix run actually went.

A matrix that completed after retrying crashed workers is *not* the same
run as one that completed cleanly, even though both return bit-identical
results -- and for campaign-scale reproductions the difference matters
(a host that OOM-kills one cell per figure deserves investigation before
it eats a week-long sweep).  :class:`RunReport` records, per cell, how
many executions were attempted, which failures were observed (worker
crash, raised exception, timeout), and how long the successful attempt
took; plus run-level counters (pool rebuilds, timeouts, whether the run
degraded to serial fallback) and -- at serialization time -- the result
cache / artifact store health counters (hits, quarantined entries, swept
temps).

The report is owned by the :class:`~repro.core.runner.Runner`
(``runner.report``) and accumulates across ``run_cells`` calls within
one runner's lifetime, which matches one CLI invocation.  ``--report
PATH`` serialises it as JSON; the end-of-run summary line is
:meth:`RunReport.summary`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.results_io import freeze_overrides
from repro.obs.telemetry import emit_event

REPORT_FORMAT_VERSION = 1


@dataclass
class CellReport:
    """Execution record of one (workload, config, overrides) cell.

    ``attempts`` counts execution *starts* (including ones later killed
    by an unrelated failure); ``retries`` counts re-executions charged to
    this cell's own failures; ``interruptions`` counts re-executions
    where the cell was an innocent victim of another cell's incident
    (e.g. a pool rebuild) -- those do not consume the retry budget.
    """

    workload: str
    config: str
    overrides: str = ""
    source: str = ""  # "cached" | "simulated" | "" (never resolved)
    backend: str = ""  # "reference" | "batched" | "" (cached / never resolved)
    #: batched lane that adopted a persisted base stream (tail-only replay)
    base_warm: bool = False
    attempts: int = 0
    retries: int = 0
    interruptions: int = 0
    seconds: float = 0.0
    failures: List[Dict[str, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "config": self.config,
            "overrides": self.overrides,
            "source": self.source,
            "backend": self.backend,
            "base_warm": self.base_warm,
            "attempts": self.attempts,
            "retries": self.retries,
            "interruptions": self.interruptions,
            "seconds": self.seconds,
            "failures": list(self.failures),
        }


class RunReport:
    """Aggregates per-cell execution records and run-level counters."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, str, str], CellReport] = {}
        self.pool_rebuilds = 0
        self.timeouts = 0
        self.serial_fallback = False
        #: the run was interrupted (Ctrl-C, or a service job cancellation)
        #: before every cell resolved -- recorded results are still valid
        self.interrupted = False
        #: lane count of every batched group executed this run
        self.batched_group_sizes: List[int] = []
        #: (predicted, actual) seconds per completed cell -- the cost
        #: model's scheduling estimates scored against reality
        self.predictions: List[Tuple[float, float]] = []
        #: which estimator produced the predictions ("heuristic"/"learned")
        self.cost_model_kind = ""
        #: multi-host scheduling counters (set by repro.core.sched)
        self.host_id = ""
        self.claims = 0
        self.peer_results = 0
        self.reaped_claims = 0
        self.started_at = time.time()

    # -- recording ----------------------------------------------------------

    @staticmethod
    def _overrides_token(overrides: Optional[Mapping[str, object]]) -> str:
        frozen = freeze_overrides(overrides)
        return repr(frozen) if frozen else ""

    def cell(
        self,
        workload: str,
        config: str,
        overrides: Optional[Mapping[str, object]] = None,
    ) -> CellReport:
        token = self._overrides_token(overrides)
        key = (workload, config, token)
        if key not in self._cells:
            self._cells[key] = CellReport(workload=workload, config=config, overrides=token)
        return self._cells[key]

    def record_cached(
        self, workload: str, config: str, overrides: Optional[Mapping[str, object]] = None
    ) -> None:
        """The cell resolved from the memo or disk cache -- no execution."""
        entry = self.cell(workload, config, overrides)
        if not entry.source:
            entry.source = "cached"

    def record_attempt(
        self, workload: str, config: str, overrides: Optional[Mapping[str, object]] = None
    ) -> None:
        entry = self.cell(workload, config, overrides)
        entry.attempts += 1
        emit_event("cell-attempt", workload=workload, config=config, attempt=entry.attempts)

    def record_failure(
        self,
        workload: str,
        config: str,
        overrides: Optional[Mapping[str, object]],
        kind: str,
        detail: str,
    ) -> None:
        """A failure charged to this cell (consumes its retry budget)."""
        entry = self.cell(workload, config, overrides)
        entry.failures.append({"kind": kind, "detail": detail})
        entry.retries += 1
        emit_event(
            "cell-failure",
            workload=workload,
            config=config,
            kind=kind,
            detail=detail,
            attempt=entry.attempts,
        )

    def record_interruption(
        self, workload: str, config: str, overrides: Optional[Mapping[str, object]] = None
    ) -> None:
        """The cell's execution was collateral damage of another failure."""
        self.cell(workload, config, overrides).interruptions += 1
        emit_event("cell-interruption", workload=workload, config=config)

    def record_success(
        self,
        workload: str,
        config: str,
        overrides: Optional[Mapping[str, object]],
        seconds: float,
        backend: str = "reference",
        base_warm: bool = False,
    ) -> None:
        entry = self.cell(workload, config, overrides)
        entry.source = "simulated"
        entry.backend = backend
        entry.base_warm = base_warm
        entry.seconds += seconds
        emit_event(
            "cell-success", workload=workload, config=config, seconds=seconds, backend=backend
        )

    def record_batched_group(self, lanes: int) -> None:
        """A batched group of ``lanes`` cells executed over one shared base."""
        self.batched_group_sizes.append(int(lanes))
        emit_event("batched-group", lanes=lanes)

    def record_prediction(self, predicted: float, actual: float) -> None:
        """Score one completed cell's scheduling estimate against reality."""
        self.predictions.append((float(predicted), float(actual)))

    def record_claim(self, cells: int) -> None:
        """This host claimed ``cells`` cells from the shared ledger."""
        self.claims += int(cells)

    def record_peer_result(self, cells: int = 1) -> None:
        """``cells`` cells arrived via a peer host's published results."""
        self.peer_results += int(cells)

    def record_reap(self, cells: int = 1) -> None:
        """``cells`` stale claims of a dead host were reaped for re-claim."""
        self.reaped_claims += int(cells)

    def record_interrupted(self) -> None:
        """The run stopped before completion (interrupt or cancellation)."""
        self.interrupted = True
        emit_event("run-interrupted-report")

    # -- aggregates ---------------------------------------------------------

    def cells(self) -> List[CellReport]:
        return [self._cells[key] for key in sorted(self._cells)]

    @property
    def total_retries(self) -> int:
        return sum(entry.retries for entry in self._cells.values())

    @property
    def total_failures(self) -> int:
        return sum(len(entry.failures) for entry in self._cells.values())

    @property
    def total_interruptions(self) -> int:
        return sum(entry.interruptions for entry in self._cells.values())

    def prediction_stats(self) -> Dict[str, object]:
        """Predicted-vs-actual accuracy of the scheduling cost model.

        MAPE over completed cells; zero-duration actuals are skipped
        (nothing meaningful to divide by).
        """
        errors = [
            abs(predicted - actual) / actual
            for predicted, actual in self.predictions
            if actual > 0
        ]
        return {
            "kind": self.cost_model_kind,
            "predictions": len(errors),
            "mape_percent": round(100.0 * sum(errors) / len(errors), 2) if errors else None,
        }

    def totals(self) -> Dict[str, object]:
        cells = list(self._cells.values())
        return {
            "cells": len(cells),
            "cached": sum(1 for entry in cells if entry.source == "cached"),
            "simulated": sum(1 for entry in cells if entry.source == "simulated"),
            "attempts": sum(entry.attempts for entry in cells),
            "retries": self.total_retries,
            "interruptions": self.total_interruptions,
            "failures": self.total_failures,
            "seconds": sum(entry.seconds for entry in cells),
            "batched_groups": len(self.batched_group_sizes),
            "batched_lanes": sum(self.batched_group_sizes),
            "base_warm": sum(1 for entry in cells if entry.base_warm),
        }

    # -- serialisation ------------------------------------------------------

    def to_dict(self, runner=None) -> Dict[str, object]:
        """JSON-able report; ``runner`` contributes cache/artifact health.

        ``quarantined`` is surfaced at the top level (result-cache plus
        artifact-store quarantines) because it is the number an operator
        triages first: non-zero means on-disk state was damaged and
        healed this run.
        """
        data: Dict[str, object] = {
            "version": REPORT_FORMAT_VERSION,
            "started_at": self.started_at,
            "cells": [entry.to_dict() for entry in self.cells()],
            "totals": self.totals(),
            "pool_rebuilds": self.pool_rebuilds,
            "timeouts": self.timeouts,
            "serial_fallback": self.serial_fallback,
            "interrupted": self.interrupted,
            "batched_group_sizes": list(self.batched_group_sizes),
            "cost_model": self.prediction_stats(),
            "quarantined": 0,
        }
        if self.host_id:
            data["distributed"] = {
                "host_id": self.host_id,
                "claims": self.claims,
                "peer_results": self.peer_results,
                "reaped_claims": self.reaped_claims,
            }
        if runner is not None:
            data["simulations"] = runner.sim_count
            quarantined = 0
            if runner.cache is not None:
                data["cache"] = runner.cache.stats()
                quarantined += runner.cache.quarantined
            if runner.artifacts is not None:
                data["artifacts"] = runner.artifacts.stats()
                quarantined += runner.artifacts.quarantined
            data["quarantined"] = quarantined
        return data

    def summary(self, runner=None) -> str:
        """One-line end-of-run summary (grep-friendly ``key=value`` pairs)."""
        totals = self.totals()
        sizes = self.batched_group_sizes
        line = (
            f"run report: cells={totals['cells']} cached={totals['cached']} "
            f"simulated={totals['simulated']} retries={totals['retries']} "
            f"timeouts={self.timeouts} pool_rebuilds={self.pool_rebuilds} "
            f"serial_fallback={'yes' if self.serial_fallback else 'no'} "
            f"batched_groups={len(sizes)} batched_lanes={sum(sizes)} "
            f"max_group_lanes={max(sizes) if sizes else 0} "
            f"base_warm={totals['base_warm']}"
        )
        if self.interrupted:
            line += " interrupted=yes"
        stats = self.prediction_stats()
        if stats["mape_percent"] is not None:
            line += f" cost_model={stats['kind'] or 'heuristic'} cost_mape={stats['mape_percent']}%"
        if self.host_id:
            line += (
                f" host={self.host_id} claims={self.claims} "
                f"peer_results={self.peer_results} reaped_claims={self.reaped_claims}"
            )
        if runner is not None:
            quarantined = 0
            if runner.cache is not None:
                quarantined += runner.cache.quarantined
            if runner.artifacts is not None:
                quarantined += runner.artifacts.quarantined
            line += f" quarantined={quarantined}"
        return line
