"""Multi-configuration experiment runner.

The runner knows how to build every predictor configuration the paper
evaluates by name (``"tsl_64k"``, ``"llbp"``, ``"llbpx"``,
``"llbpx_optw"``, ``"tsl_512k"``, ``"tsl_inf"``, ...), shares the
expensive per-trace precomputation (tensors, context streams) across
configurations, and caches results per ``(workload, config, run
parameters)`` so experiment harnesses that overlap -- Table I's baseline
runs reappear in Figs 4 and 12, for instance -- only simulate once.

``llbpx_optw`` implements the paper's *Opt-W* upper bound via
profile-then-replay: a dynamic LLBP-X run discovers which contexts
transitioned to the deep depth; two oracle replays (all-shallow, and
deep-for-transitioned) are evaluated and the better one reported.  Both
replays fix every context's depth ahead of time, which is exactly the
paper's definition; dynamic adaptation may still occasionally win (the
paper observes this for Chirper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.simulator import SimulationResult, simulate
from repro.llbp import LLBP, LLBPX, ContextStreams, llbp_default, llbpx_default
from repro.tage import TageConfig, TageSCL, TraceTensors, preset_by_name, tsl_64k
from repro.traces import Trace, generate_workload

#: default capacity scale of the scaled universe (DESIGN.md §1)
DEFAULT_SCALE = 8
#: default trace length (branches) for experiment runs
DEFAULT_BRANCHES = 120_000


@dataclass(frozen=True)
class RunnerConfig:
    """Run parameters shared by all configurations of one study."""

    scale: int = DEFAULT_SCALE
    num_branches: int = DEFAULT_BRANCHES
    warmup_fraction: float = 0.25
    seed: Optional[int] = None  # workload seed override


@dataclass
class WorkloadBundle:
    """Shared per-trace state reused across predictor configurations."""

    trace: Trace
    tensors: TraceTensors
    contexts: ContextStreams


class Runner:
    """Builds predictors by name and memoises simulation results."""

    def __init__(self, config: Optional[RunnerConfig] = None) -> None:
        self.config = config or RunnerConfig()
        self._bundles: Dict[Tuple[str, int, Optional[int]], WorkloadBundle] = {}
        self._results: Dict[Tuple[str, str], SimulationResult] = {}

    # -- workload handling ------------------------------------------------------

    def bundle(self, workload: str) -> WorkloadBundle:
        key = (workload, self.config.num_branches, self.config.seed)
        if key not in self._bundles:
            trace = generate_workload(
                workload, num_branches=self.config.num_branches, seed=self.config.seed
            )
            tensors = TraceTensors(trace)
            self._bundles[key] = WorkloadBundle(trace, tensors, ContextStreams(tensors))
        return self._bundles[key]

    def release(self, workload: str) -> None:
        """Drop the cached trace/tensors of a workload (bounds memory)."""
        key = (workload, self.config.num_branches, self.config.seed)
        self._bundles.pop(key, None)

    # -- predictor construction ------------------------------------------------------

    def _tsl_config(self, preset: str) -> TageConfig:
        return preset_by_name(preset, scale=self.config.scale)

    def build_predictor(self, name: str, bundle: WorkloadBundle, **overrides):
        """Instantiate a predictor configuration by report name.

        Recognised names: any TSL preset (``tsl_8k`` .. ``tsl_512k``,
        ``tsl_inf``), ``llbp``, ``llbp_0lat``, ``llbpx``, ``llbpx_0lat``,
        and ``llbpx_optw`` (handled by :meth:`run_one`).  ``overrides``
        are applied to the LLBP/LLBP-X config dataclass.
        """
        scale = self.config.scale
        if name.startswith("tsl_"):
            return TageSCL(self._tsl_config(name), bundle.tensors)
        base_tsl = tsl_64k(scale=scale)
        if name == "llbp":
            cfg = llbp_default(scale=scale, **overrides)
            return LLBP(cfg, base_tsl, bundle.tensors, bundle.contexts)
        if name == "llbp_0lat":
            cfg = llbp_default(scale=scale, zero_latency=True, **overrides)
            return LLBP(replace(cfg, name="llbp_0lat"), base_tsl, bundle.tensors, bundle.contexts)
        if name == "llbpx":
            cfg = llbpx_default(scale=scale, **overrides)
            return LLBPX(cfg, base_tsl, bundle.tensors, bundle.contexts)
        if name == "llbpx_0lat":
            cfg = llbpx_default(scale=scale, zero_latency=True, **overrides)
            return LLBPX(replace(cfg, name="llbpx_0lat"), base_tsl, bundle.tensors, bundle.contexts)
        raise KeyError(f"unknown predictor configuration {name!r}")

    # -- running ----------------------------------------------------------------------

    def run_one(self, workload: str, name: str, use_cache: bool = True, **overrides) -> SimulationResult:
        """Simulate one (workload, configuration) pair, memoised."""
        cache_key = (workload, name + repr(sorted(overrides.items())))
        if use_cache and cache_key in self._results:
            return self._results[cache_key]
        bundle = self.bundle(workload)
        if name == "llbpx_optw":
            result = self._run_optw(workload, bundle, **overrides)
        else:
            predictor = self.build_predictor(name, bundle, **overrides)
            result = simulate(
                predictor, bundle.trace, bundle.tensors, warmup_fraction=self.config.warmup_fraction
            )
            result.predictor = name
        if use_cache:
            self._results[cache_key] = result
        return result

    def _run_optw(self, workload: str, bundle: WorkloadBundle, **overrides) -> SimulationResult:
        """Profile-then-replay Opt-W (see module docstring)."""
        profile = self.build_predictor("llbpx", bundle, **overrides)
        simulate(profile, bundle.trace, bundle.tensors, warmup_fraction=self.config.warmup_fraction)
        deep_oracle = {cid: True for cid in profile.deep_history}
        candidates = []
        for oracle in ({}, deep_oracle):
            predictor = self.build_predictor("llbpx", bundle, oracle_depths=oracle, **overrides)
            candidates.append(
                simulate(
                    predictor,
                    bundle.trace,
                    bundle.tensors,
                    warmup_fraction=self.config.warmup_fraction,
                )
            )
        best = min(candidates, key=lambda r: r.mispredictions)
        best.predictor = "llbpx_optw"
        return best

    def run_matrix(
        self,
        workloads: Sequence[str],
        names: Sequence[str],
        release_bundles: bool = True,
        progress: Optional[Callable[[str, str, SimulationResult], None]] = None,
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """Run every configuration on every workload (workload-major).

        Returns ``{workload: {config: result}}``.  With
        ``release_bundles`` the per-workload precomputation is dropped as
        soon as all its configurations finished, bounding memory.
        """
        table: Dict[str, Dict[str, SimulationResult]] = {}
        for workload in workloads:
            row: Dict[str, SimulationResult] = {}
            for name in names:
                result = self.run_one(workload, name)
                row[name] = result
                if progress is not None:
                    progress(workload, name, result)
            table[workload] = row
            if release_bundles:
                self.release(workload)
        return table


def reduction(baseline: SimulationResult, other: SimulationResult) -> float:
    """Relative MPKI reduction of ``other`` vs ``baseline`` in percent."""
    if baseline.mpki == 0:
        return 0.0
    return 100.0 * (baseline.mpki - other.mpki) / baseline.mpki


@dataclass
class ComparisonRow:
    """One workload's line in a Fig 4/12-style comparison table."""

    workload: str
    baseline_mpki: float
    reductions: Dict[str, float] = field(default_factory=dict)


def comparison_table(
    matrix: Dict[str, Dict[str, SimulationResult]], baseline: str
) -> List[ComparisonRow]:
    """Reduce a run matrix to per-workload MPKI reductions vs ``baseline``."""
    rows: List[ComparisonRow] = []
    for workload, results in matrix.items():
        base = results[baseline]
        row = ComparisonRow(workload=workload, baseline_mpki=base.mpki)
        for name, result in results.items():
            if name != baseline:
                row.reductions[name] = reduction(base, result)
        rows.append(row)
    return rows


def geometric_mean_mpki(results: Sequence[SimulationResult]) -> float:
    """Geometric-mean MPKI across workloads (robust to scale differences)."""
    if not results:
        raise ValueError("need at least one result")
    product = 1.0
    for result in results:
        product *= max(result.mpki, 1e-9)
    return product ** (1.0 / len(results))
