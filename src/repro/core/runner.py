"""Multi-configuration experiment runner.

The runner knows how to build every predictor configuration the paper
evaluates by name (``"tsl_64k"``, ``"llbp"``, ``"llbpx"``,
``"llbpx_optw"``, ``"tsl_512k"``, ``"tsl_inf"``, ...), shares the
expensive per-trace precomputation (tensors, context streams) across
configurations, and caches results per ``(workload, config, run
parameters)`` so experiment harnesses that overlap -- Table I's baseline
runs reappear in Figs 4 and 12, for instance -- only simulate once.

``llbpx_optw`` implements the paper's *Opt-W* upper bound via
profile-then-replay: a dynamic LLBP-X run discovers which contexts
transitioned to the deep depth; two oracle replays (all-shallow, and
deep-for-transitioned) are evaluated and the better one reported.  Both
replays fix every context's depth ahead of time, which is exactly the
paper's definition; dynamic adaptation may still occasionally win (the
paper observes this for Chirper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.artifacts import ArtifactStore
from repro.core.run_report import RunReport
from repro.obs.log import get_logger
from repro.obs.metrics import registry as obs_registry
from repro.obs.telemetry import emit_event
from repro.obs.spans import span
from repro.obs.telemetry import flush as obs_flush
from repro.obs.telemetry import worker_config as obs_worker_config
from repro.core.results_io import (
    TIMINGS_FILENAME,
    ResultCache,
    ResultKey,
    TimingStore,
    cache_digest,
    cache_key,
    result_key,
)
from repro.core.simulator import (
    BACKEND_BATCHED,
    BACKEND_REFERENCE,
    SimulationResult,
    resolve_backend,
    simulate,
)
from repro.llbp import LLBP, LLBPX, ContextStreams, llbp_default, llbpx_default
from repro.tage import TageConfig, TageSCL, TraceTensors, preset_by_name, tsl_64k
from repro.traces import Trace, generate_workload

logger = get_logger("runner")

#: default capacity scale of the scaled universe (DESIGN.md §1)
DEFAULT_SCALE = 8
#: default trace length (branches) for experiment runs
DEFAULT_BRANCHES = 120_000


@dataclass(frozen=True)
class RunnerConfig:
    """Run parameters shared by all configurations of one study."""

    scale: int = DEFAULT_SCALE
    num_branches: int = DEFAULT_BRANCHES
    warmup_fraction: float = 0.25
    seed: Optional[int] = None  # workload seed override


@dataclass
class WorkloadBundle:
    """Shared per-trace state reused across predictor configurations."""

    trace: Trace
    tensors: TraceTensors
    contexts: ContextStreams


#: one cell of an experiment matrix: ``(workload, config name, overrides)``
Cell = Tuple[str, str, Mapping[str, object]]


class Runner:
    """Builds predictors by name and memoises simulation results.

    ``cache`` optionally attaches a persistent
    :class:`~repro.core.results_io.ResultCache`: results are then also
    written to disk, and future runners (including other processes)
    sharing the cache directory skip simulation entirely on a hit.
    ``sim_count`` counts the simulations this runner actually performed
    (directly or via workers), so tests can assert that a warm cache
    performs zero.

    ``artifacts`` optionally attaches a persistent
    :class:`~repro.core.artifacts.ArtifactStore`: :meth:`bundle` then
    resolves workload bundles through it -- an mmap + wrap on a hit
    instead of a trace-generation rebuild -- and persists fresh builds
    (plus their lazily derived streams) for every later run and for
    sibling worker processes.  ``bundle_builds`` counts bundles this
    runner constructed via trace generation; ``bundle_loads`` counts
    artifact-store materialisations -- a warm store performs zero builds.
    ``bundle_build_seconds`` / ``artifact_load_seconds`` /
    ``sim_seconds`` accumulate the phase breakdown the throughput
    benchmark reports.

    ``retry_policy`` optionally attaches a
    :class:`~repro.core.parallel.RetryPolicy` governing the parallel
    path's fault tolerance (per-cell retries, backoff, timeout, pool
    recovery); ``None`` uses the policy's defaults.  ``report`` is a
    :class:`~repro.core.run_report.RunReport` accumulating per-cell
    attempt/retry/failure records across this runner's ``run_cells``
    calls, so a matrix that completed *with* retries is distinguishable
    from a clean one.
    """

    def __init__(
        self,
        config: Optional[RunnerConfig] = None,
        cache: Optional[ResultCache] = None,
        artifacts: Optional[ArtifactStore] = None,
        retry_policy: Optional["RetryPolicy"] = None,
        backend: Optional[str] = None,
        ledger: Optional[object] = None,
    ) -> None:
        self.config = config or RunnerConfig()
        self.cache = cache
        self.artifacts = artifacts
        self.retry_policy = retry_policy
        #: execution backend for run_cells/run_matrix: "auto" groups
        #: uncached cells sharing a bundle + base TageConfig through the
        #: batched engine; "reference"/"batched" force one path.  The
        #: backend changes only *how* cells execute, never the results,
        #: so it is deliberately not part of RunnerConfig (cache keys).
        self.backend = resolve_backend(backend)
        #: optional :class:`~repro.core.sched.CoopScheduler` -- when set,
        #: ``run_cells`` drains uncached cells through the multi-host
        #: claim/publish protocol instead of simulating them all locally
        self.coop = None
        self.report = RunReport()
        self.sim_count = 0
        self.bundle_builds = 0
        self.bundle_loads = 0
        self.bundle_build_seconds = 0.0
        self.artifact_load_seconds = 0.0
        self.sim_seconds = 0.0
        self._bundles: Dict[Tuple[str, int, Optional[int]], WorkloadBundle] = {}
        self._results: Dict[ResultKey, SimulationResult] = {}
        self._timings: Optional[TimingStore] = None
        #: run ledger every run_matrix appends one record to.  ``None``
        #: with a cache attached auto-creates <cache-dir>/.ledger (the
        #: longitudinal history rides the same shared directory as the
        #: results it describes); ``False`` disables; an instance is used
        #: as-is.  No cache and no explicit ledger -> no history, which
        #: keeps cache-less hot-path benchmarks free of any ledger I/O.
        if ledger is None and cache is not None:
            from repro.obs.ledger import LEDGER_DIRNAME, RunLedger

            ledger = RunLedger(cache.cache_dir / LEDGER_DIRNAME)
        self.ledger = ledger or None
        #: labels stamped into ledger records ("source", service job id,
        #: tenant, ...); the CLI and daemon fill these before running
        self.ledger_context: Dict[str, object] = {}
        #: records this runner appended (the CLI's fallback-append guard)
        self.ledger_appends = 0

    def timing_store(self) -> TimingStore:
        """Observed-cell-timing store feeding the parallel cost model.

        Persisted alongside the result cache when one is attached (or the
        artifact store otherwise); in-memory only when neither is.
        """
        if self._timings is None:
            path = None
            if self.cache is not None:
                path = self.cache.cache_dir / TIMINGS_FILENAME
            elif self.artifacts is not None:
                path = self.artifacts.root / TIMINGS_FILENAME
            self._timings = TimingStore(path)
        return self._timings

    # -- workload handling ------------------------------------------------------

    def bundle(self, workload: str) -> WorkloadBundle:
        key = (workload, self.config.num_branches, self.config.seed)
        if key in self._bundles:
            return self._bundles[key]
        with span("bundle", workload=workload):
            if self.artifacts is not None:
                start = time.perf_counter()
                loaded = self.artifacts.load_bundle(workload, self.config)
                if loaded is not None:
                    self.artifact_load_seconds += time.perf_counter() - start
                    self.bundle_loads += 1
                    obs_registry().counter("runner.bundle_loads").inc()
                    self._bundles[key] = loaded
                    return loaded
            start = time.perf_counter()
            trace = generate_workload(
                workload, num_branches=self.config.num_branches, seed=self.config.seed
            )
            tensors = TraceTensors(trace)
            bundle = WorkloadBundle(trace, tensors, ContextStreams(tensors))
            self.bundle_builds += 1
            obs_registry().counter("runner.bundle_builds").inc()
            if self.artifacts is not None:
                # persists the columns now and the derived streams as they are
                # computed (write-back hooks attach to tensors/contexts)
                self.artifacts.save_bundle(workload, self.config, bundle)
            self.bundle_build_seconds += time.perf_counter() - start
            self._bundles[key] = bundle
            return bundle

    def base_stream_warm(self, workload: str, base_cfg: TageConfig) -> bool:
        """Whether a persisted base stream exists for (workload, base).

        The warm predicate :func:`repro.core.batched.plan_batches` uses
        to admit singleton groups -- a cheap ``is_file`` probe, no load.
        """
        return self.artifacts is not None and self.artifacts.has_base_stream(
            workload, self.config, base_cfg
        )

    def release(self, workload: str, results: bool = False) -> None:
        """Drop the cached trace/tensors of a workload (bounds memory).

        With ``results`` the workload's memoised simulation results are
        dropped too (disk-cache entries are kept).
        """
        key = (workload, self.config.num_branches, self.config.seed)
        self._bundles.pop(key, None)
        if results:
            self._results = {k: v for k, v in self._results.items() if k[0] != workload}

    def clear_cache(self, bundles: bool = False) -> int:
        """Drop every memoised result (long sweeps grow ``_results`` unboundedly).

        Returns the number of entries dropped.  With ``bundles`` the
        per-workload precomputation is dropped too.  The persistent disk
        cache, if any, is untouched -- use ``runner.cache.clear()`` for
        that.
        """
        dropped = len(self._results)
        self._results.clear()
        if bundles:
            self._bundles.clear()
        return dropped

    # -- cache plumbing ---------------------------------------------------------

    def _digest(self, workload: str, name: str, overrides: Mapping[str, object]) -> str:
        return cache_digest(cache_key(workload, name, overrides, self.config))

    def digest(
        self, workload: str, name: str, overrides: Optional[Mapping[str, object]] = None
    ) -> str:
        """Content digest of one cell under this runner's config.

        The digest is the cell's identity in the disk
        :class:`~repro.core.results_io.ResultCache`, in the multi-host
        claim ledger, and in the experiment service's ``/results/<key>``
        endpoint -- the same bytes name the same result everywhere.
        """
        return self._digest(workload, name, overrides or {})

    def lookup_cached(
        self, workload: str, name: str, overrides: Optional[Mapping[str, object]] = None
    ) -> Optional[SimulationResult]:
        """Memory-then-disk cache lookup; promotes disk hits to the memo."""
        overrides = overrides or {}
        key = result_key(workload, name, overrides)
        if key in self._results:
            return self._results[key]
        if self.cache is not None:
            hit = self.cache.get(self._digest(workload, name, overrides))
            if hit is not None:
                self._results[key] = hit
                return hit
        return None

    def _admit(
        self, workload: str, name: str, overrides: Mapping[str, object], result: SimulationResult
    ) -> None:
        """Record a freshly simulated result in the memo and disk cache."""
        self._results[result_key(workload, name, overrides)] = result
        if self.cache is not None:
            self.cache.put(
                self._digest(workload, name, overrides),
                cache_key(workload, name, overrides, self.config),
                result,
            )

    # -- predictor construction ------------------------------------------------------

    def _tsl_config(self, preset: str) -> TageConfig:
        return preset_by_name(preset, scale=self.config.scale)

    def build_predictor(self, name: str, bundle: WorkloadBundle, shared_base=None, **overrides):
        """Instantiate a predictor configuration by report name.

        Recognised names: any TSL preset (``tsl_8k`` .. ``tsl_512k``,
        ``tsl_inf``), ``llbp``, ``llbp_0lat``, ``llbpx``, ``llbpx_0lat``,
        and ``llbpx_optw`` (handled by :meth:`run_one`).  ``overrides``
        are applied to the LLBP/LLBP-X config dataclass.

        ``shared_base`` optionally injects a batched-backend
        :class:`~repro.tage.batched_state.SharedBase` whose TAGE core and
        loop predictor the lane reuses instead of building its own; the
        caller (:func:`repro.core.batched.run_group`) must then install
        the lane's replay-tail kernel as ``predictor.step``.
        """
        scale = self.config.scale
        if name.startswith("tsl_"):
            if shared_base is not None:
                return TageSCL(
                    self._tsl_config(name),
                    bundle.tensors,
                    core=shared_base.core,
                    loop=shared_base.loop,
                )
            return TageSCL(self._tsl_config(name), bundle.tensors)
        base_tsl = tsl_64k(scale=scale)
        shared_tsl = None
        if shared_base is not None:
            shared_tsl = TageSCL(
                shared_base.config, bundle.tensors, core=shared_base.core, loop=shared_base.loop
            )
        if name == "llbp":
            cfg = llbp_default(scale=scale, **overrides)
            return LLBP(cfg, base_tsl, bundle.tensors, bundle.contexts, tsl=shared_tsl)
        if name == "llbp_0lat":
            cfg = llbp_default(scale=scale, zero_latency=True, **overrides)
            return LLBP(
                replace(cfg, name="llbp_0lat"),
                base_tsl,
                bundle.tensors,
                bundle.contexts,
                tsl=shared_tsl,
            )
        if name == "llbpx":
            cfg = llbpx_default(scale=scale, **overrides)
            return LLBPX(cfg, base_tsl, bundle.tensors, bundle.contexts, tsl=shared_tsl)
        if name == "llbpx_0lat":
            cfg = llbpx_default(scale=scale, zero_latency=True, **overrides)
            return LLBPX(
                replace(cfg, name="llbpx_0lat"),
                base_tsl,
                bundle.tensors,
                bundle.contexts,
                tsl=shared_tsl,
            )
        raise KeyError(f"unknown predictor configuration {name!r}")

    # -- running ----------------------------------------------------------------------

    def run_one(self, workload: str, name: str, use_cache: bool = True, **overrides) -> SimulationResult:
        """Simulate one (workload, configuration) pair, memoised.

        The memo key is the structured :func:`~repro.core.results_io.result_key`
        shared with the disk cache's content hash, so the two layers can
        never disagree (and name/override concatenation collisions are
        impossible).

        Every execution is recorded in ``self.report`` (attempt, then
        success with the cell's wall seconds *including* any bundle
        build/load it paid for), so serial and direct-call runs populate
        per-cell timings exactly like pool runs do; cache hits record a
        ``cached`` cell.
        """
        if use_cache:
            cached = self.lookup_cached(workload, name, overrides)
            if cached is not None:
                self.report.record_cached(workload, name, overrides)
                return cached
        with span("cell", workload=workload, config=name):
            self.report.record_attempt(workload, name, overrides)
            cell_start = time.perf_counter()
            bundle = self.bundle(workload)
            start = time.perf_counter()
            if name == "llbpx_optw":
                result = self._run_optw(workload, bundle, **overrides)
            else:
                predictor = self.build_predictor(name, bundle, **overrides)
                with span("simulate", workload=workload, config=name):
                    result = simulate(
                        predictor,
                        bundle.trace,
                        bundle.tensors,
                        warmup_fraction=self.config.warmup_fraction,
                    )
                result.predictor = name
            self.sim_seconds += time.perf_counter() - start
            self.sim_count += 1
            elapsed = time.perf_counter() - cell_start
            self.report.record_success(workload, name, overrides, elapsed)
            registry = obs_registry()
            registry.counter("runner.simulations").inc()
            registry.counter("runner.branches").inc(self.config.num_branches)
            registry.histogram("cell.seconds").observe(elapsed)
        if use_cache:
            self._admit(workload, name, overrides, result)
        return result

    def _run_optw(self, workload: str, bundle: WorkloadBundle, **overrides) -> SimulationResult:
        """Profile-then-replay Opt-W (see module docstring)."""
        profile = self.build_predictor("llbpx", bundle, **overrides)
        simulate(profile, bundle.trace, bundle.tensors, warmup_fraction=self.config.warmup_fraction)
        deep_oracle = {cid: True for cid in profile.deep_history}
        candidates = []
        for oracle in ({}, deep_oracle):
            predictor = self.build_predictor("llbpx", bundle, oracle_depths=oracle, **overrides)
            candidates.append(
                simulate(
                    predictor,
                    bundle.trace,
                    bundle.tensors,
                    warmup_fraction=self.config.warmup_fraction,
                )
            )
        best = min(candidates, key=lambda r: r.mispredictions)
        best.predictor = "llbpx_optw"
        return best

    def run_cells(
        self,
        cells: Sequence[Cell],
        jobs: int = 1,
        release_bundles: bool = True,
        progress: Optional[Callable[[str, str, SimulationResult], None]] = None,
        backend: Optional[str] = None,
    ) -> List[SimulationResult]:
        """Run arbitrary ``(workload, name, overrides)`` cells, cached.

        ``backend`` overrides the runner's execution backend for this
        call (``None`` inherits ``self.backend``); results are
        bit-identical across backends (tests/test_batched_equivalence.py).

        Cached cells (memory or disk) are resolved up front and duplicate
        uncached cells are simulated once; only unique misses run --
        serially for ``jobs <= 1``, otherwise fanned *cell-granular* over
        a process pool, longest-expected-first (see
        :mod:`repro.core.parallel`; workers resolve bundles through this
        runner's artifact store when one is attached).  Results come back
        in cell order and are bit-identical either way.  ``progress``
        fires once per cell (completion order under parallelism).

        The parallel path is fault-tolerant: worker crashes, raised
        exceptions, and (with a timeout configured) hangs are retried
        per ``self.retry_policy``, and every attempt/retry/failure is
        recorded in ``self.report`` (a
        :class:`~repro.core.run_report.RunReport`).
        """
        resolved = resolve_backend(backend) if backend is not None else self.backend
        cells = [(workload, name, dict(overrides or {})) for workload, name, overrides in cells]
        out: Dict[int, SimulationResult] = {}
        # unique uncached cells, in first-appearance order (dicts preserve
        # insertion order); duplicates map to the same simulation
        pending: Dict[ResultKey, List[int]] = {}
        cell_of: Dict[ResultKey, Cell] = {}
        for index, (workload, name, overrides) in enumerate(cells):
            cached = self.lookup_cached(workload, name, overrides)
            if cached is not None:
                out[index] = cached
                self.report.record_cached(workload, name, overrides)
                if progress is not None:
                    progress(workload, name, cached)
            else:
                key = result_key(workload, name, overrides)
                pending.setdefault(key, []).append(index)
                cell_of.setdefault(key, (workload, name, overrides))

        def finish(key: ResultKey, result: SimulationResult) -> None:
            workload, name, overrides = cell_of[key]
            self._admit(workload, name, overrides, result)
            for index in pending[key]:
                out[index] = result
                if progress is not None:
                    progress(workload, name, result)

        with span("run_cells", cells=len(cells), pending=len(pending), jobs=jobs):
            if self.coop is not None and pending:
                # elastic multi-host mode: claim/publish the uncached
                # cells through the shared ledger (repro.core.sched);
                # peer-completed cells arrive via the shared cache
                from repro.core.sched import drain_cooperative

                for (workload, name, overrides), result in drain_cooperative(
                    self, list(cell_of.values()), jobs=jobs, backend=resolved
                ):
                    finish(result_key(workload, name, overrides), result)
            elif jobs > 1 and len(pending) > 1:
                from repro.core.costmodel import make_cost_model
                from repro.core.parallel import run_cells_parallel

                artifact_dir = str(self.artifacts.root) if self.artifacts is not None else None
                model = make_cost_model(self.timing_store())
                for (workload, name, overrides), result in run_cells_parallel(
                    self.config,
                    list(cell_of.values()),
                    jobs,
                    artifact_dir=artifact_dir,
                    cost_model=model,
                    policy=self.retry_policy,
                    report=self.report,
                    telemetry=obs_worker_config(),
                    backend=resolved,
                    base_warm=self.base_stream_warm,
                ):
                    self.sim_count += 1
                    finish(result_key(workload, name, overrides), result)
            else:
                # serial: workload-major order so release_bundles bounds
                # memory.  Under the batched/auto backends, each
                # workload's cells are first partitioned into shared-base
                # groups (repro.core.batched); the rest -- and everything
                # under the reference backend -- goes through run_one,
                # which records the report attempt/success itself.
                by_workload: Dict[str, List[ResultKey]] = {}
                for key in pending:
                    by_workload.setdefault(key[0], []).append(key)
                try:
                    self._run_serial(by_workload, cell_of, resolved, finish, release_bundles)
                finally:
                    # an interrupt mid-matrix still persists the timings
                    # observed so far (advisory scheduling data; partial
                    # saves are safe -- the store merges on write)
                    self.timing_store().save()
        obs_flush()  # publish this process's metrics snapshot, if enabled
        return [out[index] for index in range(len(cells))]

    def _run_serial(self, by_workload, cell_of, resolved, finish, release_bundles) -> None:
        """The serial (single-process) leg of :meth:`run_cells`."""
        for workload, keys in by_workload.items():
            singles = [cell_of[key] for key in keys]
            if resolved != BACKEND_REFERENCE:
                from repro.core.batched import plan_batches, run_group
                from repro.core.costmodel import BASE_WARM_BACKEND

                plan = plan_batches(
                    singles,
                    self.config.scale,
                    min_lanes=1 if resolved == BACKEND_BATCHED else 2,
                    base_warm=self.base_stream_warm,
                )
                singles = plan.singles
                if plan.fallbacks:
                    obs_registry().counter("backend.fallbacks").inc(plan.fallbacks)
                for group in plan.groups:
                    for cell_w, name, overrides in group:
                        self.report.record_attempt(cell_w, name, overrides)
                    self.report.record_batched_group(len(group))
                    for outcome in run_group(self, workload, group):
                        cell_w, name, overrides = outcome.cell
                        # warm lanes observe under their own
                        # backend key: tail-only replay has a
                        # different cost profile than record+tail
                        backend_key = (
                            BASE_WARM_BACKEND if outcome.base_warm else "batched"
                        )
                        self.report.record_success(
                            cell_w,
                            name,
                            overrides,
                            outcome.seconds,
                            backend="batched",
                            base_warm=outcome.base_warm,
                        )
                        self.timing_store().observe(
                            workload,
                            name,
                            outcome.seconds,
                            backend=backend_key,
                            branches=self.config.num_branches,
                        )
                        finish(result_key(cell_w, name, overrides), outcome.result)
            for cell_w, name, overrides in singles:
                started = time.perf_counter()
                result = self.run_one(workload, name, use_cache=False, **overrides)
                elapsed = time.perf_counter() - started
                self.timing_store().observe(
                    workload, name, elapsed, branches=self.config.num_branches
                )
                finish(result_key(cell_w, name, overrides), result)
            if release_bundles:
                self.release(workload)

    def ledger_append(
        self,
        cells: Sequence[Cell],
        results: Sequence[SimulationResult],
        wall_seconds: float,
        cpu_seconds: float,
    ) -> None:
        """Append one run record to the attached ledger (no-op without one).

        The watchdog checks the record against its rolling baseline
        *before* folding it in, so flags compare against pre-regression
        history; flags are persisted inside the record and surfaced as a
        warning + ``run-regression`` event.  History is strictly
        best-effort: a ledger failure must never fail the run itself.
        """
        if self.ledger is None or not cells:
            return
        try:
            from repro.obs.ledger import build_run_record

            record = build_run_record(
                self,
                cells,
                results,
                wall_seconds,
                cpu_seconds,
                source=str(self.ledger_context.get("source", "api")),
                context={k: v for k, v in self.ledger_context.items() if k != "source"},
            )
            self._ledger_commit(record)
        except Exception:  # noqa: BLE001 - history must not break the run
            logger.exception("ledger append failed (run results are unaffected)")

    def ledger_append_session(
        self, wall_seconds: float, cpu_seconds: float, context: Optional[Dict[str, object]] = None
    ) -> None:
        """Session-level fallback append for ``run_cells``-driving harnesses.

        ``repro report`` figures call experiment functions that may never
        pass through :meth:`run_matrix`; the CLI calls this at the end of
        the command, and it appends one record covering the whole session
        (identity derived from the run report's cell set and the result
        memo) -- but only if nothing was appended already, so a matrix
        run is never double-counted.  Best-effort like the regular path.
        """
        if self.ledger is None or self.ledger_appends or not self.report.cells():
            return
        try:
            from repro.obs.ledger import build_session_record

            merged = {k: v for k, v in self.ledger_context.items() if k != "source"}
            merged.update(context or {})
            record = build_session_record(
                self,
                wall_seconds,
                cpu_seconds,
                source=str(self.ledger_context.get("source", "api")),
                context=merged,
            )
            self._ledger_commit(record)
        except Exception:  # noqa: BLE001 - history must not break the run
            logger.exception("session ledger append failed (run results are unaffected)")

    def _ledger_commit(self, record: Dict[str, object]) -> None:
        """Check against the rolling baseline, persist, surface any flags."""
        from repro.obs.regress import check_and_update

        self.ledger.prepare(record)
        flags = check_and_update(self.ledger.directory, record)
        self.ledger.append(record)
        self.ledger_appends += 1
        for flag in flags:
            logger.warning(
                "regression [%s/%s] run %s: %s",
                flag.get("severity"),
                flag.get("kind"),
                record.get("run_id"),
                flag.get("detail"),
            )
        if flags:
            emit_event(
                "run-regression",
                run_id=record.get("run_id"),
                kinds=[flag.get("kind") for flag in flags],
            )

    def run_matrix(
        self,
        workloads: Sequence[str],
        names: Sequence[str],
        release_bundles: bool = True,
        progress: Optional[Callable[[str, str, SimulationResult], None]] = None,
        jobs: int = 1,
        backend: Optional[str] = None,
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """Run every configuration on every workload (workload-major).

        Returns ``{workload: {config: result}}``.  With
        ``release_bundles`` the per-workload precomputation is dropped as
        soon as all its configurations finished, bounding memory.
        ``jobs > 1`` distributes uncached workloads over a process pool;
        results are bit-identical to the serial path.

        Every completed matrix appends one record to the attached run
        ledger (wall/CPU timings, digests, report, metrics) -- one write
        per run, nothing per cell or per branch.
        """
        cells: List[Cell] = [(workload, name, {}) for workload in workloads for name in names]
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        results = self.run_cells(
            cells, jobs=jobs, release_bundles=release_bundles, progress=progress, backend=backend
        )
        self.ledger_append(
            cells,
            results,
            time.perf_counter() - wall_start,
            time.process_time() - cpu_start,
        )
        table: Dict[str, Dict[str, SimulationResult]] = {workload: {} for workload in workloads}
        for (workload, name, _), result in zip(cells, results):
            table[workload][name] = result
        return table


def reduction(baseline: SimulationResult, other: SimulationResult) -> float:
    """Relative MPKI reduction of ``other`` vs ``baseline`` in percent."""
    if baseline.mpki == 0:
        return 0.0
    return 100.0 * (baseline.mpki - other.mpki) / baseline.mpki


@dataclass
class ComparisonRow:
    """One workload's line in a Fig 4/12-style comparison table."""

    workload: str
    baseline_mpki: float
    reductions: Dict[str, float] = field(default_factory=dict)


def comparison_table(
    matrix: Dict[str, Dict[str, SimulationResult]], baseline: str
) -> List[ComparisonRow]:
    """Reduce a run matrix to per-workload MPKI reductions vs ``baseline``."""
    rows: List[ComparisonRow] = []
    for workload, results in matrix.items():
        base = results[baseline]
        row = ComparisonRow(workload=workload, baseline_mpki=base.mpki)
        for name, result in results.items():
            if name != baseline:
                row.reductions[name] = reduction(base, result)
        rows.append(row)
    return rows


def geometric_mean_mpki(results: Sequence[SimulationResult]) -> float:
    """Geometric-mean MPKI across workloads (robust to scale differences)."""
    if not results:
        raise ValueError("need at least one result")
    product = 1.0
    for result in results:
        product *= max(result.mpki, 1e-9)
    return product ** (1.0 / len(results))
