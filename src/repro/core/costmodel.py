"""Cell-cost estimation: the static heuristic and the learned regressor.

The parallel scheduler orders cells longest-expected-first, so makespan
shrinks directly with estimate quality (a mis-ranked long cell strands a
core on the matrix tail).  Three estimate tiers live here, best first:

1. **Observed EMA** -- a cell that has run before under this backend is
   predicted by its own persisted timing (:class:`TimingStore`).
2. **Learned model** -- for *unseen* cells, a ridge regression fit on
   the store's sample corpus predicts ``log(seconds)`` from cheap
   features: trace length, configuration weight and capacity, execution
   backend, and the workload's structural densities (conditional share,
   H2P density, context diversity from
   :func:`repro.traces.characterize.workload_features`).  This is the
   Gem5Pred observation applied to our simulator: simulation time is an
   accurately learnable function of workload/config features.
3. **Static heuristic** -- ``trace length x configuration weight`` at a
   measured baseline rate; always available, used whenever the corpus
   is below :data:`DEFAULT_MIN_SAMPLES` or a feature is unavailable.

The fit is closed-form (``numpy.linalg.lstsq`` on a ridge-augmented
design matrix -- no new dependencies, deterministic for a given corpus)
and the coefficients persist beside ``timings.meta`` as
``costmodel.meta`` so later invocations -- and other hosts sharing the
store -- start with a trained model before observing anything
themselves.  Estimates order the queue; they never affect results.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.faults import stale_temp
from repro.core.results_io import COSTMODEL_FILENAME, TimingStore
from repro.core.simulator import BACKEND_BATCHED, BACKEND_REFERENCE
from repro.obs.log import get_logger

logger = get_logger("costmodel")

COSTMODEL_FORMAT_VERSION = 1

#: minimum sample-corpus size before the learned model replaces the
#: heuristic (below this a fit would mostly memorise noise)
DEFAULT_MIN_SAMPLES = 12

#: ridge penalty on the (log-feature) design matrix
DEFAULT_RIDGE = 1e-2

#: relative single-simulation cost by config-name prefix (first match
#: wins; measured on the shipped kernels -- Opt-W replays three LLBP-X
#: simulations).  Only scheduling order depends on these.
CONFIG_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("llbpx_optw", 5.4),
    ("llbpx", 1.9),
    ("llbp", 1.6),
    ("tsl_inf", 1.3),
)

#: static per-branch cost scale (seconds/branch at the measured ~100k
#: branches/sec baseline rate) -- keeps static estimates in the same
#: units as observed timings
_SECONDS_PER_BRANCH = 1e-5

#: timing/observation key of a batched lane replaying a *persisted* base
#: stream (tail-only, no base pass) -- the warm flag rides inside the
#: backend string so :class:`TimingStore` signatures stay untouched
BASE_WARM_BACKEND = "batched+warm"

#: regression feature names, in design-matrix column order
FEATURE_NAMES: Tuple[str, ...] = (
    "intercept",
    "log_branches",
    "log_weight",
    "log_capacity_kb",
    "batched",
    "base_warm",
    "cond_share",
    "h2p_density",
    "context_diversity",
    "static_density",
)


def config_weight(name: str) -> float:
    """Relative cost weight of a predictor configuration."""
    for prefix, weight in CONFIG_WEIGHTS:
        if name.startswith(prefix):
            return weight
    return 1.0


def config_capacity_kb(name: str) -> float:
    """Nominal table capacity of a configuration in KB (feature only).

    TSL presets encode theirs in the name; the LLBP family runs over the
    64 KB base TSL (their extra structures are captured by the weight
    feature); the infinite preset gets a large sentinel capacity.
    """
    if name.startswith("tsl_inf"):
        return 4096.0
    if name.startswith("tsl_"):
        tail = name[len("tsl_"):]
        if tail.endswith("k"):
            try:
                return float(int(tail[:-1]))
            except ValueError:
                pass
    return 64.0


def feature_vector(workload: str, name: str, backend: str, branches: int) -> List[float]:
    """Design-matrix row for one cell (order matches :data:`FEATURE_NAMES`).

    Raises ``KeyError`` for a workload the generator does not know --
    callers fall back to the static heuristic for such cells.
    """
    from repro.traces.characterize import workload_features

    profile = workload_features(workload)
    return [
        1.0,
        math.log(max(1, branches)),
        math.log(config_weight(name)),
        math.log(config_capacity_kb(name)),
        # "batched+warm" is a batched execution too (startswith covers it)
        1.0 if backend.startswith(BACKEND_BATCHED) else 0.0,
        1.0 if backend == BASE_WARM_BACKEND else 0.0,
        profile["cond_share"],
        profile["h2p_density"],
        profile["context_diversity"],
        profile["static_density"],
    ]


def fit_ridge(rows: Sequence[Sequence[float]], targets: Sequence[float], ridge: float = DEFAULT_RIDGE) -> List[float]:
    """Closed-form ridge fit via lstsq on the penalty-augmented system.

    Deterministic for a given corpus; the intercept column is penalised
    like every other (the penalty is tiny and the fit stays exact on
    clean synthetic corpora, which the tests pin).
    """
    import numpy as np

    X = np.asarray(rows, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    k = X.shape[1]
    A = np.vstack([X, math.sqrt(ridge) * np.eye(k)])
    b = np.concatenate([y, np.zeros(k)])
    coef, _, _, _ = np.linalg.lstsq(A, b, rcond=None)
    return [float(c) for c in coef]


class CostModel:
    """Expected wall-clock of one cell, for longest-expected-first order.

    The static estimate is ``trace length x configuration weight``; an
    attached :class:`TimingStore` overrides it with the observed EMA for
    cells that have run before (persisted alongside the result cache, so
    estimates survive across invocations).  Estimates order the queue --
    they never affect results.
    """

    def __init__(self, timings: Optional[TimingStore] = None) -> None:
        self.timings = timings

    @property
    def kind(self) -> str:
        """Which estimator answers for unseen cells (``heuristic``/``learned``)."""
        return "heuristic"

    @staticmethod
    def static_estimate(name: str, num_branches: int) -> float:
        """The hand-tuned prior: length x weight at the baseline rate."""
        return num_branches * config_weight(name) * _SECONDS_PER_BRANCH

    def estimate(
        self, workload: str, name: str, num_branches: int, backend: str = BACKEND_REFERENCE
    ) -> float:
        """Expected seconds of one cell under ``backend``.

        Observed timings are backend-keyed (a batched lane's attributable
        cost differs systematically from a reference execution, and a
        warm tail-only replay from both); lookups fall back along
        ``batched+warm -> batched -> reference`` -- each step an
        overestimate, which only makes the scheduler start the work
        earlier -- before the static estimate.
        """
        if self.timings is not None:
            observed = self._observed(workload, name, backend)
            if observed is not None:
                return observed
        return self.static_estimate(name, num_branches)

    def _observed(self, workload: str, name: str, backend: str) -> Optional[float]:
        """Backend-keyed EMA lookup with the warm->batched->reference chain."""
        if self.timings is None:
            return None
        observed = self.timings.get(workload, name, backend)
        if observed is None and backend == BASE_WARM_BACKEND:
            observed = self.timings.get(workload, name, BACKEND_BATCHED)
        if observed is None and backend != BACKEND_REFERENCE:
            observed = self.timings.get(workload, name)
        return observed

    def observe(
        self,
        workload: str,
        name: str,
        seconds: float,
        backend: str = BACKEND_REFERENCE,
        branches: Optional[int] = None,
    ) -> None:
        if self.timings is not None:
            self.timings.observe(workload, name, seconds, backend, branches=branches)

    def save(self) -> None:
        if self.timings is not None:
            self.timings.save()


class LearnedCostModel(CostModel):
    """Ridge-regression cell-time predictor, heuristic below the sample bar.

    Lazily fits on the attached store's sample corpus at first estimate:
    with at least ``min_samples`` rows the fitted coefficients answer for
    unseen cells (observed EMAs still win for seen ones); otherwise a
    previously persisted fit is adopted if one exists, and failing that
    every unseen cell falls back to the static heuristic -- so a cold
    deployment behaves exactly like the old model until enough timing
    history accumulates.

    Coefficients persist to ``path`` (default: ``costmodel.meta`` beside
    the timing store's file) with *larger-corpus-wins* merge semantics:
    a save never replaces a fit trained on more samples than its own,
    mirroring the timing store's lose-nothing merge-on-save.
    """

    def __init__(
        self,
        timings: Optional[TimingStore] = None,
        path: Optional[Union[str, Path]] = None,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        ridge: float = DEFAULT_RIDGE,
    ) -> None:
        super().__init__(timings)
        if path is None and timings is not None and timings.path is not None:
            path = timings.path.with_name(COSTMODEL_FILENAME)
        self.path = Path(path) if path is not None else None
        self.min_samples = min_samples
        self.ridge = ridge
        self._coef: Optional[List[float]] = None
        self._fitted_samples = 0
        self._prepared = False

    @property
    def kind(self) -> str:
        self._ensure_model()
        return "learned" if self._coef is not None else "heuristic"

    @property
    def samples_used(self) -> int:
        """Corpus size behind the active fit (0 when on the heuristic)."""
        self._ensure_model()
        return self._fitted_samples

    @property
    def coefficients(self) -> Optional[Dict[str, float]]:
        self._ensure_model()
        if self._coef is None:
            return None
        return dict(zip(FEATURE_NAMES, self._coef))

    # -- fitting ------------------------------------------------------------

    def _corpus(self) -> List[Tuple[List[float], float]]:
        """(feature row, log-seconds) pairs from the store's sample corpus.

        Rows whose workload the generator cannot probe are skipped --
        the model simply never answers for them.
        """
        if self.timings is None:
            return []
        rows: List[Tuple[List[float], float]] = []
        for workload, name, backend, branches, seconds, _count in self.timings.samples():
            if seconds <= 0:
                continue
            try:
                features = feature_vector(workload, name, backend, branches)
            except KeyError:
                continue
            rows.append((features, math.log(seconds)))
        return rows

    def _ensure_model(self) -> None:
        if self._prepared:
            return
        self._prepared = True
        corpus = self._corpus()
        if len(corpus) >= self.min_samples:
            self._coef = fit_ridge([row for row, _ in corpus], [y for _, y in corpus], self.ridge)
            self._fitted_samples = len(corpus)
            logger.info(
                "cost model: fitted on %d samples (ridge=%g)", len(corpus), self.ridge
            )
            return
        persisted = self._load_coefficients()
        if persisted is not None and persisted["samples"] >= self.min_samples:
            self._coef = list(persisted["coef"])
            self._fitted_samples = int(persisted["samples"])
            logger.info(
                "cost model: adopted persisted fit (%d samples; local corpus has %d)",
                self._fitted_samples,
                len(corpus),
            )
            return
        logger.info(
            "cost model: %d/%d samples -- using the static heuristic",
            len(corpus),
            self.min_samples,
        )

    def refit(self) -> str:
        """Drop any cached fit and re-prepare from the current corpus."""
        self._prepared = False
        self._coef = None
        self._fitted_samples = 0
        return self.kind

    # -- estimation ---------------------------------------------------------

    def estimate(
        self, workload: str, name: str, num_branches: int, backend: str = BACKEND_REFERENCE
    ) -> float:
        if self.timings is not None:
            observed = self._observed(workload, name, backend)
            if observed is not None:
                return observed
        self._ensure_model()
        if self._coef is not None:
            try:
                row = feature_vector(workload, name, backend, num_branches)
            except KeyError:
                return self.static_estimate(name, num_branches)
            log_seconds = sum(c * x for c, x in zip(self._coef, row))
            # clamp the exponent: a wild extrapolation must not overflow
            # or starve the queue -- estimates only order work
            return math.exp(max(-30.0, min(30.0, log_seconds)))
        return self.static_estimate(name, num_branches)

    # -- persistence --------------------------------------------------------

    def _load_coefficients(self) -> Optional[Dict[str, object]]:
        """The persisted fit, or ``None`` (advisory -- any error reads empty)."""
        if self.path is None:
            return None
        for tmp in self.path.parent.glob(f"{self.path.name}.tmp.*"):
            if stale_temp(tmp, tmp.name.rsplit(".", 1)[-1]):
                try:
                    tmp.unlink()
                except FileNotFoundError:
                    pass
        try:
            payload = json.loads(self.path.read_text())
            if payload.get("version") != COSTMODEL_FORMAT_VERSION:
                return None
            if tuple(payload.get("features", ())) != FEATURE_NAMES:
                return None  # stale feature schema: refit from scratch
            coef = [float(c) for c in payload["coef"]]
            if len(coef) != len(FEATURE_NAMES):
                return None
            return {"coef": coef, "samples": int(payload.get("samples", 0))}
        except (FileNotFoundError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save(self) -> None:
        """Persist timings (merge-on-save) and the fit, larger corpus wins."""
        super().save()
        if self.path is None or self._coef is None or self._fitted_samples == 0:
            return
        existing = self._load_coefficients()
        if existing is not None and existing["samples"] > self._fitted_samples:
            return  # a better-trained fit is already on disk
        payload = {
            "version": COSTMODEL_FORMAT_VERSION,
            "samples": self._fitted_samples,
            "ridge": self.ridge,
            "features": list(FEATURE_NAMES),
            "coef": self._coef,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, self.path)


def make_cost_model(timings: Optional[TimingStore] = None) -> CostModel:
    """The scheduler's default cost model: learned, self-falling-back."""
    return LearnedCostModel(timings)


def evaluate_cost_model(
    timings: TimingStore,
    min_samples: int = DEFAULT_MIN_SAMPLES,
    ridge: float = DEFAULT_RIDGE,
) -> Optional[Dict[str, object]]:
    """Held-out error of the learned model vs the heuristic (MAPE).

    Leave-one-out over the store's sample corpus: each sample is
    predicted by a model fit on all the others, so the comparison
    measures generalisation, not memorisation.  Returns ``None`` when
    the corpus is too small to evaluate (below ``min_samples``).
    """
    rows: List[Tuple[List[float], float, float, str]] = []
    for workload, name, backend, branches, seconds, _count in timings.samples():
        if seconds <= 0:
            continue
        try:
            features = feature_vector(workload, name, backend, branches)
        except KeyError:
            continue
        heuristic = CostModel.static_estimate(name, branches)
        rows.append((features, seconds, heuristic, f"{workload}/{name}@{backend}"))
    if len(rows) < min_samples:
        return None
    learned_errors: List[float] = []
    heuristic_errors: List[float] = []
    for index, (features, actual, heuristic, _key) in enumerate(rows):
        train = [rows[j] for j in range(len(rows)) if j != index]
        coef = fit_ridge(
            [r[0] for r in train], [math.log(r[1]) for r in train], ridge
        )
        predicted = math.exp(
            max(-30.0, min(30.0, sum(c * x for c, x in zip(coef, features))))
        )
        learned_errors.append(abs(predicted - actual) / actual)
        heuristic_errors.append(abs(heuristic - actual) / actual)
    learned_mape = 100.0 * sum(learned_errors) / len(learned_errors)
    heuristic_mape = 100.0 * sum(heuristic_errors) / len(heuristic_errors)
    return {
        "samples": len(rows),
        "learned_mape_percent": round(learned_mape, 2),
        "heuristic_mape_percent": round(heuristic_mape, 2),
        "improvement_percent": round(heuristic_mape - learned_mape, 2),
    }
