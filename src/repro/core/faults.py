"""Deterministic fault injection for the fault-tolerance layer.

Crash-recovery code is only trustworthy if its failure paths run in CI,
so this module turns the interesting failure modes -- a worker process
dying mid-cell (OOM kill), a cell hanging, a cache entry written corrupt
-- into *reproducible* events driven by the ``REPRO_FAULT_SPEC``
environment variable.  The injector is consulted by
:func:`~repro.core.parallel.simulate_cell` (crash / raise / hang kinds)
and by :meth:`~repro.core.results_io.ResultCache.put` (corrupt-write
kind); with the variable unset every hook is a cheap no-op.

Spec grammar (clauses separated by ``;``)::

    spec    := clause (';' clause)*
    clause  := 'ledger=' PATH
             | kind ':' workload '/' config [':' count [':' seconds]]
    kind    := 'crash' | 'raise' | 'hang' | 'corrupt'

``workload`` / ``config`` accept ``*`` as a wildcard; ``count`` (default
1) is how many invocations of each matching cell fault before the fault
burns out; ``seconds`` (hang only, default 3600) is the hang duration.

Example -- crash the kafka/tsl_64k worker once, then let its retry
succeed, with cross-process attempt accounting under ``/tmp/ledger``::

    REPRO_FAULT_SPEC="ledger=/tmp/ledger;crash:kafka/tsl_64k:1"

Fault *kinds*:

* ``crash`` -- ``os._exit`` in a worker process (the executor observes a
  ``BrokenProcessPool``, exactly like an OOM kill).  In-process callers
  (serial fallback) degrade it to a raised :class:`FaultError`.
* ``raise`` -- raise :class:`FaultError` (a picklable exception the pool
  transports back; the pool itself stays healthy).
* ``hang`` -- sleep for ``seconds`` (trips the per-cell timeout).
* ``corrupt`` -- the next result-cache write for the cell produces a
  well-formed JSON entry with the right version but no ``result`` field
  (the signature of a truncated-then-completed write), exercising the
  cache's quarantine path.

Determinism: each (kind, workload, config) fault has a *count*, and
invocation slots are claimed first-come.  Worker processes cannot share
in-memory counters, so a ``ledger=DIR`` clause switches accounting to
atomic ``O_CREAT | O_EXCL`` marker files under ``DIR`` -- a crashed
worker's claim survives its death, which is precisely what makes
"crash exactly once, then succeed on retry" expressible.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: environment variable holding the fault spec
ENV_VAR = "REPRO_FAULT_SPEC"

#: exit status an injected worker crash dies with (any non-zero works --
#: the executor reports every abrupt death as BrokenProcessPool)
CRASH_EXIT_CODE = 70

_FAULT_KINDS = ("crash", "raise", "hang", "corrupt")

#: default hang duration (seconds); real runs kill the worker long before
_DEFAULT_HANG_SECONDS = 3600.0


class FaultError(RuntimeError):
    """An injected failure (also what ``crash`` degrades to in-process)."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed spec clause: fault ``kind`` for matching cells."""

    kind: str
    workload: str
    config: str
    count: int = 1
    seconds: float = _DEFAULT_HANG_SECONDS

    def matches(self, workload: str, config: str) -> bool:
        return self.workload in ("*", workload) and self.config in ("*", config)


def parse_fault_spec(spec: str) -> Tuple[List[FaultRule], Optional[Path]]:
    """Parse a ``REPRO_FAULT_SPEC`` string into rules plus a ledger path.

    Raises :class:`ValueError` on malformed clauses -- a typo'd fault
    spec silently injecting nothing would make a fault-tolerance test
    pass vacuously.
    """
    rules: List[FaultRule] = []
    ledger: Optional[Path] = None
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("ledger="):
            ledger = Path(clause[len("ledger="):]).expanduser()
            continue
        parts = clause.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(f"malformed fault clause {clause!r}")
        kind, cell = parts[0].strip(), parts[1].strip()
        if kind not in _FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} in {clause!r}")
        if "/" not in cell:
            raise ValueError(f"fault cell must be workload/config, got {cell!r}")
        workload, config = (piece.strip() for piece in cell.split("/", 1))
        if not workload or not config:
            raise ValueError(f"fault cell must be workload/config, got {cell!r}")
        count = 1
        seconds = _DEFAULT_HANG_SECONDS
        try:
            if len(parts) >= 3:
                count = int(parts[2])
            if len(parts) == 4:
                seconds = float(parts[3])
        except ValueError as exc:
            raise ValueError(f"malformed fault clause {clause!r}") from exc
        if count < 0:
            raise ValueError(f"fault count must be >= 0 in {clause!r}")
        rules.append(FaultRule(kind, workload, config, count, seconds))
    return rules, ledger


class FaultInjector:
    """Fires the parsed fault rules, claiming invocation slots in order.

    Slot accounting is in-memory by default (fine for single-process
    tests); with a ledger directory it is shared across processes via
    atomic marker-file creation, so a claim made just before ``os._exit``
    is visible to the retry in a fresh worker.
    """

    def __init__(
        self, rules: Sequence[FaultRule], ledger: Optional[Union[str, Path]] = None
    ) -> None:
        self.rules = list(rules)
        self.ledger = Path(ledger).expanduser() if ledger is not None else None
        self._local: Dict[str, int] = {}
        if self.ledger is not None:
            self.ledger.mkdir(parents=True, exist_ok=True)

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> Optional["FaultInjector"]:
        """Build an injector from a spec string (``None`` if it is empty)."""
        if not spec or not spec.strip():
            return None
        rules, ledger = parse_fault_spec(spec)
        if not rules:
            return None
        return cls(rules, ledger)

    # -- slot accounting ----------------------------------------------------

    def _claim(self, rule: FaultRule, workload: str, config: str) -> bool:
        """Claim the next invocation slot; True if that slot should fault.

        The token names the *actual* cell, not the rule's (possibly
        wildcard) pattern, so a ``*`` rule faults each matching cell
        ``count`` times rather than sharing one budget.
        """
        token = f"{rule.kind}-{workload}-{config}".replace("/", "_").replace("*", "ANY")
        if self.ledger is None:
            slot = self._local.get(token, 0)
            self._local[token] = slot + 1
        else:
            slot = 0
            while True:
                try:
                    fd = os.open(
                        self.ledger / f"{token}.{slot}",
                        os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    )
                    os.close(fd)
                    break
                except FileExistsError:
                    slot += 1
        return slot < rule.count

    # -- firing -------------------------------------------------------------

    def fire(self, workload: str, config: str, in_worker: bool = True) -> None:
        """Fire any crash/raise/hang rule matching this cell execution.

        ``in_worker=False`` (the in-process serial-fallback path) degrades
        ``crash`` to a raised :class:`FaultError` -- exiting would kill
        the parent, which is the opposite of what a fallback is for.
        """
        for rule in self.rules:
            if rule.kind not in ("crash", "raise", "hang"):
                continue
            if not rule.matches(workload, config):
                continue
            if not self._claim(rule, workload, config):
                continue
            if rule.kind == "hang":
                deadline = time.monotonic() + rule.seconds
                while True:  # sleep in slices so SIGTERM lands promptly
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    time.sleep(min(0.2, remaining))
                return
            if rule.kind == "crash" and in_worker:
                os._exit(CRASH_EXIT_CODE)
            raise FaultError(f"injected {rule.kind} for {workload}/{config}")

    def should_corrupt(self, workload: str, config: str) -> bool:
        """Whether the next cache write for this cell should be corrupted."""
        for rule in self.rules:
            if rule.kind != "corrupt":
                continue
            if rule.matches(workload, config) and self._claim(rule, workload, config):
                return True
        return False


#: per-process injector cache, keyed by the spec string it was built from
#: (workers forked mid-run re-read their inherited environment lazily)
_ACTIVE: Dict[str, object] = {"spec": None, "injector": None}


def active_injector() -> Optional[FaultInjector]:
    """The process-wide injector for the current ``REPRO_FAULT_SPEC``.

    Returns ``None`` (the fast path) when the variable is unset or empty.
    Re-parses only when the variable's value changes, so hooks on hot
    paths pay one dict lookup and a string compare.
    """
    spec = os.environ.get(ENV_VAR, "")
    if _ACTIVE["spec"] != spec:
        _ACTIVE["spec"] = spec
        _ACTIVE["injector"] = FaultInjector.from_spec(spec)
    return _ACTIVE["injector"]


# -- stale-temp hygiene --------------------------------------------------------


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - out-of-range pid etc.
        return False
    return True


def stale_temp(path: Path, pid_text: str) -> bool:
    """Whether a writer temp file is an orphan of a dead process.

    ``pid_text`` is the pid component of the temp filename; an
    unparseable component means a foreign/damaged name -- treat as stale
    rather than accumulate it forever.  Files of live pids are left
    alone: their writer may still ``os.replace`` them.
    """
    del path  # identity lives in the name; content is irrelevant
    try:
        pid = int(pid_text)
    except ValueError:
        return True
    return not pid_alive(pid)
