"""Context/pattern analyses behind Figs 6-9 of the paper.

All four analyses run an instrumented, limit-configured LLBP
(0-latency, unbounded contexts, fully-associative sets) with the
``track_useful`` flag, then reduce the resulting
:class:`~repro.llbp.pattern.UsefulTracker` into the series the paper
plots:

* Fig 6 -- useful patterns per context, sorted descending;
* Fig 7 -- average history length of useful patterns, same context order;
* Fig 8 -- duplicate fraction of useful patterns per history length, for
  several context depths W;
* Fig 9 -- useful predictions per history length for W in {2, 64},
  normalised to the W=8 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.runner import Runner
from repro.core.simulator import simulate
from repro.llbp import LLBP
from repro.llbp.config import llbp_default
from repro.tage import tsl_64k
from repro.tage.config import HISTORY_LENGTHS

#: limit configuration used by the paper's Fig 6 analysis ("+ Inf Patterns")
_ANALYSIS_OVERRIDES = dict(
    zero_latency=True,
    infinite_contexts=True,
    infinite_patterns=True,
    use_bucketing=False,
    restrict_histories=False,
    track_useful=True,
)


def _run_instrumented(runner: Runner, workload: str, context_depth: int) -> LLBP:
    """Run the instrumented limit-LLBP and return it (tracker populated)."""
    bundle = runner.bundle(workload)
    config = llbp_default(
        scale=runner.config.scale, context_depth=context_depth, **_ANALYSIS_OVERRIDES
    )
    predictor = LLBP(config, tsl_64k(scale=runner.config.scale), bundle.tensors, bundle.contexts)
    simulate(predictor, bundle.trace, bundle.tensors, warmup_fraction=runner.config.warmup_fraction)
    return predictor


@dataclass
class ContextProfile:
    """Per-context useful-pattern profile (Figs 6 and 7)."""

    workload: str
    context_depth: int
    #: useful-pattern count per context, sorted descending (Fig 6's y-axis)
    counts: List[int]
    #: average useful-pattern history length, in the same context order (Fig 7)
    avg_lengths: List[float]
    pattern_set_capacity: int
    num_store_contexts: int

    @property
    def over_capacity_fraction(self) -> float:
        """Fraction of contexts whose useful patterns exceed a pattern set."""
        if not self.counts:
            return 0.0
        return sum(1 for c in self.counts if c > self.pattern_set_capacity) / len(self.counts)

    @property
    def underutilized_fraction(self) -> float:
        """Fraction of contexts with at most half a pattern set of useful patterns."""
        if not self.counts:
            return 0.0
        return sum(1 for c in self.counts if c <= self.pattern_set_capacity // 2) / len(self.counts)


def context_profile(runner: Runner, workload: str, context_depth: int = 8) -> ContextProfile:
    """Compute the Fig 6/7 per-context profile for one workload."""
    predictor = _run_instrumented(runner, workload, context_depth)
    assert predictor.tracker is not None
    counts_by_ctx = predictor.tracker.per_context_counts()
    lengths_by_ctx = predictor.tracker.per_context_lengths(list(HISTORY_LENGTHS))
    ordered = sorted(counts_by_ctx.items(), key=lambda kv: -kv[1])
    return ContextProfile(
        workload=workload,
        context_depth=context_depth,
        counts=[count for _, count in ordered],
        avg_lengths=[lengths_by_ctx[cid] for cid, _ in ordered],
        pattern_set_capacity=predictor.config.patterns_per_set,
        num_store_contexts=predictor.config.effective_contexts,
    )


def duplication_by_depth(
    runner: Runner, workload: str, depths: Sequence[int] = (2, 8, 64)
) -> Dict[int, Dict[int, float]]:
    """Fig 8: ``{W: {history_length: duplicate_fraction}}``."""
    out: Dict[int, Dict[int, float]] = {}
    for depth in depths:
        predictor = _run_instrumented(runner, workload, depth)
        assert predictor.tracker is not None
        out[depth] = predictor.tracker.duplication_by_length(list(HISTORY_LENGTHS))
    return out


def useful_by_depth(
    runner: Runner, workload: str, depths: Sequence[int] = (2, 8, 64)
) -> Dict[int, Dict[int, int]]:
    """Raw useful-prediction counts per history length for each depth W."""
    out: Dict[int, Dict[int, int]] = {}
    for depth in depths:
        predictor = _run_instrumented(runner, workload, depth)
        assert predictor.tracker is not None
        out[depth] = predictor.tracker.useful_by_length(list(HISTORY_LENGTHS))
    return out


def depth_sweep_relative(
    runner: Runner,
    workload: str,
    depths: Tuple[int, int] = (2, 64),
    baseline_depth: int = 8,
) -> Dict[int, Dict[int, float]]:
    """Fig 9: useful predictions per length for each W, relative to W=8.

    Returns ``{W: {history_length: ratio}}`` where ratio > 1 means more
    useful predictions than the baseline depth delivered at that length.
    """
    raw = useful_by_depth(runner, workload, list(depths) + [baseline_depth])
    base = raw[baseline_depth]
    out: Dict[int, Dict[int, float]] = {}
    for depth in depths:
        ratios: Dict[int, float] = {}
        for length, base_count in base.items():
            if base_count == 0:
                continue
            ratios[length] = raw[depth].get(length, 0) / base_count
        out[depth] = ratios
    return out
