"""Persistent, content-addressed store of trace artifacts.

Building a :class:`~repro.core.runner.WorkloadBundle` from scratch --
trace generation, :class:`~repro.tage.TraceTensors`, context streams --
costs a substantial fraction of a simulation, and every worker process of
a parallel matrix used to repeat it privately.  This module persists the
whole bundle on disk, keyed by a content hash of everything the trace
depends on (the full :class:`~repro.traces.workloads.WorkloadSpec`, the
effective seed, the requested length, and ``GENERATOR_VERSION``), so:

* a warm run's ``Runner.bundle()`` becomes an ``mmap`` + wrap instead of
  a rebuild (zero trace generations -- a counter asserts this), and
* N worker processes on one machine share page-cache pages of the same
  arrays instead of holding N private copies.

Layout: one directory per bundle digest holding the five trace columns
as raw ``.npy`` arrays plus the context-stream inputs; *derived* streams
(folds, built index/tag/bimodal streams, per-depth context hashes) are
written back lazily through :class:`BundleArtifacts` as predictors first
request them, and memory-mapped on every later load.  All files are
written via temp-file + ``os.replace`` (concurrent writers race benignly:
content is deterministic, last writer wins whole files); ``meta.json`` is
written last and marks a bundle complete, so readers never observe a
partial bundle.  Bumping ``GENERATOR_VERSION`` changes every digest,
invalidating the store with no manual cleanup.

The store also persists **shared-base streams**: the packed ``uint64``
recording a :class:`~repro.tage.batched_state.SharedBase` produces over a
bundle.  A stream is a pure function of (bundle, canonical base
``TageConfig``, packed-word layout), so it lives *inside* the bundle's
digest directory as ``base_<digest16>.npy`` where the digest covers the
base config and ``BASE_STREAM_VERSION`` -- bundle invalidation implies
base invalidation, and a layout bump invalidates every stored stream.
Streams load ``mmap_mode="r"``; torn files are quarantined (renamed
``*.corrupt``) so the next miss re-records cleanly.
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.faults import stale_temp
from repro.core.results_io import cache_digest
from repro.obs.metrics import registry as obs_registry
from repro.llbp.rcr import ContextStreams
from repro.tage.batched_state import BASE_STREAM_DTYPE, BASE_STREAM_VERSION
from repro.tage.streams import TraceTensors
from repro.traces.generator import GENERATOR_VERSION
from repro.traces.record import COLUMN_DTYPES, Trace
from repro.traces.workloads import workload_spec

#: version of the on-disk artifact layout; part of every bundle digest
ARTIFACT_FORMAT_VERSION = 1

_META_NAME = "meta.json"


def _atomic_save(path: Path, arr: np.ndarray) -> None:
    """Write ``arr`` to ``path`` atomically (unique temp + rename)."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp.npy")
    with open(tmp, "wb") as handle:
        np.save(handle, np.ascontiguousarray(arr))
    os.replace(tmp, path)


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _stream_file(key: Tuple) -> str:
    """Stable filename for a built-stream key tuple (ints/strs only)."""
    return f"stream_{cache_digest({'stream_key': repr(key)})[:16]}.npy"


class BundleArtifacts:
    """Read/write handle for one bundle's derived-stream files.

    Duck-typed against the ``artifact_cache`` hook of
    :class:`~repro.tage.TraceTensors` and the ``hash_cache`` hook of
    :class:`~repro.llbp.ContextStreams`: loads return memory-mapped
    arrays (or ``None`` on a miss), stores write atomically.
    """

    def __init__(self, store: "ArtifactStore", directory: Path) -> None:
        self.store = store
        self.directory = directory

    def _load(self, name: str) -> Optional[np.ndarray]:
        try:
            arr = np.load(self.directory / name, mmap_mode="r")
        except (FileNotFoundError, ValueError, OSError):
            return None
        self.store.derived_loads += 1
        return arr

    def _store(self, name: str, arr: np.ndarray) -> None:
        _atomic_save(self.directory / name, arr)
        self.store.derived_writes += 1

    def load_fold(self, length: int, width: int) -> Optional[np.ndarray]:
        return self._load(f"fold_{length}_{width}.npy")

    def store_fold(self, length: int, width: int, fold: np.ndarray) -> None:
        self._store(f"fold_{length}_{width}.npy", fold)

    def load_stream(self, key: Tuple) -> Optional[np.ndarray]:
        return self._load(_stream_file(key))

    def store_stream(self, key: Tuple, matrix: np.ndarray) -> None:
        self._store(_stream_file(key), matrix)

    def load_context_hashes(self, depth: int) -> Optional[List[int]]:
        arr = self._load(f"ctxhash_{depth}.npy")
        return None if arr is None else arr.tolist()

    def store_context_hashes(self, depth: int, hashes: Sequence[int]) -> None:
        self._store(f"ctxhash_{depth}.npy", np.asarray(hashes, dtype=np.uint64))


class ArtifactStore:
    """Content-addressed on-disk cache of workload bundles.

    ``config`` arguments are duck-typed against
    :class:`~repro.core.runner.RunnerConfig`: only ``num_branches`` and
    ``seed`` participate in trace identity (``scale`` and warmup affect
    simulation, not the trace, and are covered by the *result* cache).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.bundle_loads = 0
        self.bundle_writes = 0
        self.derived_loads = 0
        self.derived_writes = 0
        self.base_loads = 0
        self.base_writes = 0
        self.quarantined = 0
        self.temps_swept = 0
        self._sweep_temps()
        # plain-int attributes stay the public API; the metrics registry
        # observes them through a weakly-held pull-collector
        obs_registry().register_collector("artifact_store", self.stats)

    def _sweep_temps(self) -> int:
        """Remove atomic-writer temps orphaned by dead processes.

        Temp names embed the writer's pid (``.{name}.{pid}.{uuid}.tmp``
        or ``....tmp.npy``); temps of live pids are left alone -- their
        writer may still rename them into place.
        """
        removed = 0
        for pattern in (".*.tmp", ".*.tmp.npy"):
            for tmp in self.root.rglob(pattern):
                parts = tmp.name.split(".")
                if parts[-1] == "npy":
                    parts = parts[:-1]
                # [..., pid, uuid, "tmp"] after stripping a trailing npy
                pid_text = parts[-3] if len(parts) >= 3 else ""
                if stale_temp(tmp, pid_text):
                    try:
                        tmp.unlink()
                        removed += 1
                    except FileNotFoundError:  # pragma: no cover - raced
                        pass
        self.temps_swept += removed
        return removed

    # -- identity ---------------------------------------------------------

    def bundle_key(
        self, workload: str, config: object, generator_version: Optional[int] = None
    ) -> Dict[str, object]:
        """Everything the trace (and its derived streams) depends on."""
        if generator_version is None:
            generator_version = GENERATOR_VERSION
        spec = workload_spec(workload)
        seed = getattr(config, "seed", None)
        if seed is not None:
            spec = spec.with_seed(seed)
        return {
            "format": ARTIFACT_FORMAT_VERSION,
            "spec": {str(k): repr(v) for k, v in sorted(asdict(spec).items())},
            "num_branches": int(config.num_branches),
            "generator_version": int(generator_version),
        }

    def bundle_digest(self, workload: str, config: object) -> str:
        return cache_digest(self.bundle_key(workload, config))

    def bundle_dir(self, digest: str) -> Path:
        return self.root / digest

    def _quarantine_meta(self, meta_path: Path) -> None:
        """Rename a damaged ``meta.json`` out of the way.

        Without its meta the bundle reads as absent, so the next
        :meth:`load_bundle` miss triggers regeneration -- which rewrites
        every column and a fresh meta over the old directory.
        """
        try:
            os.replace(meta_path, meta_path.with_name(f"{_META_NAME}.corrupt"))
        except OSError:  # pragma: no cover - raced unlink/rename
            return
        self.quarantined += 1

    def has_bundle(self, workload: str, config: object) -> bool:
        return (self.bundle_dir(self.bundle_digest(workload, config)) / _META_NAME).is_file()

    # -- load / save ------------------------------------------------------

    def load_bundle(self, workload: str, config: object):
        """Materialise a :class:`WorkloadBundle` from the store, or ``None``.

        Trace columns load with ``mmap_mode="r"`` -- the bundle wraps the
        mapped arrays directly, and the attached :class:`BundleArtifacts`
        handle lazily maps (or writes back) derived streams.
        """
        from repro.core.runner import WorkloadBundle

        key = self.bundle_key(workload, config)
        directory = self.bundle_dir(cache_digest(key))
        meta_path = directory / _META_NAME
        try:
            meta = json.loads(meta_path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            self._quarantine_meta(meta_path)
            return None
        try:
            if meta.get("key") != json.loads(json.dumps(key)):
                return None  # digest collision or stale layout: rebuild
            trace = Trace(name=meta["name"], seed=meta["seed"], meta=meta["trace_meta"])
        except (AttributeError, KeyError, TypeError, ValueError):
            # schema-invalid meta (e.g. a torn write on a non-atomic
            # filesystem): quarantine so the bundle regenerates cleanly
            self._quarantine_meta(meta_path)
            return None
        try:
            for column in COLUMN_DTYPES:
                setattr(trace, column, np.load(directory / f"{column}.npy", mmap_mode="r"))
            ctx_values = np.load(directory / "ctx_values.npy", mmap_mode="r")
            ctx_prefix = np.load(directory / "ctx_prefix.npy", mmap_mode="r")
        except (FileNotFoundError, ValueError, OSError):
            return None
        handle = BundleArtifacts(self, directory)
        tensors = TraceTensors(trace, artifact_cache=handle)
        contexts = ContextStreams(
            tensors, ub_prefix=ctx_prefix, values=ctx_values, hash_cache=handle
        )
        self.bundle_loads += 1
        return WorkloadBundle(trace=trace, tensors=tensors, contexts=contexts)

    def save_bundle(self, workload: str, config: object, bundle) -> BundleArtifacts:
        """Persist a freshly built bundle and attach write-back hooks.

        Column and context arrays are written first, ``meta.json`` last
        (its presence marks the bundle complete).  The returned handle is
        also attached to ``bundle.tensors``/``bundle.contexts`` so any
        derived stream computed later in this process is persisted too;
        derived data already computed is flushed immediately.
        """
        key = self.bundle_key(workload, config)
        directory = self.bundle_dir(cache_digest(key))
        directory.mkdir(parents=True, exist_ok=True)
        trace = bundle.trace
        for column, dtype in COLUMN_DTYPES.items():
            _atomic_save(directory / f"{column}.npy", np.asarray(getattr(trace, column), dtype=dtype))
        contexts = bundle.contexts
        _atomic_save(directory / "ctx_values.npy", np.asarray(contexts._values, dtype=np.uint64))
        _atomic_save(directory / "ctx_prefix.npy", np.asarray(contexts.ub_prefix, dtype=np.int64))
        meta = {
            "key": key,
            "name": trace.name,
            "seed": trace.seed,
            "trace_meta": trace.meta,
            "num_records": len(trace),
        }
        _atomic_write_text(directory / _META_NAME, json.dumps(meta, indent=2, sort_keys=True))
        self.bundle_writes += 1

        handle = BundleArtifacts(self, directory)
        tensors = bundle.tensors
        tensors.artifact_cache = handle
        contexts.hash_cache = handle
        from repro.tage.streams import streams_to_matrix

        for (length, width), fold in tensors._folds.items():
            handle.store_fold(length, width, fold)
        for stream_key, rows in tensors._streams.items():
            handle.store_stream(
                stream_key, streams_to_matrix(rows if isinstance(rows, list) else [rows])
            )
        for depth, hashes in contexts._hashes.items():
            handle.store_context_hashes(depth, hashes)
        return handle

    # -- base streams ------------------------------------------------------

    def base_stream_name(self, base_config: object) -> str:
        """Stable filename for a base stream inside a bundle directory.

        The digest covers the canonical base config and
        ``BASE_STREAM_VERSION`` -- bumping the packed-word layout
        invalidates every persisted stream with no manual cleanup.  The
        bundle digest (the directory) covers everything trace-side.
        """
        digest = cache_digest(
            {
                "base_config": {str(k): repr(v) for k, v in sorted(asdict(base_config).items())},
                "base_stream_version": BASE_STREAM_VERSION,
            }
        )
        return f"base_{digest[:16]}.npy"

    def base_stream_path(self, workload: str, config: object, base_config: object) -> Path:
        directory = self.bundle_dir(self.bundle_digest(workload, config))
        return directory / self.base_stream_name(base_config)

    def has_base_stream(self, workload: str, config: object, base_config: object) -> bool:
        return self.base_stream_path(workload, config, base_config).is_file()

    def load_base_stream(
        self,
        workload: str,
        config: object,
        base_config: object,
        expected_length: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        """Memory-map a persisted base stream, or ``None`` on a miss.

        Torn or wrong-length files are quarantined (renamed
        ``*.corrupt``) so the caller's miss path re-records and rewrites
        a clean stream over the same name.
        """
        path = self.base_stream_path(workload, config, base_config)
        try:
            packed = np.load(path, mmap_mode="r")
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            self._quarantine_base(path)
            return None
        if (
            packed.ndim != 1
            or packed.dtype != BASE_STREAM_DTYPE
            or (expected_length is not None and len(packed) != expected_length)
        ):
            self._quarantine_base(path)
            return None
        self.base_loads += 1
        return packed

    def save_base_stream(
        self, workload: str, config: object, base_config: object, packed: np.ndarray
    ) -> Path:
        """Persist a freshly recorded stream (atomic temp + rename)."""
        path = self.base_stream_path(workload, config, base_config)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_save(path, np.asarray(packed, dtype=BASE_STREAM_DTYPE))
        self.base_writes += 1
        return path

    def _quarantine_base(self, path: Path) -> None:
        """Rename a damaged base stream out of the way (miss => re-record)."""
        try:
            os.replace(path, path.with_name(f"{path.name}.corrupt"))
        except OSError:  # pragma: no cover - raced unlink/rename
            return
        self.quarantined += 1

    # -- warming ----------------------------------------------------------

    def warm_bases(
        self, workloads: Iterable[str], config: object, base_configs: Iterable[object]
    ) -> Tuple[int, int]:
        """Pre-record base streams for every (workload, base config) pair.

        Returns ``(built, skipped)`` -- pairs whose stream already exists
        (or whose config is not batchable) are skipped.  Recording goes
        through the same :class:`SharedBase` pass the batched backend
        runs, so a later run adopts these streams bit-identically.
        """
        from repro.core.runner import Runner
        from repro.tage.batched_state import SharedBase, batchable_config

        base_configs = list(base_configs)
        built = 0
        skipped = 0
        runner = Runner(config, artifacts=self)
        for workload in workloads:
            for base_cfg in base_configs:
                if not batchable_config(base_cfg) or self.has_base_stream(
                    workload, config, base_cfg
                ):
                    skipped += 1
                    continue
                bundle = runner.bundle(workload)
                shared = SharedBase(base_cfg, bundle.tensors)
                shared.record(bundle.trace, bundle.tensors)
                self.save_base_stream(workload, config, base_cfg, shared.packed_stream())
                built += 1
            runner.release(workload)
        return built, skipped

    def warm(self, workloads: Iterable[str], config: object) -> int:
        """Ensure a bundle exists for every workload; returns #built.

        Building goes through trace generation (the expensive path) once
        per missing workload; existing bundles are left untouched.
        """
        from repro.core.runner import Runner

        built = 0
        runner = Runner(config, artifacts=self)
        for workload in workloads:
            if self.has_bundle(workload, config):
                continue
            runner.bundle(workload)
            runner.release(workload)
            built += 1
        return built

    def clear(self) -> int:
        """Drop every bundle; returns the number removed.

        Directories whose meta was quarantined count too (they are
        damaged bundles, not foreign data), and stale writer temps are
        swept.
        """
        import shutil

        removed = 0
        for directory in self.root.iterdir():
            if not directory.is_dir():
                continue
            if (directory / _META_NAME).is_file() or (
                directory / f"{_META_NAME}.corrupt"
            ).is_file():
                shutil.rmtree(directory, ignore_errors=True)
                removed += 1
        self._sweep_temps()
        return removed

    def __len__(self) -> int:
        return sum(1 for d in self.root.iterdir() if (d / _META_NAME).is_file())

    def stats(self) -> Dict[str, int]:
        return {
            "bundle_loads": self.bundle_loads,
            "bundle_writes": self.bundle_writes,
            "derived_loads": self.derived_loads,
            "derived_writes": self.derived_writes,
            "base_loads": self.base_loads,
            "base_writes": self.base_writes,
            "quarantined": self.quarantined,
            "temps_swept": self.temps_swept,
        }
