"""Elastic multi-host matrix scheduling over a shared filesystem.

The paper's full result set is a matrix of thousands of cells, and one
box is not the ceiling: any number of hosts that can see the same
result-cache directory can drain one matrix *cooperatively*.  The
protocol needs no coordinator, no network channel, and no clock
agreement -- only the filesystem primitives the fault ledger already
proved (:mod:`repro.core.faults`):

* **Claim** -- a host atomically claims an uncached cell by creating
  ``<digest>.claim`` (``O_CREAT | O_EXCL``) in the hosts directory next
  to the shared :class:`~repro.core.results_io.ResultCache`.  The digest
  is the cell's cache digest, so the claim namespace and the result
  namespace can never disagree.
* **Publish** -- the claimant simulates the cell through the ordinary
  backend-aware pipeline (:meth:`Runner.run_cells` -- parallel pool,
  batched groups, retries, artifact store, all of it) and the result
  reaches the shared cache *before* the claim is released, so peers
  never observe a completed cell as both unclaimed and uncached.  With
  a shared artifact store attached, the same ordering covers base
  streams: a batched group persists its freshly recorded shared-base
  stream during ``run_cells``, i.e. before its claims release -- one
  host's recording is every peer's warm (tail-only) start.
* **Reap** -- every host maintains a heartbeat file (mtime refresh).  A
  claim is stale -- and reaped, making its cell claimable again -- iff
  its owner is provably dead: same-machine owners are probed directly
  (:func:`~repro.core.faults.pid_alive`); cross-machine owners are
  declared dead only when *both* their heartbeat and the claim file
  itself have gone unrefreshed for the TTL (a freshly re-claimed cell
  has a fresh claim file, so a racing reaper cannot kill a live
  re-claim).

Determinism: every cell is a pure function of its key, so which host
simulates it cannot affect the bytes -- N-host results are bit-identical
to a single-host run (``tests/test_sched.py`` pins this, including
under a SIGKILLed claimant).  Claims are attempted
longest-predicted-first using the learned cost model
(:mod:`repro.core.costmodel`), so the expensive cells start earliest no
matter which host gets them.

Liveness: a host that holds a claim while alive-but-wedged is waited on
indefinitely (we cannot distinguish slow from stuck without violating
the zero-duplicate guarantee); kill it and its cells are reclaimed
within one TTL.
"""

from __future__ import annotations

import json
import os
import platform
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.faults import pid_alive
from repro.obs.log import get_logger
from repro.obs.metrics import registry as obs_registry
from repro.obs.telemetry import emit_event

logger = get_logger("sched")

#: one cell of an experiment matrix: ``(workload, config name, overrides)``
Cell = Tuple[str, str, Mapping[str, object]]

#: default directory name for the ledger, next to the result cache
HOSTS_DIRNAME = ".hosts"

#: seconds without a heartbeat (and claim-file) refresh before a
#: cross-machine claimant is declared dead
DEFAULT_HEARTBEAT_TTL = 30.0

#: seconds between ledger polls while every remaining cell is claimed
#: by peers
DEFAULT_POLL_INTERVAL = 0.25

#: cells a host claims per round -- small enough that a late-joining
#: host finds work, large enough to amortise ledger round-trips
DEFAULT_CLAIM_BATCH = 4


def default_host_id() -> str:
    """A filesystem-safe host identity: ``<node>-<pid>``."""
    node = re.sub(r"[^A-Za-z0-9_.-]", "-", platform.node() or "host")
    return f"{node or 'host'}-{os.getpid()}"


def file_age(mtime: float, now: Optional[float] = None) -> float:
    """Seconds since ``mtime``, clamped to >= 0.

    Cross-machine clock skew (or a coarse-mtime filesystem rounding a
    write into the future) can make ``time.time() - st_mtime`` negative;
    a negative age must never rank a peer's file as *fresher than now*,
    so freshness comparisons all go through this clamp.
    """
    return max(0.0, (time.time() if now is None else now) - mtime)


class HostLedger:
    """Claim/heartbeat marker files shared by cooperating hosts.

    All state is files under ``root`` (normally ``<cache>/.hosts``):
    ``<host>.heartbeat`` proves a host recently alive; ``<digest>.claim``
    records that a host owns one cell, with owner identity inside
    (host id, pid, machine) for the reaping rules above.
    """

    def __init__(
        self,
        root: Union[str, Path],
        host_id: Optional[str] = None,
        heartbeat_ttl: float = DEFAULT_HEARTBEAT_TTL,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.host_id = host_id or default_host_id()
        self.heartbeat_ttl = heartbeat_ttl
        self.machine = platform.node() or "unknown"

    # -- heartbeat ----------------------------------------------------------

    def heartbeat_path(self, host_id: Optional[str] = None) -> Path:
        return self.root / f"{host_id or self.host_id}.heartbeat"

    def beat(self) -> None:
        """Refresh this host's heartbeat (file mtime is the signal)."""
        self.heartbeat_path().write_text(
            json.dumps({"host": self.host_id, "pid": os.getpid(), "machine": self.machine})
        )

    def hosts(self) -> List[str]:
        """Host ids with a fresh heartbeat (including this host's, if beaten)."""
        now = time.time()
        alive = []
        for path in sorted(self.root.glob("*.heartbeat")):
            try:
                if file_age(path.stat().st_mtime, now) <= self.heartbeat_ttl:
                    alive.append(path.name[: -len(".heartbeat")])
            except FileNotFoundError:
                continue
        return alive

    # -- claims -------------------------------------------------------------

    def claim_path(self, token: str) -> Path:
        return self.root / f"{token}.claim"

    def claim(self, token: str) -> bool:
        """Atomically claim one cell; ``False`` if a peer holds it."""
        try:
            fd = os.open(self.claim_path(token), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(
                fd,
                json.dumps(
                    {
                        "host": self.host_id,
                        "pid": os.getpid(),
                        "machine": self.machine,
                        "cell": token,
                    }
                ).encode(),
            )
        finally:
            os.close(fd)
        return True

    def release(self, token: str) -> None:
        """Release a claim (the result must already be published)."""
        try:
            self.claim_path(token).unlink()
        except FileNotFoundError:  # pragma: no cover - reaped under us
            pass

    def read_claim(self, token: str) -> Optional[Dict[str, object]]:
        """The claim's owner record, or ``None`` (missing/unreadably fresh)."""
        try:
            return json.loads(self.claim_path(token).read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None

    def _claim_stale(self, token: str) -> bool:
        """Whether a claim's owner is provably dead (reaping rule)."""
        path = self.claim_path(token)
        try:
            claim_age = file_age(path.stat().st_mtime)
        except FileNotFoundError:
            return False  # already released or reaped
        owner = self.read_claim(token)
        if owner is not None:
            if owner.get("host") == self.host_id and int(owner.get("pid", -1)) == os.getpid():
                return False  # our own live claim
            # same machine: the pid probe is authoritative and immediate
            if owner.get("machine") == self.machine:
                try:
                    return not pid_alive(int(owner.get("pid", -1)))
                except (TypeError, ValueError):
                    pass  # damaged record: fall through to the TTL rule
        # cross-machine (or unreadable claim): dead only when both the
        # heartbeat and the claim file itself outlived the TTL -- a fresh
        # claim file is proof of a live re-claim even mid-heartbeat
        if claim_age <= self.heartbeat_ttl:
            return False
        heartbeat_age = float("inf")
        if owner is not None:
            try:
                heartbeat_age = file_age(
                    self.heartbeat_path(str(owner.get("host"))).stat().st_mtime
                )
            except (FileNotFoundError, OSError):
                pass
        return heartbeat_age > self.heartbeat_ttl

    def reap_stale(self, tokens: Sequence[str]) -> int:
        """Remove claims of provably dead owners; returns the count reaped."""
        reaped = 0
        for token in tokens:
            if not self._claim_stale(token):
                continue
            record = self.read_claim(token) or {}
            try:
                self.claim_path(token).unlink()
            except FileNotFoundError:
                continue  # a peer's reaper won the race -- their count
            owner = str(record.get("host", "unknown"))
            logger.warning("reaped stale claim %s (owner %s dead)", token, owner)
            emit_event("claim-reaped", cell=token, owner=owner, by=self.host_id)
            reaped += 1
        if reaped:
            obs_registry().counter("sched.reaped_claims").inc(reaped)
        return reaped


@dataclass
class CoopScheduler:
    """Multi-host mode switch carried by a :class:`Runner` (``runner.coop``).

    Attaching one reroutes :meth:`Runner.run_cells`' uncached cells
    through :func:`drain_cooperative`.  ``claim_batch`` bounds how many
    cells this host claims per round (elasticity knob: smaller batches
    leave more work unclaimed for late-joining hosts); ``poll_interval``
    is the ledger re-poll cadence while peers hold all remaining cells.
    """

    ledger: HostLedger
    claim_batch: int = DEFAULT_CLAIM_BATCH
    poll_interval: float = DEFAULT_POLL_INTERVAL


def drain_cooperative(
    runner,
    cells: Sequence[Cell],
    jobs: int = 1,
    backend: Optional[str] = None,
) -> Iterator[Tuple[Cell, "SimulationResult"]]:
    """Drain uncached ``cells`` cooperatively; yields ``(cell, result)``.

    Repeats until every cell is resolved: adopt peer-published results
    from the shared cache, reap claims of dead hosts, claim up to
    ``claim_batch`` unclaimed cells (longest-predicted-first) and run
    them through the runner's ordinary pipeline -- publish, release,
    yield -- then sleep ``poll_interval`` when peers hold everything
    that remains.  Requires a disk-backed result cache (the cache *is*
    the inter-host result channel).
    """
    from repro.core.costmodel import make_cost_model

    coop = runner.coop
    if coop is None:
        raise ValueError("drain_cooperative requires runner.coop to be set")
    if runner.cache is None:
        raise ValueError("cooperative scheduling requires a disk result cache")
    ledger = coop.ledger
    report = runner.report
    report.host_id = ledger.host_id
    ledger.beat()

    # longest-predicted-first claim order: every host walks the same
    # ranking, so the expensive cells start earliest on *some* host and
    # claim collisions just advance a host down the list
    model = make_cost_model(runner.timing_store())
    report.cost_model_kind = getattr(model, "kind", "heuristic")
    ranked = sorted(
        cells,
        key=lambda cell: model.estimate(
            cell[0], cell[1], runner.config.num_branches, runner.backend
        ),
        reverse=True,
    )
    remaining: Dict[str, Cell] = {
        runner._digest(workload, name, overrides): (workload, name, overrides)
        for workload, name, overrides in ranked
    }
    emit_event("coop-start", host=ledger.host_id, cells=len(remaining))
    logger.info(
        "host %s joining: %d uncached cells, peers=%s",
        ledger.host_id,
        len(remaining),
        ",".join(h for h in ledger.hosts() if h != ledger.host_id) or "none",
    )

    #: claims this host currently holds (claimed, not yet released) --
    #: released unconditionally on exit so an interrupt, an error, or an
    #: abandoned iterator can never leak claim files that peers would
    #: otherwise wait a full heartbeat TTL to reap
    held: Dict[str, Cell] = {}
    try:
        while remaining:
            # 1. adopt results peers have published since the last round
            for digest in list(remaining):
                workload, name, overrides = remaining[digest]
                published = runner.lookup_cached(workload, name, overrides)
                if published is not None:
                    del remaining[digest]
                    report.record_peer_result()
                    obs_registry().counter("sched.peer_results").inc()
                    emit_event(
                        "peer-result", host=ledger.host_id, workload=workload, config=name
                    )
                    yield (workload, name, overrides), published
            if not remaining:
                break

            # 2. make dead hosts' cells claimable again
            reaped = ledger.reap_stale(list(remaining))
            if reaped:
                report.record_reap(reaped)

            # 3. claim a batch: the anchor in insertion (= predicted-cost)
            # order, then prefer peers of the anchor's (workload, shared
            # base) -- cells this host will execute as one batched group
            # over a single base pass / persisted base stream -- topping up
            # in ranked order only when same-base peers run out
            from repro.core.batched import base_config as base_config_of

            claimed: List[Tuple[str, Cell]] = []
            batch_cap = max(1, coop.claim_batch)
            anchor_key: Optional[Tuple[str, object]] = None
            for digest, cell in remaining.items():
                if len(claimed) >= batch_cap:
                    break
                base = base_config_of(cell[1], runner.config.scale)
                key = (cell[0], base) if base is not None else None
                if claimed and (anchor_key is None or key != anchor_key):
                    continue
                if ledger.claim(digest):
                    claimed.append((digest, cell))
                    held[digest] = cell
                    if len(claimed) == 1:
                        anchor_key = key
            if len(claimed) < batch_cap:
                won = {digest for digest, _ in claimed}
                for digest, cell in remaining.items():
                    if len(claimed) >= batch_cap:
                        break
                    if digest in won:
                        continue
                    if ledger.claim(digest):
                        claimed.append((digest, cell))
                        held[digest] = cell
            ledger.beat()

            if not claimed:
                # peers hold everything left: wait for publishes or reapable
                # deaths, heartbeating so *our* claims stay protected
                obs_registry().counter("sched.wait_rounds").inc()
                time.sleep(max(0.01, coop.poll_interval))
                continue

            report.record_claim(len(claimed))
            obs_registry().counter("sched.claims").inc(len(claimed))
            predicted: List[float] = []
            for digest, (workload, name, _) in claimed:
                emit_event(
                    "cell-claim", host=ledger.host_id, workload=workload, config=name
                )
                predicted.append(
                    model.estimate(workload, name, runner.config.num_branches, runner.backend)
                )

            # 4. simulate through the ordinary pipeline (coop disabled so the
            # recursive run_cells call executes instead of re-claiming); the
            # runner publishes each result to the shared cache before run_cells
            # returns, so release-after-return preserves publish-before-release.
            # An error or interrupt inside run_cells leaves the claims in
            # ``held``; the outer finally hands those cells back to the peers.
            runner.coop = None
            before = [report.cell(*cell).seconds for _, cell in claimed]
            preds_before = len(report.predictions)
            try:
                results = runner.run_cells(
                    [cell for _, cell in claimed], jobs=jobs, backend=backend
                )
            finally:
                runner.coop = coop
            if len(report.predictions) == preds_before:
                # serial inner path: the pool scheduler didn't score these
                # cells, so score the claim-time predictions here
                for (_, cell), guess, prev in zip(claimed, predicted, before):
                    actual = report.cell(*cell).seconds - prev
                    if actual > 0.0:
                        report.record_prediction(guess, actual)
            for (digest, cell), result in zip(claimed, results):
                ledger.release(digest)
                held.pop(digest, None)
                del remaining[digest]
                yield cell, result
            ledger.beat()
    finally:
        if held:
            # interrupt (Ctrl-C / job cancellation closing this generator)
            # or error with claims still held: this host stays alive, so
            # nothing would ever reap them -- release immediately instead
            # of leaking the claim files until the heartbeat TTL expires.
            # Completed cells were published before their release above,
            # so every claim released here is safe to re-claim.
            for digest in list(held):
                ledger.release(digest)
            logger.warning(
                "released %d unfinished claims held by %s", len(held), ledger.host_id
            )
            emit_event("claims-released", host=ledger.host_id, count=len(held))
            obs_registry().counter("sched.released_claims").inc(len(held))
            held.clear()

    emit_event("coop-done", host=ledger.host_id)
