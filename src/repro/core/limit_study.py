"""The LLBP limit study of paper §III-A (Fig 5).

Starting from the 0-latency LLBP, design constraints are removed one at a
time, cumulatively:

1. ``+No Design Tweaks`` -- fully-associative pattern sets (no
   bucketing), all 21 TAGE history lengths, SC override re-enabled.
2. ``+20b Tag``           -- pattern tags widened to TAGE's entropy.
3. ``+Inf Contexts``      -- unbounded context directory, full context IDs.
4. ``+Inf Patterns``      -- unbounded pattern sets.
5. ``+No Contextualization`` -- context ID := branch PC (one unbounded
   set per branch).

Each step reports MPKI relative to the 0-latency LLBP baseline and the
reduction relative to the previous step, exactly the quantities Fig 5
plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.runner import Runner

#: the cumulative ladder: step label -> LLBPConfig overrides
LIMIT_STEPS: List[tuple] = [
    ("LLBP-0Lat", {}),
    (
        "+No Design Tweaks",
        {"use_bucketing": False, "restrict_histories": False, "suppress_sc": False},
    ),
    ("+20b Tag", {"pattern_tag_bits": 20}),
    ("+Inf Contexts", {"infinite_contexts": True}),
    ("+Inf Patterns", {"infinite_patterns": True}),
    ("+No Contextualization", {"no_contextualization": True}),
]


@dataclass
class LimitStep:
    """Result of one rung of the limit-study ladder."""

    label: str
    mpki: float
    normalized: float  # MPKI / baseline (LLBP-0Lat) MPKI
    step_reduction: float  # % reduction relative to the previous rung


def cumulative_overrides(up_to: int) -> Dict[str, object]:
    """Merged config overrides for ladder rungs ``0..up_to`` inclusive."""
    merged: Dict[str, object] = {}
    for _, overrides in LIMIT_STEPS[: up_to + 1]:
        merged.update(overrides)
    return merged


def run_limit_study(
    runner: Runner,
    workloads: Sequence[str],
    steps: Optional[Sequence[int]] = None,
    jobs: int = 1,
) -> List[LimitStep]:
    """Run the ladder, averaging MPKI across ``workloads`` per rung.

    ``jobs > 1`` pre-simulates every (workload, rung) cell in parallel;
    the ladder then reads memoised results.
    """
    indices = list(steps) if steps is not None else list(range(len(LIMIT_STEPS)))
    if jobs > 1:
        runner.run_cells(
            [(w, "llbp_0lat", cumulative_overrides(i)) for i in indices for w in workloads],
            jobs=jobs,
        )
    results: List[LimitStep] = []
    baseline_mpki: Optional[float] = None
    previous_mpki: Optional[float] = None
    for index in indices:
        label = LIMIT_STEPS[index][0]
        overrides = cumulative_overrides(index)
        mpkis = [runner.run_one(w, "llbp_0lat", **overrides).mpki for w in workloads]
        mean = sum(mpkis) / len(mpkis)
        if baseline_mpki is None:
            baseline_mpki = mean
        step_red = 0.0 if previous_mpki is None else 100.0 * (previous_mpki - mean) / previous_mpki
        results.append(
            LimitStep(
                label=label,
                mpki=mean,
                normalized=mean / baseline_mpki,
                step_reduction=step_red,
            )
        )
        previous_mpki = mean
    return results
