"""The trace-driven simulation loop.

Mirrors the paper's methodology (§VI): a warmup window trains the
predictor, then mispredictions are counted over the measurement window.
The loop itself is predictor-agnostic -- anything exposing
``predict(t, pc) -> prediction-with-.pred``, ``update(t, pc, taken,
prediction)`` and ``on_unconditional(t, pc, target)`` can be simulated,
which is exactly the interface of :class:`repro.tage.TageSCL` and the
LLBP wrappers.

Predictors may additionally expose a fused ``step(t, pc, taken) ->
mispredicted`` kernel performing lookup and training in one call; when
present the loop drives it instead of ``predict``/``update``, avoiding
one per-branch prediction-record allocation and a second method dispatch.
All shipped predictors build their ``step`` as a closure with state
hoisted into locals (see ``TageCore._build_fused_step``); the two paths
are bit-identical (``tests/test_step_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol

from repro.common.stats import mpki
from repro.tage.streams import TraceTensors
from repro.traces.record import Trace

# -- execution backends ------------------------------------------------------
#
# ``reference`` drives each cell's own fused step kernel -- the path every
# result in the repo was originally produced with.  ``batched`` executes
# groups of cells sharing a trace bundle and a base TageConfig through the
# shared-base engine in ``repro.core.batched`` (bit-identical; pinned by
# tests/test_batched_equivalence.py).  ``auto`` picks batched per group
# whenever at least two uncached cells share a batchable base, and falls
# back to reference for the rest.

BACKEND_REFERENCE = "reference"
BACKEND_BATCHED = "batched"
BACKEND_AUTO = "auto"
BACKENDS = (BACKEND_AUTO, BACKEND_REFERENCE, BACKEND_BATCHED)


def resolve_backend(backend: Optional[str]) -> str:
    """Validate a backend selector, defaulting ``None`` to ``auto``."""
    if backend is None:
        return BACKEND_AUTO
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}")
    return backend


class Predictor(Protocol):
    """Structural interface the simulation loop drives."""

    name: str

    def predict(self, t: int, pc: int) -> object: ...

    def update(self, t: int, pc: int, taken: bool, prediction: object) -> None: ...

    def on_unconditional(self, t: int, pc: int, target: int) -> None: ...


@dataclass
class SimulationResult:
    """Outcome of simulating one predictor over one trace."""

    workload: str
    predictor: str
    instructions: int  # measurement-window instructions
    conditional_branches: int
    mispredictions: int
    warmup_mispredictions: int
    total_instructions: int
    stats: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def mpki(self) -> float:
        return mpki(self.mispredictions, self.instructions)

    @property
    def miss_rate(self) -> float:
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches

    def summary(self) -> str:
        return (
            f"{self.workload:>14s} | {self.predictor:<18s} | "
            f"MPKI {self.mpki:6.3f} | miss {100 * self.miss_rate:5.2f}%"
        )


def simulate(
    predictor: Predictor,
    trace: Trace,
    tensors: Optional[TraceTensors] = None,
    warmup_fraction: float = 0.25,
    use_step: Optional[bool] = None,
) -> SimulationResult:
    """Run ``predictor`` over ``trace`` and return measured statistics.

    ``warmup_fraction`` of the records train the predictor without being
    counted, mirroring the paper's warmup/measurement split.

    ``use_step`` selects the hot-path kernel: ``None`` (default) uses the
    predictor's fused ``step`` when it has one, ``True`` requires it, and
    ``False`` forces the two-call ``predict``/``update`` path (useful for
    equivalence testing and for callers that need prediction records).
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
    if tensors is None:
        tensors = TraceTensors(trace)

    # Python-list views of the columns (cached on the trace): plain-int
    # indexing is fastest for the per-branch loop, and numpy scalar types
    # from array/mmap-backed traces must not leak into predictor hashing.
    pcs, takens, targets = trace.aslists("pcs", "taken", "targets")
    n = len(pcs)
    warmup_end = int(n * warmup_fraction)

    step = getattr(predictor, "step", None) if use_step is not False else None
    if use_step is True and step is None:
        raise ValueError(f"predictor {predictor.name!r} has no fused step kernel")
    predict = predictor.predict
    update = predictor.update
    on_unconditional = predictor.on_unconditional

    mispredictions = 0
    warmup_mispredictions = 0
    cond_measured = 0

    # Iterate precomputed same-kind runs instead of testing the kind per
    # record, and split conditional runs at the warmup boundary so the
    # measurement-window test also leaves the inner loop.  Identical
    # counting to the per-record loop (tests/test_simulator_runs.py).
    for start, end, is_cond in tensors.kind_runs():
        if not is_cond:
            for t in range(start, end):
                on_unconditional(t, pcs[t], targets[t])
            continue
        split = min(max(start, warmup_end), end)
        if step is not None:
            for t in range(start, split):
                if step(t, pcs[t], takens[t]):
                    warmup_mispredictions += 1
            for t in range(split, end):
                if step(t, pcs[t], takens[t]):
                    mispredictions += 1
        else:
            for t in range(start, split):
                pc = pcs[t]
                taken = takens[t]
                prediction = predict(t, pc)
                if prediction.pred != taken:
                    warmup_mispredictions += 1
                update(t, pc, taken, prediction)
            for t in range(split, end):
                pc = pcs[t]
                taken = takens[t]
                prediction = predict(t, pc)
                if prediction.pred != taken:
                    mispredictions += 1
                update(t, pc, taken, prediction)
        cond_measured += end - split

    instr = tensors.instr_index
    total_instr = int(instr[-1]) if n else 0
    warmup_instr = int(instr[warmup_end - 1]) if warmup_end > 0 else 0

    result = SimulationResult(
        workload=trace.name,
        predictor=predictor.name,
        instructions=total_instr - warmup_instr,
        conditional_branches=cond_measured,
        mispredictions=mispredictions,
        warmup_mispredictions=warmup_mispredictions,
        total_instructions=total_instr,
    )
    stats = getattr(predictor, "stats", None)
    if stats is not None:
        result.stats = stats.as_dict()
    collect_extra = getattr(predictor, "collect_extra", None)
    if collect_extra is not None:
        result.extra = collect_extra()
    return result
