"""Simulation core: the trace-driven loop, runners, and paper analyses."""

from repro.core.analysis import (
    ContextProfile,
    context_profile,
    depth_sweep_relative,
    duplication_by_depth,
    useful_by_depth,
)
from repro.core.artifacts import ARTIFACT_FORMAT_VERSION, ArtifactStore, BundleArtifacts
from repro.core.limit_study import LIMIT_STEPS, LimitStep, cumulative_overrides, run_limit_study
from repro.core.runner import (
    DEFAULT_BRANCHES,
    DEFAULT_SCALE,
    ComparisonRow,
    Runner,
    RunnerConfig,
    WorkloadBundle,
    comparison_table,
    geometric_mean_mpki,
    reduction,
)
from repro.core.results_io import (
    ResultCache,
    TimingStore,
    cache_digest,
    cache_key,
    freeze_overrides,
    load_results,
    result_from_dict,
    result_key,
    result_to_dict,
    save_results,
)
from repro.core.simulator import Predictor, SimulationResult, simulate

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactStore",
    "BundleArtifacts",
    "ComparisonRow",
    "ContextProfile",
    "DEFAULT_BRANCHES",
    "DEFAULT_SCALE",
    "LIMIT_STEPS",
    "LimitStep",
    "Predictor",
    "ResultCache",
    "Runner",
    "RunnerConfig",
    "SimulationResult",
    "TimingStore",
    "WorkloadBundle",
    "cache_digest",
    "cache_key",
    "comparison_table",
    "context_profile",
    "cumulative_overrides",
    "depth_sweep_relative",
    "duplication_by_depth",
    "freeze_overrides",
    "geometric_mean_mpki",
    "load_results",
    "reduction",
    "result_from_dict",
    "result_key",
    "result_to_dict",
    "run_limit_study",
    "save_results",
    "simulate",
    "useful_by_depth",
]
