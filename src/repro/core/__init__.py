"""Simulation core: the trace-driven loop, runners, and paper analyses."""

from repro.core.analysis import (
    ContextProfile,
    context_profile,
    depth_sweep_relative,
    duplication_by_depth,
    useful_by_depth,
)
from repro.core.artifacts import ARTIFACT_FORMAT_VERSION, ArtifactStore, BundleArtifacts
from repro.core.faults import FaultError, FaultInjector, active_injector, parse_fault_spec
from repro.core.limit_study import LIMIT_STEPS, LimitStep, cumulative_overrides, run_limit_study
from repro.core.parallel import CellExecutionError, RetryPolicy
from repro.core.run_report import CellReport, RunReport
from repro.core.runner import (
    DEFAULT_BRANCHES,
    DEFAULT_SCALE,
    ComparisonRow,
    Runner,
    RunnerConfig,
    WorkloadBundle,
    comparison_table,
    geometric_mean_mpki,
    reduction,
)
from repro.core.results_io import (
    ResultCache,
    TimingStore,
    cache_digest,
    cache_key,
    freeze_overrides,
    load_results,
    result_from_dict,
    result_key,
    result_to_dict,
    save_results,
)
from repro.core.simulator import Predictor, SimulationResult, simulate

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactStore",
    "BundleArtifacts",
    "CellExecutionError",
    "CellReport",
    "ComparisonRow",
    "ContextProfile",
    "DEFAULT_BRANCHES",
    "DEFAULT_SCALE",
    "FaultError",
    "FaultInjector",
    "LIMIT_STEPS",
    "LimitStep",
    "Predictor",
    "ResultCache",
    "RetryPolicy",
    "RunReport",
    "Runner",
    "RunnerConfig",
    "SimulationResult",
    "TimingStore",
    "WorkloadBundle",
    "active_injector",
    "cache_digest",
    "cache_key",
    "comparison_table",
    "context_profile",
    "cumulative_overrides",
    "depth_sweep_relative",
    "duplication_by_depth",
    "freeze_overrides",
    "geometric_mean_mpki",
    "load_results",
    "parse_fault_spec",
    "reduction",
    "result_from_dict",
    "result_key",
    "result_to_dict",
    "run_limit_study",
    "save_results",
    "simulate",
    "useful_by_depth",
]
