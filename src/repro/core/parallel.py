"""Process-parallel execution of experiment matrices.

Every figure the paper reports is a matrix of (workload x predictor
configuration) simulations; this module fans the *uncached* cells of such
a matrix out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Scheduling is **cell-granular**: one task per (workload, config) cell,
submitted longest-expected-first.  The old workload-major chunking capped
parallelism at the number of workloads and serialized the matrix tail on
straggler chunks (per-workload costs differ by >3x); per-cell tasks keep
every core busy to the end.  Expected cost comes from a
:class:`CostModel` -- trace length x configuration weight, refined by
observed cell timings persisted alongside the result cache
(:class:`~repro.core.results_io.TimingStore`) -- and ordering affects
*wall-clock only*, never results.

Workers amortise bundle construction two ways: a process-global
:class:`~repro.core.runner.Runner` keeps the most recently used bundles
alive across the cells a worker executes (LRU-bounded), and when an
``artifact_dir`` is given every worker resolves bundles through the
shared :class:`~repro.core.artifacts.ArtifactStore` -- an mmap + wrap
whose pages all workers share -- instead of regenerating traces
privately.

Determinism: each cell's result is a pure function of ``(RunnerConfig,
workload, config name, overrides)`` -- trace generation is seeded and the
predictors draw no ambient randomness -- so results are bit-identical to
the serial path regardless of scheduling order, worker count, or cost
model.  ``tests/test_parallel.py`` pins this.

The workload-major entry points (:func:`simulate_chunk`,
:func:`run_chunks`, :func:`chunk_cells`) remain for callers that want
one-task-per-workload batching, but :meth:`Runner.run_cells` now
schedules cell-granular.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.results_io import TimingStore
from repro.core.simulator import SimulationResult

#: one unit of work inside a chunk: ``(config name, config overrides)``
ChunkCell = Tuple[str, Mapping[str, object]]

#: one cell-granular unit of work: ``(workload, config name, overrides)``
Cell = Tuple[str, str, Mapping[str, object]]

#: relative single-simulation cost by config-name prefix (first match
#: wins; measured on the shipped kernels -- Opt-W replays three LLBP-X
#: simulations).  Only scheduling order depends on these.
CONFIG_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("llbpx_optw", 5.4),
    ("llbpx", 1.9),
    ("llbp", 1.6),
    ("tsl_inf", 1.3),
)

#: static per-branch cost scale (seconds/branch at the measured ~100k
#: branches/sec baseline rate) -- keeps static estimates in the same
#: units as observed timings
_SECONDS_PER_BRANCH = 1e-5

#: bundles a worker process keeps alive across cells (LRU)
MAX_WORKER_BUNDLES = 4


def config_weight(name: str) -> float:
    """Relative cost weight of a predictor configuration."""
    for prefix, weight in CONFIG_WEIGHTS:
        if name.startswith(prefix):
            return weight
    return 1.0


class CostModel:
    """Expected wall-clock of one cell, for longest-expected-first order.

    The static estimate is ``trace length x configuration weight``; an
    attached :class:`TimingStore` overrides it with the observed EMA for
    cells that have run before (persisted alongside the result cache, so
    estimates survive across invocations).  Estimates order the queue --
    they never affect results.
    """

    def __init__(self, timings: Optional[TimingStore] = None) -> None:
        self.timings = timings

    def estimate(self, workload: str, name: str, num_branches: int) -> float:
        if self.timings is not None:
            observed = self.timings.get(workload, name)
            if observed is not None:
                return observed
        return num_branches * config_weight(name) * _SECONDS_PER_BRANCH

    def observe(self, workload: str, name: str, seconds: float) -> None:
        if self.timings is not None:
            self.timings.observe(workload, name, seconds)

    def save(self) -> None:
        if self.timings is not None:
            self.timings.save()


# -- worker side ---------------------------------------------------------------

#: process-global runner state: ``(key, Runner)`` reused across the cells
#: this worker executes, so bundles survive between same-workload cells
_WORKER_STATE: Dict[str, object] = {"key": None, "runner": None}


def _worker_runner(config: "RunnerConfig", artifact_dir: Optional[str]):
    """The process-global worker Runner (rebuilt when the config changes).

    No disk *result* cache is attached -- the parent filters cached cells
    before dispatch and persists worker results itself, so workers never
    race on result files.  The artifact store, by contrast, is safe and
    profitable to share: loads are mmap-backed and writes are atomic.
    """
    from repro.core.artifacts import ArtifactStore
    from repro.core.runner import Runner

    key = (config, artifact_dir)
    if _WORKER_STATE["key"] != key:
        artifacts = ArtifactStore(artifact_dir) if artifact_dir else None
        _WORKER_STATE["key"] = key
        _WORKER_STATE["runner"] = Runner(config, artifacts=artifacts)
    return _WORKER_STATE["runner"]


def simulate_cell(
    config: "RunnerConfig",
    workload: str,
    name: str,
    overrides: Mapping[str, object],
    artifact_dir: Optional[str] = None,
) -> Tuple[SimulationResult, float]:
    """Worker entry point: simulate one cell; returns (result, seconds).

    The measured seconds include any bundle build/load this cell paid
    for, which is exactly the marginal cost the scheduler's cost model
    wants to learn.
    """
    runner = _worker_runner(config, artifact_dir)
    start = time.perf_counter()
    result = runner.run_one(workload, name, use_cache=False, **dict(overrides))
    seconds = time.perf_counter() - start
    # LRU-bound the bundles this worker keeps: re-admit the current
    # workload as most recent, then drop the oldest beyond the cap.
    bundle_key = (workload, config.num_branches, config.seed)
    bundle = runner._bundles.pop(bundle_key, None)
    if bundle is not None:
        runner._bundles[bundle_key] = bundle
    while len(runner._bundles) > MAX_WORKER_BUNDLES:
        runner._bundles.pop(next(iter(runner._bundles)))
    return result, seconds


# -- parent side ---------------------------------------------------------------


def run_cells_parallel(
    config: "RunnerConfig",
    cells: Sequence[Cell],
    jobs: int,
    artifact_dir: Optional[str] = None,
    cost_model: Optional[CostModel] = None,
) -> Iterator[Tuple[Cell, SimulationResult]]:
    """Fan cells out over ``jobs`` processes, longest-expected-first.

    Yields ``(cell, result)`` pairs as cells complete (arbitrary order --
    the caller re-associates), so progress reporting works while later
    cells are still running.  Observed timings feed back into the cost
    model (persisted on completion).  Worker exceptions propagate to the
    caller at iteration time.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not cells:
        return
    model = cost_model or CostModel()
    ordered = sorted(
        cells,
        key=lambda cell: model.estimate(cell[0], cell[1], config.num_branches),
        reverse=True,
    )
    max_workers = max(1, min(jobs, len(cells)))
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    simulate_cell, config, workload, name, dict(overrides), artifact_dir
                ): (workload, name, overrides)
                for workload, name, overrides in ordered
            }
            for future in as_completed(futures):
                cell = futures[future]
                result, seconds = future.result()
                model.observe(cell[0], cell[1], seconds)
                yield cell, result
    finally:
        model.save()


# -- legacy workload-major batching --------------------------------------------


def simulate_chunk(
    config: "RunnerConfig", workload: str, cells: Sequence[ChunkCell]
) -> List[SimulationResult]:
    """Worker entry point: simulate every cell of one workload.

    Builds a private :class:`~repro.core.runner.Runner` (no disk cache --
    the parent filters cached cells before dispatch and persists worker
    results itself, so workers never race on cache files) and returns the
    results in cell order.
    """
    from repro.core.runner import Runner

    runner = Runner(config)
    results = [runner.run_one(workload, name, **dict(overrides)) for name, overrides in cells]
    runner.release(workload)
    return results


def run_chunks(
    config: "RunnerConfig",
    chunks: Mapping[str, Sequence[ChunkCell]],
    jobs: int,
) -> Iterator[Tuple[str, List[SimulationResult]]]:
    """Fan workload chunks out over ``jobs`` processes (legacy batching).

    Yields ``(workload, results)`` pairs as chunks complete (arbitrary
    order -- the caller re-associates by workload), so progress reporting
    works while later chunks are still running.  Worker exceptions
    propagate to the caller at iteration time.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not chunks:
        return
    max_workers = max(1, min(jobs, len(chunks)))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            pool.submit(simulate_chunk, config, workload, list(cells)): workload
            for workload, cells in chunks.items()
        }
        for future in as_completed(futures):
            yield futures[future], future.result()


def chunk_cells(
    cells: Sequence[Tuple[str, str, Mapping[str, object]]]
) -> Dict[str, List[ChunkCell]]:
    """Group flat ``(workload, name, overrides)`` cells workload-major."""
    chunks: Dict[str, List[ChunkCell]] = {}
    for workload, name, overrides in cells:
        chunks.setdefault(workload, []).append((name, overrides))
    return chunks
