"""Process-parallel execution of experiment matrices.

Every figure the paper reports is a matrix of (workload x predictor
configuration) simulations; this module fans the *uncached* cells of such
a matrix out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Chunking is workload-major: one task per workload, carrying every
configuration still to simulate for it, so each worker builds the
expensive :class:`~repro.core.runner.WorkloadBundle` (trace generation,
folded-history tensors, context streams) exactly once and releases it
when the chunk finishes.

Determinism: trace generation is a pure function of ``(workload spec,
seed, length)`` -- the :class:`~repro.core.runner.RunnerConfig` (which
carries any seed override) is pickled to every worker explicitly -- and
the predictors draw no ambient randomness, so parallel results are
bit-identical to the serial path.  ``tests/test_parallel.py`` pins this.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.core.simulator import SimulationResult

#: one unit of work inside a chunk: ``(config name, config overrides)``
ChunkCell = Tuple[str, Mapping[str, object]]


def simulate_chunk(
    config: "RunnerConfig", workload: str, cells: Sequence[ChunkCell]
) -> List[SimulationResult]:
    """Worker entry point: simulate every cell of one workload.

    Builds a private :class:`~repro.core.runner.Runner` (no disk cache --
    the parent filters cached cells before dispatch and persists worker
    results itself, so workers never race on cache files) and returns the
    results in cell order.
    """
    from repro.core.runner import Runner

    runner = Runner(config)
    results = [runner.run_one(workload, name, **dict(overrides)) for name, overrides in cells]
    runner.release(workload)
    return results


def run_chunks(
    config: "RunnerConfig",
    chunks: Mapping[str, Sequence[ChunkCell]],
    jobs: int,
) -> Iterator[Tuple[str, List[SimulationResult]]]:
    """Fan workload chunks out over ``jobs`` processes.

    Yields ``(workload, results)`` pairs as chunks complete (arbitrary
    order -- the caller re-associates by workload), so progress reporting
    works while later chunks are still running.  Worker exceptions
    propagate to the caller at iteration time.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not chunks:
        return
    max_workers = max(1, min(jobs, len(chunks)))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            pool.submit(simulate_chunk, config, workload, list(cells)): workload
            for workload, cells in chunks.items()
        }
        for future in as_completed(futures):
            yield futures[future], future.result()


def chunk_cells(
    cells: Sequence[Tuple[str, str, Mapping[str, object]]]
) -> Dict[str, List[ChunkCell]]:
    """Group flat ``(workload, name, overrides)`` cells workload-major."""
    chunks: Dict[str, List[ChunkCell]] = {}
    for workload, name, overrides in cells:
        chunks.setdefault(workload, []).append((name, overrides))
    return chunks
