"""Process-parallel execution of experiment matrices.

Every figure the paper reports is a matrix of (workload x predictor
configuration) simulations; this module fans the *uncached* cells of such
a matrix out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Scheduling is **cell-granular**: one task per (workload, config) cell,
submitted longest-expected-first.  The old workload-major chunking capped
parallelism at the number of workloads and serialized the matrix tail on
straggler chunks (per-workload costs differ by >3x); per-cell tasks keep
every core busy to the end.  Expected cost comes from a
:class:`CostModel` -- trace length x configuration weight, refined by
observed cell timings persisted alongside the result cache
(:class:`~repro.core.results_io.TimingStore`) -- and ordering affects
*wall-clock only*, never results.

Workers amortise bundle construction two ways: a process-global
:class:`~repro.core.runner.Runner` keeps the most recently used bundles
alive across the cells a worker executes (LRU-bounded), and when an
``artifact_dir`` is given every worker resolves bundles through the
shared :class:`~repro.core.artifacts.ArtifactStore` -- an mmap + wrap
whose pages all workers share -- instead of regenerating traces
privately.

Determinism: each cell's result is a pure function of ``(RunnerConfig,
workload, config name, overrides)`` -- trace generation is seeded and the
predictors draw no ambient randomness -- so results are bit-identical to
the serial path regardless of scheduling order, worker count, or cost
model.  ``tests/test_parallel.py`` pins this.

Fault tolerance: campaign-scale matrices must survive partial failure,
so :func:`run_cells_parallel` wraps every cell in a retry loop (capped
exponential backoff), optionally bounds each cell's wall-clock with a
per-cell timeout, recovers from ``BrokenProcessPool`` (a worker OOM-kill
takes down the whole stdlib pool) by rebuilding the pool and re-queueing
the in-flight cells, and degrades to in-process serial execution after
repeated consecutive pool failures.  None of this can affect results:
cells are pure functions of their key, so a retried cell reproduces its
result bit-identically (``tests/test_faults.py`` pins this under
injected crashes).  On an *unrecoverable* error (retry budget exhausted)
the pool is shut down with ``cancel_futures=True`` before the exception
propagates, so a failed matrix -- or a Ctrl-C -- never hangs on its
tail of pending futures.

The workload-major entry points (:func:`simulate_chunk`,
:func:`run_chunks`, :func:`chunk_cells`) remain for callers that want
one-task-per-workload batching, but :meth:`Runner.run_cells` now
schedules cell-granular.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.costmodel import (  # noqa: F401  (re-exported for compat)
    BASE_WARM_BACKEND,
    CONFIG_WEIGHTS,
    _SECONDS_PER_BRANCH,
    CostModel,
    LearnedCostModel,
    config_weight,
    make_cost_model,
)
from repro.core.faults import active_injector
from repro.core.simulator import BACKEND_BATCHED, BACKEND_REFERENCE, SimulationResult
from repro.obs.log import get_logger
from repro.obs.metrics import registry as obs_registry
from repro.obs.telemetry import emit_event
from repro.obs.telemetry import ensure as obs_ensure
from repro.obs.telemetry import flush as obs_flush

logger = get_logger("parallel")

#: ``(telemetry directory, sample interval)`` shipped to workers
TelemetryConfig = Tuple[str, int]

#: one unit of work inside a chunk: ``(config name, config overrides)``
ChunkCell = Tuple[str, Mapping[str, object]]

#: one cell-granular unit of work: ``(workload, config name, overrides)``
Cell = Tuple[str, str, Mapping[str, object]]

#: bundles a worker process keeps alive across cells (LRU)
MAX_WORKER_BUNDLES = 4


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-tolerance knobs for one matrix execution.

    ``retries`` is the number of *re*-executions a single cell may
    consume for its own failures (crash, raised exception, timeout)
    before the run gives up; ``backoff`` / ``backoff_cap`` shape the
    capped exponential delay before a failed cell re-enters the queue.
    ``timeout`` (seconds, ``None`` = off) bounds one cell execution --
    exceeding it kills the pool (stdlib workers cannot be cancelled
    mid-task) and charges the overdue cell.  After
    ``pool_failure_limit`` *consecutive* ``BrokenProcessPool`` incidents
    the run degrades to in-process serial execution, on the theory that
    a pool that keeps dying (e.g. the machine is out of memory for
    worker processes) is worse than no pool.
    """

    retries: int = 3
    backoff: float = 0.1
    backoff_cap: float = 5.0
    timeout: Optional[float] = None
    pool_failure_limit: int = 3


class CellExecutionError(RuntimeError):
    """A cell exhausted its retry budget; the matrix cannot complete."""

    def __init__(self, cell: Cell, kind: str, detail: str, attempts: int) -> None:
        self.cell = cell
        self.kind = kind
        self.detail = detail
        self.attempts = attempts
        super().__init__(
            f"cell {cell[0]}/{cell[1]} failed ({kind}) after {attempts} attempts: {detail}"
        )


def _shutdown_pool(pool: ProcessPoolExecutor, kill: bool = False) -> None:
    """Shut a pool down without waiting; cancel queued work.

    ``kill`` also terminates the worker processes -- required when a
    worker is wedged on a hung cell (``shutdown`` alone would block
    process exit on the stuck task).
    """
    # snapshot the workers first: shutdown() drops the _processes dict
    # even with wait=False, and a wedged worker left unterminated keeps
    # the interpreter's atexit join blocked until its cell finishes
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - teardown of a broken pool
        pass
    if kill:
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass


# -- worker side ---------------------------------------------------------------

#: process-global runner state: ``(key, Runner)`` reused across the cells
#: this worker executes, so bundles survive between same-workload cells
_WORKER_STATE: Dict[str, object] = {"key": None, "runner": None}


def _worker_runner(config: "RunnerConfig", artifact_dir: Optional[str]):
    """The process-global worker Runner (rebuilt when the config changes).

    No disk *result* cache is attached -- the parent filters cached cells
    before dispatch and persists worker results itself, so workers never
    race on result files.  The artifact store, by contrast, is safe and
    profitable to share: loads are mmap-backed and writes are atomic.
    """
    from repro.core.artifacts import ArtifactStore
    from repro.core.runner import Runner

    key = (config, artifact_dir)
    if _WORKER_STATE["key"] != key:
        artifacts = ArtifactStore(artifact_dir) if artifact_dir else None
        _WORKER_STATE["key"] = key
        _WORKER_STATE["runner"] = Runner(config, artifacts=artifacts)
    return _WORKER_STATE["runner"]


def _trim_worker_bundles(runner, workload: str, config: "RunnerConfig") -> None:
    """LRU-bound the bundles a worker keeps: re-admit ``workload`` as most
    recent, then drop the oldest beyond the cap."""
    bundle_key = (workload, config.num_branches, config.seed)
    bundle = runner._bundles.pop(bundle_key, None)
    if bundle is not None:
        runner._bundles[bundle_key] = bundle
    while len(runner._bundles) > MAX_WORKER_BUNDLES:
        runner._bundles.pop(next(iter(runner._bundles)))


def simulate_cell(
    config: "RunnerConfig",
    workload: str,
    name: str,
    overrides: Mapping[str, object],
    artifact_dir: Optional[str] = None,
    in_worker: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
) -> Tuple[SimulationResult, float]:
    """Worker entry point: simulate one cell; returns (result, seconds).

    The measured seconds include any bundle build/load this cell paid
    for, which is exactly the marginal cost the scheduler's cost model
    wants to learn.  Consults the fault injector (``REPRO_FAULT_SPEC``)
    first, so injected crashes/hangs land exactly where real ones do --
    inside a cell execution; ``in_worker=False`` (the serial-fallback
    path) keeps injected crashes from taking out the parent process.

    ``telemetry`` attaches this worker to the run's telemetry directory
    (per-pid event/metrics files; see :mod:`repro.obs`).  The metrics
    snapshot is flushed after *every* completed cell, so a worker later
    killed mid-run leaves exactly the counts of the cells it finished.
    """
    injector = active_injector()
    if injector is not None:
        injector.fire(workload, name, in_worker=in_worker)
    if telemetry is not None and in_worker:
        obs_ensure(telemetry[0], sample_interval=telemetry[1])
    runner = _worker_runner(config, artifact_dir)
    start = time.perf_counter()
    result = runner.run_one(workload, name, use_cache=False, **dict(overrides))
    seconds = time.perf_counter() - start
    if telemetry is not None and in_worker:
        obs_flush()
    _trim_worker_bundles(runner, workload, config)
    return result, seconds


@dataclass(frozen=True)
class _Task:
    """One schedulable unit: a batched group or a single reference cell.

    ``backend`` decides the worker entry: ``batched`` tasks run their
    cells (all one workload, sharing a base TageConfig) through
    :func:`repro.core.batched.run_group`; ``reference`` tasks are always
    singletons and run through :func:`simulate_cell`.  ``base_warm`` is
    the planner's prediction that the group's base stream is persisted
    (tail-only replay) -- it sharpens the cost estimate; the worker
    reports the actual warmth per lane.
    """

    cells: Tuple[Cell, ...]
    backend: str = BACKEND_REFERENCE
    base_warm: bool = False

    @property
    def workload(self) -> str:
        return self.cells[0][0]

    def label(self) -> str:
        if len(self.cells) == 1:
            return f"{self.cells[0][0]}/{self.cells[0][1]}"
        return f"{self.workload}/[{'+'.join(name for _, name, _ in self.cells)}]"


def simulate_task(
    config: "RunnerConfig",
    cells: Sequence[Cell],
    backend: str = BACKEND_REFERENCE,
    artifact_dir: Optional[str] = None,
    in_worker: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
) -> List[Tuple[Cell, SimulationResult, float, bool]]:
    """Worker entry point: execute one task; returns per-cell records.

    ``(cell, result, seconds, base_warm)`` per member, where a batched
    lane's seconds are its tail plus an equal share of the group's
    shared base (the cost the scheduler should learn under the
    ``batched`` -- or, when the base stream was adopted from the
    artifact store, ``batched+warm`` -- key).  The fault injector
    consults *every* member, so a fault spec targeting any lane of a
    group fires exactly as it would have on that cell's standalone
    execution.
    """
    injector = active_injector()
    if injector is not None:
        for workload, name, _ in cells:
            injector.fire(workload, name, in_worker=in_worker)
    if telemetry is not None and in_worker:
        obs_ensure(telemetry[0], sample_interval=telemetry[1])
    runner = _worker_runner(config, artifact_dir)
    workload = cells[0][0]
    out: List[Tuple[Cell, SimulationResult, float, bool]] = []
    if backend == BACKEND_BATCHED and len(cells) >= 1:
        from repro.core.batched import run_group

        for outcome in run_group(runner, workload, [(w, n, dict(o)) for w, n, o in cells]):
            out.append((outcome.cell, outcome.result, outcome.seconds, outcome.base_warm))
    else:
        for w, name, overrides in cells:
            start = time.perf_counter()
            result = runner.run_one(w, name, use_cache=False, **dict(overrides))
            out.append(
                ((w, name, dict(overrides)), result, time.perf_counter() - start, False)
            )
    if telemetry is not None and in_worker:
        obs_flush()
    _trim_worker_bundles(runner, workload, config)
    return out


# -- parent side ---------------------------------------------------------------


def effective_jobs(jobs: Optional[int]) -> int:
    """Resolve a requested job count against the machine's cores.

    ``0``/``None`` means *auto* (one job per core).  Requests beyond
    ``os.cpu_count()`` are clamped with a warning: oversubscribed pools
    measurably regress (the BENCH matrix showed ``jobs=2`` at 0.58x of
    ``jobs=1`` on a 1-CPU box -- pure scheduling thrash).
    """
    available = os.cpu_count() or 1
    if not jobs:
        return available
    if jobs > available:
        logger.warning(
            "requested %d jobs on a %d-CPU machine; clamping to %d workers "
            "(oversubscription runs slower, not faster)",
            jobs,
            available,
            available,
        )
        obs_registry().counter("parallel.jobs_clamped").inc()
        return available
    return jobs


def plan_tasks(
    cells: Sequence[Cell],
    config: "RunnerConfig",
    backend: str,
    base_warm: Optional[Callable[[str, object], bool]] = None,
) -> List[_Task]:
    """Partition cells into schedulable tasks for ``backend``.

    ``reference`` keeps the cell-granular schedule (one task per cell).
    ``auto``/``batched`` group each workload's cells sharing a batchable
    base TageConfig into one batched task (``auto`` only when at least
    two cells share -- or the ``base_warm(workload, base_config)``
    predicate says a singleton's base stream is persisted, making
    tail-only replay worthwhile); everything else stays a reference
    singleton, with structurally non-batchable cells counted on
    ``backend.fallbacks``.
    """
    if backend == BACKEND_REFERENCE:
        return [_Task(cells=(cell,)) for cell in cells]
    from repro.core.batched import base_config as base_config_of
    from repro.core.batched import plan_batches

    by_workload: Dict[str, List[Cell]] = {}
    for cell in cells:
        by_workload.setdefault(cell[0], []).append(cell)
    tasks: List[_Task] = []
    fallbacks = 0
    for workload_cells in by_workload.values():
        plan = plan_batches(
            workload_cells,
            config.scale,
            min_lanes=1 if backend == BACKEND_BATCHED else 2,
            base_warm=base_warm,
        )
        fallbacks += plan.fallbacks
        for group in plan.groups:
            warm = False
            if base_warm is not None:
                base_cfg = base_config_of(group[0][1], config.scale)
                warm = base_cfg is not None and base_warm(group[0][0], base_cfg)
            tasks.append(_Task(cells=tuple(group), backend=BACKEND_BATCHED, base_warm=warm))
        for cell in plan.singles:
            tasks.append(_Task(cells=(cell,)))
    if fallbacks:
        obs_registry().counter("backend.fallbacks").inc(fallbacks)
    return tasks


def run_cells_parallel(
    config: "RunnerConfig",
    cells: Sequence[Cell],
    jobs: int,
    artifact_dir: Optional[str] = None,
    cost_model: Optional[CostModel] = None,
    policy: Optional[RetryPolicy] = None,
    report=None,
    telemetry: Optional[TelemetryConfig] = None,
    backend: str = BACKEND_REFERENCE,
    base_warm: Optional[Callable[[str, object], bool]] = None,
) -> Iterator[Tuple[Cell, SimulationResult]]:
    """Fan cells out over ``jobs`` processes, longest-expected-first.

    Yields ``(cell, result)`` pairs as cells complete (arbitrary order --
    the caller re-associates), so progress reporting works while later
    cells are still running.  Observed timings feed back into the cost
    model (persisted on completion), keyed by execution backend.

    ``backend`` selects the execution engine per :func:`plan_tasks`:
    under ``auto``/``batched``, cells of one workload sharing a batchable
    base TageConfig travel as one *batched task* -- one worker runs their
    shared base once and every lane tail (:mod:`repro.core.batched`) --
    and retry/timeout handling treats the task as a unit.

    Execution is fault-tolerant per ``policy`` (see :class:`RetryPolicy`):

    * a worker **exception** charges the cell and re-queues it after a
      capped exponential backoff;
    * a **pool break** (worker process died -- OOM kill, segfault,
      injected crash) charges every in-flight cell (the stdlib gives no
      finer attribution), rebuilds the pool, and re-queues them; after
      ``pool_failure_limit`` consecutive breaks the remaining cells run
      in-process (serial fallback);
    * a **timeout** (when ``policy.timeout`` is set) charges only the
      overdue cell; other in-flight cells are re-queued as
      *interruptions* that do not consume their retry budget (the pool
      must be killed to reclaim the wedged worker).

    A cell whose retry budget is exhausted raises
    :class:`CellExecutionError`; the pool is torn down with
    ``cancel_futures=True`` first, so neither an error nor a caller
    abandoning the iterator leaves pending futures running.  Retries
    cannot change results: every cell is a pure function of its key.
    ``report`` (a :class:`~repro.core.run_report.RunReport`) receives
    per-cell attempt/failure/success records when provided.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not cells:
        return
    policy = policy or RetryPolicy()
    model = cost_model or CostModel()

    #: per-cell predicted seconds captured at ordering time, so completed
    #: cells can be scored predicted-vs-actual in the run report
    predictions: Dict[Tuple[str, str, str], float] = {}

    def task_key(task: _Task) -> str:
        """Timing/estimate backend key (warm replay costs systematically less)."""
        return BASE_WARM_BACKEND if task.base_warm else task.backend

    def task_estimate(task: _Task) -> float:
        total = 0.0
        for workload, name, _ in task.cells:
            estimate = model.estimate(workload, name, config.num_branches, task_key(task))
            predictions[(workload, name, task.backend)] = estimate
            total += estimate
        return total

    ordered: List[_Task] = sorted(
        plan_tasks(cells, config, backend, base_warm=base_warm), key=task_estimate, reverse=True
    )
    if report is not None:
        report.cost_model_kind = getattr(model, "kind", "heuristic")
    # the *pool* is bounded by real cores even when the caller asked for
    # more -- the jobs>1 dispatch path (and its fault handling) is kept,
    # only the worker count is clamped
    max_workers = max(1, min(effective_jobs(jobs), len(ordered)))
    attempts = [0] * len(ordered)
    #: (task index, earliest re-dispatch time) -- backoff lives here
    pending: Deque[Tuple[int, float]] = deque((i, 0.0) for i in range(len(ordered)))
    inflight: Dict[Future, Tuple[int, Optional[float]]] = {}
    #: submission time per in-flight future, feeding the queue-to-done
    #: latency histogram (dispatch wait + execution, the figure the
    #: scheduler's cost model is trying to predict)
    submit_ts: Dict[Future, float] = {}
    pool: Optional[ProcessPoolExecutor] = None
    consecutive_breaks = 0
    fallback = False

    def charge(index: int, kind: str, detail: str) -> None:
        """Record a failure of the task's own making; re-queue or give up.

        A batched task fails and retries as a unit (its lanes share one
        base pass), so the failure is recorded against every member cell.
        """
        task = ordered[index]
        if report is not None:
            for workload, name, overrides in task.cells:
                report.record_failure(workload, name, overrides, kind, detail)
        obs_registry().counter("parallel.retries").inc()
        if attempts[index] > policy.retries:
            logger.error(
                "task %s failed (%s) after %d attempts: %s -- giving up",
                task.label(),
                kind,
                attempts[index],
                detail,
            )
            raise CellExecutionError(task.cells[0], kind, detail, attempts[index])
        logger.warning(
            "task %s failed (%s): %s -- retry %d/%d",
            task.label(),
            kind,
            detail,
            attempts[index],
            policy.retries,
        )
        delay = min(policy.backoff_cap, policy.backoff * (2 ** max(0, attempts[index] - 1)))
        pending.append((index, time.monotonic() + max(0.0, delay)))

    def interrupt(index: int) -> None:
        """Re-queue an innocent in-flight task without charging it."""
        attempts[index] -= 1  # the killed execution does not count
        if report is not None:
            for workload, name, overrides in ordered[index].cells:
                report.record_interruption(workload, name, overrides)
        pending.append((index, 0.0))

    def succeed(index: int, records) -> Iterator[Tuple[Cell, SimulationResult]]:
        """Book one completed task: timings, report records, results."""
        task = ordered[index]
        if task.backend == BACKEND_BATCHED and report is not None:
            report.record_batched_group(len(task.cells))
        for (workload, name, overrides), result, seconds, lane_warm in records:
            # the worker's actual warmth wins over the planner's guess
            observe_key = BASE_WARM_BACKEND if lane_warm else task.backend
            model.observe(workload, name, seconds, observe_key, branches=config.num_branches)
            if report is not None:
                report.record_success(
                    workload, name, overrides, seconds, backend=task.backend, base_warm=lane_warm
                )
                predicted = predictions.get((workload, name, task.backend))
                if predicted is not None:
                    report.record_prediction(predicted, seconds)
            yield (workload, name, overrides), result

    def handle_break(detail: str) -> None:
        """A worker died: charge in-flight cells, drop the pool."""
        nonlocal pool, consecutive_breaks, fallback
        consecutive_breaks += 1
        if report is not None:
            report.pool_rebuilds += 1
        obs_registry().counter("parallel.pool_rebuilds").inc()
        emit_event("pool-rebuild", detail=detail, consecutive=consecutive_breaks)
        logger.warning(
            "worker pool broke (%s); rebuilding (consecutive break %d)",
            detail,
            consecutive_breaks,
        )
        indices = [index for index, _ in inflight.values()]
        inflight.clear()
        submit_ts.clear()
        if pool is not None:
            _shutdown_pool(pool, kill=True)
            pool = None
        for index in indices:
            charge(index, "pool-break", detail)
        if consecutive_breaks >= policy.pool_failure_limit:
            fallback = True
            if report is not None:
                report.serial_fallback = True
            emit_event("serial-fallback", consecutive=consecutive_breaks)
            logger.warning(
                "degrading to in-process serial execution after %d consecutive pool failures",
                consecutive_breaks,
            )

    interrupted = False
    try:
        while pending or inflight:
            if fallback:
                # graceful degradation: finish the matrix in-process.
                # Injected crashes raise here instead of exiting (see
                # simulate_task), so the retry accounting still applies.
                index, not_before = pending.popleft()
                delay = not_before - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                task = ordered[index]
                attempts[index] += 1
                if report is not None:
                    for workload, name, overrides in task.cells:
                        report.record_attempt(workload, name, overrides)
                try:
                    records = simulate_task(
                        config,
                        list(task.cells),
                        task.backend,
                        artifact_dir,
                        in_worker=False,
                        telemetry=telemetry,
                    )
                except Exception as exc:
                    charge(index, "exception", repr(exc))
                    continue
                for pair in succeed(index, records):
                    yield pair
                continue

            if pool is None:
                pool = ProcessPoolExecutor(max_workers=max_workers)

            # submit at most one task per worker so a submitted task is
            # (almost) immediately a *running* task -- that keeps the
            # per-cell deadline honest and pool-break attribution tight
            submit_broke: Optional[str] = None
            while pending and len(inflight) < max_workers:
                now = time.monotonic()
                ready = None
                for position, (index, not_before) in enumerate(pending):
                    if not_before <= now:
                        ready = position
                        break
                if ready is None:
                    if inflight:
                        break  # completions will wake us before the backoff ends
                    soonest = min(not_before for _, not_before in pending)
                    time.sleep(max(0.0, soonest - time.monotonic()))
                    continue
                index, _ = pending[ready]
                del pending[ready]
                task = ordered[index]
                try:
                    future = pool.submit(
                        simulate_task,
                        config,
                        list(task.cells),
                        task.backend,
                        artifact_dir,
                        True,
                        telemetry,
                    )
                except BrokenProcessPool as exc:  # pool died between rounds
                    pending.appendleft((index, 0.0))
                    submit_broke = str(exc) or "BrokenProcessPool"
                    break
                attempts[index] += 1
                if report is not None:
                    for workload, name, overrides in task.cells:
                        report.record_attempt(workload, name, overrides)
                deadline = now + policy.timeout if policy.timeout is not None else None
                inflight[future] = (index, deadline)
                submit_ts[future] = now
            if submit_broke is not None:
                handle_break(submit_broke)
                continue
            if not inflight:
                continue

            wait_timeout: Optional[float] = None
            now = time.monotonic()
            deadlines = [dl for _, dl in inflight.values() if dl is not None]
            if deadlines:
                wait_timeout = max(0.01, min(deadlines) - now)
            if pending and len(inflight) < max_workers:
                soonest = min(not_before for _, not_before in pending)
                if soonest > now:
                    backoff_wake = max(0.01, soonest - now)
                    wait_timeout = (
                        backoff_wake if wait_timeout is None else min(wait_timeout, backoff_wake)
                    )
            done, _ = wait(set(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED)

            broke: Optional[str] = None
            for future in done:
                index, _ = inflight.pop(future)
                started = submit_ts.pop(future, None)
                try:
                    records = future.result()
                except BrokenProcessPool as exc:
                    # every in-flight future of a broken pool raises this;
                    # charge this one now, handle_break charges the rest
                    broke = str(exc) or "BrokenProcessPool"
                    charge(index, "pool-break", broke)
                except Exception as exc:
                    charge(index, "exception", repr(exc))
                else:
                    consecutive_breaks = 0
                    if started is not None:
                        obs_registry().histogram("parallel.task.seconds").observe(
                            time.monotonic() - started
                        )
                    for pair in succeed(index, records):
                        yield pair
            if broke is not None:
                handle_break(broke)
                continue

            if policy.timeout is not None:
                now = time.monotonic()
                overdue = [
                    future
                    for future, (_, deadline) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                if overdue:
                    # a wedged worker can only be reclaimed by killing
                    # the pool; innocent in-flight cells are re-queued
                    # without being charged
                    if report is not None:
                        report.timeouts += len(overdue)
                        report.pool_rebuilds += 1
                    obs_registry().counter("parallel.timeouts").inc(len(overdue))
                    obs_registry().counter("parallel.pool_rebuilds").inc()
                    for future in overdue:
                        index, _ = inflight.pop(future)
                        task = ordered[index]
                        workload, name, _ = task.cells[0]
                        emit_event(
                            "cell-timeout", workload=workload, config=name, seconds=policy.timeout
                        )
                        logger.warning(
                            "task %s exceeded %.1fs; killing the pool to reclaim its worker",
                            task.label(),
                            policy.timeout,
                        )
                        charge(index, "timeout", f"exceeded {policy.timeout:.1f}s")
                    for future, (index, _) in list(inflight.items()):
                        interrupt(index)
                    inflight.clear()
                    submit_ts.clear()
                    _shutdown_pool(pool, kill=True)
                    pool = None
    except (KeyboardInterrupt, GeneratorExit):
        # Ctrl-C in the parent, or the caller abandoning the iterator
        # (e.g. the experiment service cancelling a job): cancel every
        # queued future and terminate the workers *now* -- an interrupted
        # matrix must never leave a pool alive behind the exception.
        interrupted = True
        raise
    finally:
        if pool is not None:
            _shutdown_pool(pool, kill=True)
            pool = None
        if interrupted:
            obs_registry().counter("parallel.interrupts").inc()
            emit_event("run-interrupted", pending=len(pending), inflight=len(inflight))
            logger.warning(
                "interrupted: cancelled %d queued and %d in-flight tasks",
                len(pending),
                len(inflight),
            )
        model.save()


# -- legacy workload-major batching --------------------------------------------


def simulate_chunk(
    config: "RunnerConfig", workload: str, cells: Sequence[ChunkCell]
) -> List[SimulationResult]:
    """Worker entry point: simulate every cell of one workload.

    Builds a private :class:`~repro.core.runner.Runner` (no disk cache --
    the parent filters cached cells before dispatch and persists worker
    results itself, so workers never race on cache files) and returns the
    results in cell order.
    """
    from repro.core.runner import Runner

    runner = Runner(config)
    results = [runner.run_one(workload, name, **dict(overrides)) for name, overrides in cells]
    runner.release(workload)
    return results


def run_chunks(
    config: "RunnerConfig",
    chunks: Mapping[str, Sequence[ChunkCell]],
    jobs: int,
) -> Iterator[Tuple[str, List[SimulationResult]]]:
    """Fan workload chunks out over ``jobs`` processes (legacy batching).

    Yields ``(workload, results)`` pairs as chunks complete (arbitrary
    order -- the caller re-associates by workload), so progress reporting
    works while later chunks are still running.  Worker exceptions
    propagate to the caller at iteration time.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not chunks:
        return
    max_workers = max(1, min(jobs, len(chunks)))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            pool.submit(simulate_chunk, config, workload, list(cells)): workload
            for workload, cells in chunks.items()
        }
        for future in as_completed(futures):
            yield futures[future], future.result()


def chunk_cells(
    cells: Sequence[Tuple[str, str, Mapping[str, object]]]
) -> Dict[str, List[ChunkCell]]:
    """Group flat ``(workload, name, overrides)`` cells workload-major."""
    chunks: Dict[str, List[ChunkCell]] = {}
    for workload, name, overrides in cells:
        chunks.setdefault(workload, []).append((name, overrides))
    return chunks
