"""Persistence for simulation results.

Experiment campaigns are expensive; this module serialises
:class:`~repro.core.simulator.SimulationResult` collections to JSON so
analyses (or the EXPERIMENTS.md comparison) can be re-run without
re-simulating.  Round-trips preserve every field.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.core.simulator import SimulationResult

_FORMAT_VERSION = 1


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    return {
        "workload": result.workload,
        "predictor": result.predictor,
        "instructions": result.instructions,
        "conditional_branches": result.conditional_branches,
        "mispredictions": result.mispredictions,
        "warmup_mispredictions": result.warmup_mispredictions,
        "total_instructions": result.total_instructions,
        "stats": result.stats,
        "extra": result.extra,
    }


def result_from_dict(data: Dict[str, object]) -> SimulationResult:
    return SimulationResult(
        workload=str(data["workload"]),
        predictor=str(data["predictor"]),
        instructions=int(data["instructions"]),
        conditional_branches=int(data["conditional_branches"]),
        mispredictions=int(data["mispredictions"]),
        warmup_mispredictions=int(data["warmup_mispredictions"]),
        total_instructions=int(data["total_instructions"]),
        stats={str(k): int(v) for k, v in dict(data.get("stats", {})).items()},
        extra={str(k): float(v) for k, v in dict(data.get("extra", {})).items()},
    )


def save_results(results: Iterable[SimulationResult], path: Union[str, Path]) -> None:
    """Write a result collection as JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "results": [result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_results(path: Union[str, Path]) -> List[SimulationResult]:
    """Read a result collection previously written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported results format version {version!r}")
    return [result_from_dict(entry) for entry in payload["results"]]
