"""Persistence for simulation results.

Experiment campaigns are expensive; this module serialises
:class:`~repro.core.simulator.SimulationResult` collections to JSON so
analyses (or the EXPERIMENTS.md comparison) can be re-run without
re-simulating.  Round-trips preserve every field.

It also provides the persistent, content-addressed result cache the
:class:`~repro.core.runner.Runner` consults before simulating.  Cache
entries are keyed by a hash of everything a simulation's outcome depends
on -- workload, configuration name, config overrides, the
:class:`~repro.core.runner.RunnerConfig`, and the trace-generator
version -- so overlapping experiments (the Table I baselines reappearing
in Figs 4/12/13) and repeat invocations skip simulation entirely, while
any change to run parameters or generator semantics misses naturally.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.faults import active_injector, stale_temp
from repro.core.simulator import BACKEND_REFERENCE, SimulationResult
from repro.obs.metrics import registry as obs_registry
from repro.traces.generator import GENERATOR_VERSION

_FORMAT_VERSION = 1
#: version of the on-disk cache-entry layout (not the key hash)
CACHE_FORMAT_VERSION = 1

#: structured identity of one simulation cell: ``(workload, config name,
#: frozen overrides)``.  Shared by the Runner's in-memory memo and the
#: disk cache's key hash, so the two can never disagree.
ResultKey = Tuple[str, str, Tuple[Tuple[str, object], ...]]


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    return {
        "workload": result.workload,
        "predictor": result.predictor,
        "instructions": result.instructions,
        "conditional_branches": result.conditional_branches,
        "mispredictions": result.mispredictions,
        "warmup_mispredictions": result.warmup_mispredictions,
        "total_instructions": result.total_instructions,
        "stats": result.stats,
        "extra": result.extra,
    }


def result_from_dict(data: Dict[str, object]) -> SimulationResult:
    return SimulationResult(
        workload=str(data["workload"]),
        predictor=str(data["predictor"]),
        instructions=int(data["instructions"]),
        conditional_branches=int(data["conditional_branches"]),
        mispredictions=int(data["mispredictions"]),
        warmup_mispredictions=int(data["warmup_mispredictions"]),
        total_instructions=int(data["total_instructions"]),
        stats={str(k): int(v) for k, v in dict(data.get("stats", {})).items()},
        extra={str(k): float(v) for k, v in dict(data.get("extra", {})).items()},
    )


def save_results(results: Iterable[SimulationResult], path: Union[str, Path]) -> None:
    """Write a result collection as JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "results": [result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_results(path: Union[str, Path]) -> List[SimulationResult]:
    """Read a result collection previously written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported results format version {version!r}")
    return [result_from_dict(entry) for entry in payload["results"]]


# -- cache keys ---------------------------------------------------------------


def _freeze(value: object) -> object:
    """Recursively convert a value to a hashable, order-stable form."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_freeze(v) for v in value), key=repr))
    return value


def freeze_overrides(overrides: Optional[Mapping[str, object]]) -> Tuple[Tuple[str, object], ...]:
    """Canonical hashable form of a config-override mapping."""
    if not overrides:
        return ()
    return tuple(sorted((str(k), _freeze(v)) for k, v in overrides.items()))


def result_key(
    workload: str, name: str, overrides: Optional[Mapping[str, object]] = None
) -> ResultKey:
    """Structured identity of one simulation cell.

    Replaces the old ``name + repr(sorted(overrides.items()))`` string
    concatenation, which could collide (a config name embedding a
    bracket, overrides whose repr happens to extend the name) and broke
    on unhashable override values.
    """
    return (workload, name, freeze_overrides(overrides))


def cache_key(
    workload: str,
    name: str,
    overrides: Optional[Mapping[str, object]],
    runner_config: object,
    generator_version: int = GENERATOR_VERSION,
) -> Dict[str, object]:
    """Everything a simulation's outcome depends on, as a JSON-able dict."""
    return {
        "workload": workload,
        "config": name,
        "overrides": repr(freeze_overrides(overrides)),
        "runner_config": {str(k): repr(v) for k, v in asdict(runner_config).items()},
        "generator_version": generator_version,
    }


def cache_digest(key: Mapping[str, object]) -> str:
    """Content hash of a :func:`cache_key` payload (the cache filename)."""
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


# -- observed cell timings ----------------------------------------------------

TIMINGS_FORMAT_VERSION = 1

#: timing-store filename inside a cache directory.  Deliberately not
#: ``*.json`` so :meth:`ResultCache.clear`/``__len__`` (which glob result
#: entries by that pattern) never count or delete it.
TIMINGS_FILENAME = "timings.meta"

#: learned-cost-model coefficient file, persisted beside the timings
#: (same non-``*.json`` convention; see :mod:`repro.core.costmodel`)
COSTMODEL_FILENAME = "costmodel.meta"


class TimingStore:
    """Persisted EMA of observed per-cell wall-clock seconds.

    Feeds the parallel scheduler's cost model
    (:class:`~repro.core.parallel.CostModel`): cells that have run before
    are ordered by how long they actually took, not by a static estimate.
    Lives alongside the result cache (one small JSON file, atomic
    writes); timings are advisory -- a missing, stale, or corrupt file
    only degrades scheduling order, never results -- so any load error is
    treated as an empty store.  ``path=None`` keeps timings in memory
    only (still useful within one invocation).  Saving *merges* with the
    on-disk state instead of overwriting it, so two invocations sharing a
    cache directory both contribute their observations; orphaned writer
    temps from crashed processes are swept at construction.

    Besides the backend-keyed EMA map, the store accumulates a *sample
    corpus* -- per ``(workload, config, backend, trace length)`` EMA
    seconds with an observation count -- which is what the learned cost
    model (:mod:`repro.core.costmodel`) fits on.  The corpus rides in the
    same file under a ``samples`` key that pre-corpus readers ignore, so
    the format version is unchanged; merge-on-save semantics match the
    EMA map (adopt foreign keys, blend contended ones).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None, alpha: float = 0.5) -> None:
        self.path = Path(path) if path is not None else None
        self.alpha = alpha
        self._data: Dict[str, float] = {}
        self._samples: Dict[str, Dict[str, float]] = {}
        if self.path is not None:
            self._sweep_temps()
            self._data, self._samples = self._read_disk()
        #: snapshot of the on-disk state this store last loaded or wrote,
        #: so save() can tell which keys another process updated since
        self._synced: Dict[str, float] = dict(self._data)
        self._synced_samples: Dict[str, float] = {
            key: entry["s"] for key, entry in self._samples.items()
        }
        obs_registry().register_collector("timing_store", self.stats)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._data), "samples": len(self._samples)}

    def _read_disk(self) -> Tuple[Dict[str, float], Dict[str, Dict[str, float]]]:
        """Current on-disk (timings, samples) (empty on any error).

        Keys written before the backend dimension existed
        (``workload/config``) are migrated in place to
        ``workload/config@reference`` -- every pre-backend observation was
        a reference-path execution, and leaving them unmigrated would
        orphan the history the scheduler ordered by.  Files written
        before the sample corpus existed simply have no ``samples`` key.
        """
        try:
            payload = json.loads(self.path.read_text())
            if payload.get("version") != TIMINGS_FORMAT_VERSION:
                return {}, {}
            data = {str(k): float(v) for k, v in dict(payload.get("seconds", {})).items()}
            samples = {
                str(k): {"s": float(v["s"]), "n": float(v["n"])}
                for k, v in dict(payload.get("samples", {})).items()
            }
            return (
                {(k if "@" in k else f"{k}@{BACKEND_REFERENCE}"): v for k, v in data.items()},
                samples,
            )
        except (FileNotFoundError, json.JSONDecodeError, KeyError, TypeError, ValueError, AttributeError):
            return {}, {}

    def _sweep_temps(self) -> int:
        """Remove writer temps (``<name>.tmp.<pid>``) of dead processes."""
        removed = 0
        if self.path is None or not self.path.parent.is_dir():
            return removed
        for tmp in self.path.parent.glob(f"{self.path.name}.tmp.*"):
            if stale_temp(tmp, tmp.name.rsplit(".", 1)[-1]):
                try:
                    tmp.unlink()
                    removed += 1
                except FileNotFoundError:  # pragma: no cover - concurrent sweep
                    pass
        return removed

    @staticmethod
    def key(workload: str, name: str, backend: str = BACKEND_REFERENCE) -> str:
        """Timing key: the backend is part of the identity.

        A batched lane's attributable seconds (tail + its share of the
        shared base) differ systematically from a reference execution of
        the same cell; one EMA over both would corrupt the
        longest-expected-first schedule for whichever backend runs next.
        """
        return f"{workload}/{name}@{backend}"

    @staticmethod
    def sample_key(workload: str, name: str, backend: str, branches: int) -> str:
        """Corpus key: the trace length joins the identity (cost scales with it)."""
        return f"{workload}/{name}@{backend}#{int(branches)}"

    def get(self, workload: str, name: str, backend: str = BACKEND_REFERENCE) -> Optional[float]:
        return self._data.get(self.key(workload, name, backend))

    def observe(
        self,
        workload: str,
        name: str,
        seconds: float,
        backend: str = BACKEND_REFERENCE,
        branches: Optional[int] = None,
    ) -> None:
        """Blend one observation into the EMA (first observation wins whole).

        With ``branches`` the observation also lands in the sample corpus
        under its trace length, growing the learned cost model's training
        set (callers that know the run length should always pass it).
        """
        key = self.key(workload, name, backend)
        previous = self._data.get(key)
        if previous is None:
            self._data[key] = float(seconds)
        else:
            self._data[key] = self.alpha * float(seconds) + (1.0 - self.alpha) * previous
        if branches is not None:
            skey = self.sample_key(workload, name, backend, branches)
            entry = self._samples.get(skey)
            if entry is None:
                self._samples[skey] = {"s": float(seconds), "n": 1.0}
            else:
                entry["s"] = self.alpha * float(seconds) + (1.0 - self.alpha) * entry["s"]
                entry["n"] += 1.0

    def samples(self) -> List[Tuple[str, str, str, int, float, int]]:
        """The fit corpus: ``(workload, config, backend, branches, seconds,
        count)`` rows in deterministic (sorted-key) order."""
        rows = []
        for key in sorted(self._samples):
            cell, _, branches_text = key.rpartition("#")
            ident, _, backend = cell.rpartition("@")
            workload, _, name = ident.partition("/")
            entry = self._samples[key]
            rows.append(
                (workload, name, backend, int(branches_text), entry["s"], int(entry["n"]))
            )
        return rows

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def save(self) -> None:
        """Merge with the on-disk state, then persist atomically.

        A plain overwrite is last-writer-wins: two concurrent invocations
        sharing a cache dir would silently drop each other's timings.
        Instead, keys another process added since our load are adopted,
        and keys both sides updated are EMA-blended -- the merge is
        heuristic (timings are advisory) but loses nobody's data.  The
        sample corpus merges the same way (blend contended seconds, keep
        the larger observation count).  No-op for in-memory stores.
        """
        if self.path is None:
            return
        disk, disk_samples = self._read_disk()
        for key, disk_value in disk.items():
            mine = self._data.get(key)
            if mine is None:
                self._data[key] = disk_value
            elif disk_value != self._synced.get(key):
                self._data[key] = self.alpha * mine + (1.0 - self.alpha) * disk_value
        for key, disk_entry in disk_samples.items():
            mine_entry = self._samples.get(key)
            if mine_entry is None:
                self._samples[key] = dict(disk_entry)
            elif disk_entry["s"] != self._synced_samples.get(key):
                mine_entry["s"] = self.alpha * mine_entry["s"] + (1.0 - self.alpha) * disk_entry["s"]
                mine_entry["n"] = max(mine_entry["n"], disk_entry["n"])
        payload = {
            "version": TIMINGS_FORMAT_VERSION,
            "seconds": self._data,
            "samples": self._samples,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, self.path)
        self._synced = dict(self._data)
        self._synced_samples = {key: entry["s"] for key, entry in self._samples.items()}

    def __len__(self) -> int:
        return len(self._data)


# -- the persistent cache -----------------------------------------------------


class ResultCache:
    """Content-addressed on-disk store of :class:`SimulationResult` entries.

    One JSON file per entry, named by the :func:`cache_digest` of its
    key; each file also records the human-readable key for debugging.
    Writes go through a per-process temp file and ``os.replace`` so
    concurrent writers (a parallel ``run_matrix`` merging worker results,
    or two CLI invocations sharing ``--cache-dir``) can never corrupt an
    entry.  ``hits``/``misses``/``writes`` counters let callers (and
    tests) verify that a warm cache performs zero simulations.

    The store is *self-healing*: an entry that fails to parse or
    validate (undecodable JSON, or a well-formed file with the right
    version but a missing/malformed ``result`` field -- the signature of
    an interrupted writer on a pre-atomic layout) is quarantined by
    renaming it ``*.json.corrupt`` and reported as a miss, so the cell
    re-simulates and overwrites instead of crashing the run.  Orphaned
    writer temps (``*.json.tmp.<pid>`` of dead processes) are swept at
    construction and by :meth:`clear`.  ``quarantined`` / ``temps_swept``
    counters surface both in :meth:`stats`.
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.temps_swept = 0
        self._sweep_temps()
        # per-instance counters stay plain ints (the attribute API above
        # is public); the registry sees them through a weak pull-collector
        obs_registry().register_collector("result_cache", self.stats)

    def _path(self, digest: str) -> Path:
        return self.cache_dir / f"{digest}.json"

    def _sweep_temps(self) -> int:
        """Remove writer temps (``*.json.tmp.<pid>``) of dead processes."""
        removed = 0
        for tmp in self.cache_dir.glob("*.json.tmp.*"):
            if stale_temp(tmp, tmp.name.rsplit(".", 1)[-1]):
                try:
                    tmp.unlink()
                    removed += 1
                except FileNotFoundError:  # pragma: no cover - concurrent sweep
                    pass
        self.temps_swept += removed
        return removed

    def _quarantine(self, path: Path) -> None:
        """Rename a damaged entry out of the way (``<name>.corrupt``)."""
        try:
            os.replace(path, path.with_name(f"{path.name}.corrupt"))
        except OSError:  # pragma: no cover - raced unlink/rename
            try:
                path.unlink()
            except OSError:
                return
        self.quarantined += 1

    def get(self, digest: str) -> Optional[SimulationResult]:
        """Return the cached result for ``digest``, or ``None`` on a miss.

        Damaged entries (undecodable, or schema-invalid under the current
        version) are quarantined and treated as misses rather than
        raising, so one bad file degrades a single cell to
        re-simulation instead of aborting the campaign.
        """
        path = self._path(digest)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
            if payload.get("version") != CACHE_FORMAT_VERSION:
                # foreign layout version: a plain miss, not damage --
                # another tool revision may still be able to read it
                self.misses += 1
                return None
            result = result_from_dict(payload["result"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, digest: str, key: Mapping[str, object], result: SimulationResult) -> None:
        """Store ``result`` under ``digest`` (atomic, last writer wins)."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": dict(key),
            "result": result_to_dict(result),
        }
        injector = active_injector()
        if injector is not None and injector.should_corrupt(
            str(key.get("workload", "")), str(key.get("config", ""))
        ):
            # fault injection: drop the result field, keeping the entry
            # well-formed JSON of the right version -- the exact shape
            # the quarantine path in get() must recover from
            del payload["result"]
        path = self._path(digest)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)
        self.writes += 1

    def invalidate(self, digest: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            self._path(digest).unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Drop every entry; returns the number removed.

        Also sweeps quarantined (``*.json.corrupt``) files and orphaned
        writer temps -- ``clear`` means "leave the directory pristine",
        not "remove only what I can still parse".
        """
        removed = 0
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:  # pragma: no cover - concurrent clear
                pass
        for path in self.cache_dir.glob("*.json.corrupt"):
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent clear
                pass
        self._sweep_temps()
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
            "temps_swept": self.temps_swept,
        }
