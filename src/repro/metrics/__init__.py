"""Cost metrics: bandwidth, energy, prefetch effectiveness, storage."""

from repro.metrics.bandwidth import BITS_PER_TRANSACTION, BandwidthReport, bandwidth_report
from repro.metrics.energy import EnergyReport, StructureGeometry, access_energy, energy_report
from repro.metrics.prefetch import PrefetchReport, prefetch_report
from repro.metrics.storage import StorageBudget, llbp_budget, overhead_percent, tsl_budget

__all__ = [
    "BITS_PER_TRANSACTION",
    "BandwidthReport",
    "EnergyReport",
    "PrefetchReport",
    "StorageBudget",
    "StructureGeometry",
    "access_energy",
    "bandwidth_report",
    "energy_report",
    "llbp_budget",
    "overhead_percent",
    "prefetch_report",
    "tsl_budget",
]
