"""Prefetch effectiveness classification (Fig 14a).

Every pattern-set prefetch ends in exactly one category when it leaves
the pattern buffer (or at the end of simulation):

* **timely** -- the set arrived before its first use;
* **late**   -- a prediction wanted the set while its transfer was still
  in flight;
* **unused** -- the set was evicted (or survived to the end) without ever
  providing a lookup.

Coverage is the fraction of prefetches that were ever used; the
over-prefetch ratio is the unused fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simulator import SimulationResult


@dataclass
class PrefetchReport:
    """Aggregate prefetch classification of one LLBP-family run."""

    predictor: str
    workload: str
    timely: int
    late: int
    unused: int
    false_path_issued: int

    @property
    def total(self) -> int:
        return self.timely + self.late + self.unused

    @property
    def timely_fraction(self) -> float:
        return self.timely / self.total if self.total else 0.0

    @property
    def late_fraction(self) -> float:
        return self.late / self.total if self.total else 0.0

    @property
    def unused_fraction(self) -> float:
        """The over-prefetch ratio of Fig 14a."""
        return self.unused / self.total if self.total else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of prefetches that served at least one prediction."""
        return (self.timely + self.late) / self.total if self.total else 0.0


def prefetch_report(result: SimulationResult) -> PrefetchReport:
    """Extract Fig 14a's categories from a simulation result."""
    stats = result.stats
    return PrefetchReport(
        predictor=result.predictor,
        workload=result.workload,
        timely=stats.get("prefetch_timely", 0),
        late=stats.get("prefetch_late", 0),
        unused=stats.get("prefetch_unused", 0),
        false_path_issued=stats.get("false_path_issued", 0),
    )
