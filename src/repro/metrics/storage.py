"""Storage-budget accounting for predictor configurations.

Reproduces the paper's budget statements: the 64K TSL baseline, LLBP's
515KB total, and LLBP-X's +9.36KB (+1.8%) overhead from the CTT, the
extended RCR, and the extra CD replacement bit (§V-D.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llbp.config import LLBPConfig, LLBPXConfig
from repro.tage.config import TageConfig


@dataclass
class StorageBudget:
    """Bit-level storage budget of one predictor configuration."""

    name: str
    tage_bits: int
    second_level_bits: int  # pattern store + CD (+ CTT for LLBP-X)
    rcr_bits: int

    @property
    def total_bits(self) -> int:
        return self.tage_bits + self.second_level_bits + self.rcr_bits

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8192.0


def tsl_budget(config: TageConfig) -> StorageBudget:
    return StorageBudget(
        name=config.name,
        tage_bits=config.storage_bits(),
        second_level_bits=0,
        rcr_bits=0,
    )


def llbp_budget(llbp: LLBPConfig, tage: TageConfig) -> StorageBudget:
    """Budget of an LLBP/LLBP-X system over its first-level TSL.

    The RCR holds ``D + W`` unconditional branch addresses (28 bits
    each); LLBP-X's deep depth extends it to 64 entries, the +224B
    overhead the paper quotes.
    """
    depth = llbp.context_depth
    if isinstance(llbp, LLBPXConfig):
        depth = llbp.deep_depth
    rcr_bits = (llbp.prefetch_distance + depth) * 28
    return StorageBudget(
        name=llbp.name,
        tage_bits=tage.storage_bits(),
        second_level_bits=llbp.storage_bits(),
        rcr_bits=rcr_bits,
    )


def overhead_percent(base: StorageBudget, extended: StorageBudget) -> float:
    """Relative storage overhead of ``extended`` vs ``base`` in percent."""
    if base.total_bits == 0:
        raise ValueError("base budget is empty")
    return 100.0 * (extended.total_bits - base.total_bits) / base.total_bits
