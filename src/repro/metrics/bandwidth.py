"""Transfer bandwidth between pattern store and pattern buffer (Fig 15a).

Both LLBP and LLBP-X move whole pattern sets; the paper counts 288 bits
per read or write transaction.  Reads are prefetch/demand fills, writes
are dirty writebacks; the metric is bits per committed instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.simulator import SimulationResult

#: bits moved per pattern-set transaction (paper §VII-D)
BITS_PER_TRANSACTION = 288


@dataclass
class BandwidthReport:
    """Read/write traffic of one LLBP-family run."""

    predictor: str
    workload: str
    reads: int
    writes: int
    instructions: int

    @property
    def read_bits_per_instruction(self) -> float:
        return BITS_PER_TRANSACTION * self.reads / self.instructions if self.instructions else 0.0

    @property
    def write_bits_per_instruction(self) -> float:
        return BITS_PER_TRANSACTION * self.writes / self.instructions if self.instructions else 0.0

    @property
    def bits_per_instruction(self) -> float:
        return self.read_bits_per_instruction + self.write_bits_per_instruction


def bandwidth_report(result: SimulationResult) -> BandwidthReport:
    """Extract the Fig 15a traffic numbers from a simulation result."""
    extra = result.extra
    if "store_reads" not in extra:
        raise ValueError(
            f"result for {result.predictor!r} carries no pattern-store traffic; "
            "bandwidth applies to LLBP-family predictors only"
        )
    return BandwidthReport(
        predictor=result.predictor,
        workload=result.workload,
        reads=int(extra["store_reads"]),
        writes=int(extra["store_writes"]),
        instructions=result.total_instructions,
    )
