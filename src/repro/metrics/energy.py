"""Analytical SRAM access-energy model (the CACTI 7.0 stand-in, Fig 15b).

CACTI is a closed binary, so per-access energies come from a standard
analytical SRAM law: access energy grows with the square root of capacity
(bitline/wordline length), linearly with associativity (parallel way
reads), and linearly with the accessed width.  Absolute joules are not
meaningful -- the model is used exactly as the paper uses CACTI: to weigh
per-structure access counts into a *relative* energy comparison between
LLBP-X and LLBP.

Structures and access weights follow §VII-D: the PB is accessed every
cycle, CD and CTT on every (context-forming) unconditional branch, the
pattern store on directory hits and writebacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.simulator import SimulationResult
from repro.llbp.config import LLBPConfig, LLBPXConfig


@dataclass(frozen=True)
class StructureGeometry:
    """What the energy law needs to know about one SRAM structure."""

    name: str
    capacity_bits: int
    assoc: int
    access_bits: int  # width of one access


def access_energy(geometry: StructureGeometry) -> float:
    """Relative energy of one access (arbitrary units).

    ``E = (0.2 + 0.05 * sqrt(capacity_kbit)) * (1 + 0.08 * assoc) *
    (access_bits / 64)``: the constants give CACTI-like ratios between
    KB-scale and hundreds-of-KB-scale structures at 22nm.
    """
    capacity_kbit = geometry.capacity_bits / 1024.0
    size_term = 0.2 + 0.05 * math.sqrt(capacity_kbit)
    assoc_term = 1.0 + 0.08 * geometry.assoc
    width_term = geometry.access_bits / 64.0
    return size_term * assoc_term * width_term


def _geometries(config: LLBPConfig) -> Dict[str, StructureGeometry]:
    pattern_bits = config.pattern_tag_bits + config.pattern_counter_bits + 5
    set_bits = config.patterns_per_set * pattern_bits
    out = {
        "pattern_store": StructureGeometry(
            "pattern_store",
            capacity_bits=config.effective_contexts * set_bits,
            assoc=1,  # modelled direct-mapped, as in the paper
            access_bits=set_bits,
        ),
        "context_directory": StructureGeometry(
            "context_directory",
            capacity_bits=config.effective_contexts * (config.context_tag_bits + 3),
            assoc=config.store_assoc,
            access_bits=8,
        ),
        "pattern_buffer": StructureGeometry(
            "pattern_buffer",
            capacity_bits=config.pattern_buffer_entries * set_bits,
            assoc=4,
            access_bits=set_bits,
        ),
    }
    if isinstance(config, LLBPXConfig):
        entry_bits = config.ctt_tag_bits + config.avg_hist_len_bits + 1 + 2
        out["ctt"] = StructureGeometry(
            "ctt",
            capacity_bits=config.effective_ctt_entries * entry_bits,
            assoc=config.ctt_assoc,
            access_bits=16,
        )
    return out


@dataclass
class EnergyReport:
    """Per-structure energy of one LLBP-family run (arbitrary units)."""

    predictor: str
    workload: str
    per_structure: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.per_structure.values())


def energy_report(result: SimulationResult, config: LLBPConfig) -> EnergyReport:
    """Weigh access counts from a run into the Fig 15b energy comparison."""
    geometries = _geometries(config)
    energies = {name: access_energy(geometry) for name, geometry in geometries.items()}
    ub_accesses = result.stats.get("unconditional_branches", 0)
    store_accesses = result.extra.get("store_reads", 0.0) + result.extra.get("store_writes", 0.0)
    per_structure = {
        # the PB is probed every cycle (~ every instruction)
        "pattern_buffer": energies["pattern_buffer"] * result.total_instructions,
        "context_directory": energies["context_directory"] * ub_accesses,
        "pattern_store": energies["pattern_store"] * store_accesses,
    }
    if "ctt" in energies:
        per_structure["ctt"] = energies["ctt"] * ub_accesses
    return EnergyReport(
        predictor=result.predictor, workload=result.workload, per_structure=per_structure
    )
