"""Bit-level primitives: hashing, folded histories, global history.

TAGE-style predictors hash a very long global history (thousands of bits)
into short indices and tags every cycle.  Hardware does this with *folded
history* registers -- circular shift registers that incrementally fold the
history down to ``width`` bits as new outcomes are shifted in.  This module
provides a software implementation with the same incremental-update
semantics plus the deterministic 64-bit mixing hash used everywhere a
"random but stable" hash is required (context IDs, trace generation, ...).
"""

from __future__ import annotations

from typing import Iterable, List

_U64 = (1 << 64) - 1


def mask(bits: int) -> int:
    """Return a bit-mask with the ``bits`` low bits set."""
    if bits < 0:
        raise ValueError(f"bit width must be non-negative, got {bits}")
    return (1 << bits) - 1


def mix64(value: int) -> int:
    """Deterministically mix a 64-bit integer (splitmix64 finaliser).

    The finaliser has full avalanche: every input bit affects every output
    bit with probability ~1/2, which is what tag/index hashing needs.
    """
    z = value & _U64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _U64
    return (z ^ (z >> 31)) & _U64


def mix_many(values: Iterable[int]) -> int:
    """Hash a sequence of integers into one 64-bit value, order-sensitive."""
    acc = 0x9E3779B97F4A7C15
    for value in values:
        acc = mix64(acc ^ (value & _U64))
    return acc


class FoldedHistory:
    """Incrementally folded global history, as in hardware TAGE.

    Folds ``history_length`` bits of direction history into ``width`` bits
    by XOR-ing ``width``-bit chunks.  ``update`` shifts one new outcome in
    and the outcome that falls off the end of the history window out, in
    O(1), exactly mirroring the circular-shift-register implementation.

    The invariant (checked by the property tests) is that after any update
    sequence the value equals the *naive* fold of the most recent
    ``history_length`` outcomes.
    """

    def __init__(self, history_length: int, width: int) -> None:
        if history_length <= 0:
            raise ValueError(f"history_length must be positive, got {history_length}")
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.history_length = history_length
        self.width = width
        self.value = 0
        # Bit position (within the folded word) where the outgoing bit of
        # the history window lands after history_length rotations.
        self._out_point = history_length % width

    def update(self, new_bit: int, old_bit: int) -> None:
        """Shift ``new_bit`` in and ``old_bit`` (aged out of window) out."""
        value = ((self.value << 1) | (new_bit & 1)) & mask(self.width)
        # Re-inject the bit rotated out by the shift.
        value ^= self.value >> (self.width - 1)
        # Remove the contribution of the outgoing history bit.
        value ^= (old_bit & 1) << self._out_point
        self.value = value

    def reset(self) -> None:
        self.value = 0

    @staticmethod
    def fold_naive(bits: List[int], width: int) -> int:
        """Reference fold of a full history window (``bits[0]`` newest).

        A bit of age ``a`` entered the register ``a`` updates ago at
        position 0 and has been rotated left ``a`` times since, so it
        contributes at position ``a % width``.  The incremental
        implementation must agree with this for every update sequence;
        the property tests check exactly that.
        """
        folded = 0
        for age, bit in enumerate(bits):
            folded ^= (bit & 1) << (age % width)
        return folded


class GlobalHistory:
    """Circular buffer of branch direction outcomes with O(1) append.

    Keeps the most recent ``capacity`` outcomes so that folded histories of
    any shorter length can be updated incrementally: when a new outcome is
    appended, the bit that ages out of an ``L``-bit window is simply the
    outcome recorded ``L`` steps ago.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer = [0] * capacity
        self._head = 0  # position of the most recent outcome
        self._count = 0

    def append(self, bit: int) -> None:
        self._head = (self._head + 1) % self.capacity
        self._buffer[self._head] = bit & 1
        if self._count < self.capacity:
            self._count += 1

    def __len__(self) -> int:
        return self._count

    def bit(self, age: int) -> int:
        """Outcome recorded ``age`` appends ago (0 == most recent)."""
        if age < 0 or age >= self.capacity:
            raise IndexError(f"age {age} outside capacity {self.capacity}")
        return self._buffer[(self._head - age) % self.capacity]

    def recent(self, count: int) -> List[int]:
        """The ``count`` most recent outcomes, newest first."""
        return [self.bit(age) for age in range(min(count, self.capacity))]

    def reset(self) -> None:
        self._buffer = [0] * self.capacity
        self._head = 0
        self._count = 0


class PathHistory:
    """Hashed path history of low-order branch-address bits.

    TAGE mixes a short *path* history (a few address bits per branch) into
    its indices to de-alias branches with identical direction histories.
    """

    def __init__(self, depth: int = 32, bits_per_branch: int = 2) -> None:
        self.depth = depth
        self.bits_per_branch = bits_per_branch
        self.value = 0
        self._width = depth * bits_per_branch

    def update(self, pc: int) -> None:
        self.value = ((self.value << self.bits_per_branch) | (pc & mask(self.bits_per_branch))) & mask(self._width)

    def hashed(self, width: int) -> int:
        return mix64(self.value) & mask(width)

    def reset(self) -> None:
        self.value = 0
