"""Shared primitives used across the simulation framework.

The :mod:`repro.common` package gathers small, dependency-free building
blocks: deterministic hashing, saturating counters, folded history
registers, and statistics accumulators.  Every predictor model in
:mod:`repro.tage` and :mod:`repro.llbp` is built on top of these.
"""

from repro.common.bitops import (
    FoldedHistory,
    GlobalHistory,
    PathHistory,
    mask,
    mix64,
    mix_many,
)
from repro.common.counters import (
    SaturatingCounter,
    SignedSaturatingCounter,
    UnsignedSaturatingCounter,
)
from repro.common.stats import RatioStat, StatCounter, StatGroup, mpki

__all__ = [
    "FoldedHistory",
    "GlobalHistory",
    "PathHistory",
    "RatioStat",
    "SaturatingCounter",
    "SignedSaturatingCounter",
    "StatCounter",
    "StatGroup",
    "UnsignedSaturatingCounter",
    "mask",
    "mix64",
    "mix_many",
    "mpki",
]
