"""Saturating counters, the universal state element of branch predictors.

Two flavours are provided:

* :class:`SignedSaturatingCounter` -- a counter in ``[-2**(bits-1),
  2**(bits-1) - 1]`` whose *sign* encodes a predicted direction and whose
  magnitude encodes confidence (TAGE prediction counters, SC weights).
* :class:`UnsignedSaturatingCounter` -- a counter in ``[0, 2**bits - 1]``
  (useful bits, confidence counters, the CTT's avg-hist-len counter).
"""

from __future__ import annotations


class SaturatingCounter:
    """Common behaviour for bounded integer counters."""

    __slots__ = ("value", "lo", "hi")

    def __init__(self, lo: int, hi: int, value: int = 0) -> None:
        if lo > hi:
            raise ValueError(f"empty counter range [{lo}, {hi}]")
        if not lo <= value <= hi:
            raise ValueError(f"initial value {value} outside [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self.value = value

    def increment(self) -> None:
        if self.value < self.hi:
            self.value += 1

    def decrement(self) -> None:
        if self.value > self.lo:
            self.value -= 1

    def update(self, up: bool) -> None:
        """Increment when ``up`` is true, decrement otherwise."""
        if up:
            self.increment()
        else:
            self.decrement()

    def set(self, value: int) -> None:
        self.value = min(self.hi, max(self.lo, value))

    @property
    def saturated_high(self) -> bool:
        return self.value == self.hi

    @property
    def saturated_low(self) -> bool:
        return self.value == self.lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.value} in [{self.lo}, {self.hi}])"


class SignedSaturatingCounter(SaturatingCounter):
    """An n-bit two's-complement style counter in ``[-2^(n-1), 2^(n-1)-1]``."""

    def __init__(self, bits: int, value: int = 0) -> None:
        if bits < 1:
            raise ValueError(f"need at least 1 bit, got {bits}")
        super().__init__(-(1 << (bits - 1)), (1 << (bits - 1)) - 1, value)
        self.bits = bits

    __slots__ = ("bits",)

    @property
    def taken(self) -> bool:
        """Predicted direction: counter's sign bit (>= 0 means taken)."""
        return self.value >= 0

    @property
    def confidence(self) -> int:
        """Distance from the weakest state of the predicted direction.

        0 for the two weakest states (-1 / 0); grows towards saturation.
        """
        return self.value if self.value >= 0 else -self.value - 1

    @property
    def is_weak(self) -> bool:
        return self.value in (0, -1)

    @property
    def is_high_confidence(self) -> bool:
        """Within one step of saturation, the LLBP notion of "confident"."""
        return self.value >= self.hi - 1 or self.value <= self.lo + 1

    def init_weak(self, taken: bool) -> None:
        """Reset to the weakest state for ``taken`` (new allocations)."""
        self.value = 0 if taken else -1


class UnsignedSaturatingCounter(SaturatingCounter):
    """An n-bit counter in ``[0, 2^n - 1]``."""

    __slots__ = ("bits",)

    def __init__(self, bits: int, value: int = 0) -> None:
        if bits < 1:
            raise ValueError(f"need at least 1 bit, got {bits}")
        super().__init__(0, (1 << bits) - 1, value)
        self.bits = bits
