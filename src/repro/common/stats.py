"""Lightweight statistics accumulators for simulation runs."""

from __future__ import annotations

from typing import Dict, Iterator


def mpki(mispredictions: int, instructions: int) -> float:
    """Mispredictions per kilo-instruction."""
    if instructions <= 0:
        raise ValueError(f"instruction count must be positive, got {instructions}")
    return 1000.0 * mispredictions / instructions


class StatCounter:
    """A named monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatCounter({self.name}={self.value})"


class RatioStat:
    """A hits-out-of-total ratio with safe division."""

    __slots__ = ("name", "hits", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.total = 0

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    @property
    def ratio(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RatioStat({self.name}={self.hits}/{self.total})"


class StatGroup:
    """A named collection of counters, created on first use.

    Predictor models use one group each; ``as_dict`` snapshots everything
    for result records and reports.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, StatCounter] = {}

    def counter(self, name: str) -> StatCounter:
        if name not in self._counters:
            self._counters[name] = StatCounter(name)
        return self._counters[name]

    def add(self, name: str, amount: int = 1) -> None:
        self.counter(name).add(amount)

    def get(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()

    def as_dict(self) -> Dict[str, int]:
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    def __iter__(self) -> Iterator[StatCounter]:
        return iter(self._counters.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name}, {len(self._counters)} counters)"
