"""Stdlib HTTP client of the experiment service.

:class:`ServiceClient` is a thin typed wrapper over
``http.client.HTTPConnection`` -- one connection per request (the server
speaks ``Connection: close``), JSON in and out, and non-2xx statuses
surfaced as :class:`ServiceError` carrying the HTTP status so callers
can distinguish a 429 quota rejection from a 400 malformed spec.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional
from urllib.parse import urlencode, urlsplit

from repro.core.results_io import result_from_dict
from repro.core.simulator import SimulationResult

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service (``status`` + server message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Typed client for one daemon at ``url`` (e.g. ``http://127.0.0.1:8765``)."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(url if "//" in url else "http://" + url)
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// service URLs are supported, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        headers: Optional[Dict[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> object:
        body = None
        send_headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout
        )
        try:
            conn.request(method, path, body=body, headers=send_headers)
            response = conn.getresponse()
            raw = response.read().decode("utf-8")
            content_type = response.getheader("Content-Type", "")
        finally:
            conn.close()
        if response.status >= 300:
            message = raw.strip()
            try:
                message = json.loads(raw).get("error", message)
            except ValueError:
                pass
            raise ServiceError(response.status, message)
        if "x-ndjson" in content_type:
            return [json.loads(line) for line in raw.splitlines() if line.strip()]
        if "text/plain" in content_type:
            return raw  # e.g. /metrics Prometheus exposition text
        return json.loads(raw) if raw.strip() else None

    # -- endpoints ----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def submit(self, spec: Dict[str, object], tenant: Optional[str] = None) -> Dict[str, object]:
        headers = {"X-Tenant": tenant} if tenant else None
        return self._request("POST", "/jobs", payload=spec, headers=headers)

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def events(self, job_id: str, after: int = 0, wait: float = 0.0) -> List[Dict[str, object]]:
        query = urlencode({"after": after, "wait": wait})
        # the long-poll may hold the connection up to `wait` seconds; pad
        # the socket timeout so a quiet poll is not a client-side error
        return self._request(
            "GET", f"/jobs/{job_id}/events?{query}", timeout=self.timeout + wait
        )

    def progress(self, job_id: str) -> Dict[str, object]:
        """Cells done/total, current throughput, and cost-model ETA."""
        return self._request("GET", f"/jobs/{job_id}/progress")

    def metrics(self) -> str:
        """The daemon's /metrics payload (Prometheus text format)."""
        return self._request("GET", "/metrics")

    def result(self, digest: str) -> SimulationResult:
        return result_from_dict(self._request("GET", f"/results/{digest}"))

    # -- conveniences -------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 600.0, poll: float = 0.2) -> Dict[str, object]:
        """Poll until the job reaches a final state; returns the job dict."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"{job_id} still {job['state']} after {timeout:.0f}s")
            time.sleep(poll)
