"""Stdlib-only asyncio HTTP/JSON front-end of the experiment service.

The protocol surface is deliberately tiny -- HTTP/1.1,
``Connection: close``, JSON bodies -- so the whole server fits in one
``asyncio.start_server`` callback with a hand-rolled request parser and
no third-party dependencies:

=======  ==============================  =========================================
method   path                            semantics
=======  ==============================  =========================================
GET      ``/healthz``                    daemon liveness + queue/cache stats
POST     ``/jobs``                       submit a matrix spec (201 / 400 / 429)
GET      ``/jobs``                       list all jobs (terse)
GET      ``/jobs/<id>``                  job status + cells + RunReport (404)
POST     ``/jobs/<id>/cancel``           request cancellation (also DELETE)
GET      ``/jobs/<id>/events``           JSONL progress stream; ``?after=N``
                                         resumes past cursor N, ``?wait=S``
                                         long-polls up to S seconds
GET      ``/results/<digest>``           cached result by content digest (404)
=======  ==============================  =========================================

Blocking work (the long-poll's event-file reads) runs via
``asyncio.to_thread`` so one slow poller never stalls other clients.
The server owns no state of its own: every request delegates to the
:class:`~repro.service.daemon.ExperimentService`, whose drain thread is
the only executor.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.results_io import result_to_dict
from repro.obs.events import read_events
from repro.obs.log import get_logger
from repro.service.daemon import ExperimentService
from repro.service.jobs import QuotaExceeded, SpecError

__all__ = ["ServiceServer"]

logger = get_logger("service.http")

MAX_BODY_BYTES = 1 << 20  # a matrix spec is tiny; reject anything huge
MAX_EVENT_WAIT = 60.0  # long-poll upper bound per request
EVENT_POLL_INTERVAL = 0.1


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
    )
    for name, value in (extra_headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += "\r\n"
    return head.encode("ascii") + body


def _json_response(status: int, payload: object) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return _response(status, body)


class ServiceServer:
    """Asyncio HTTP server over one :class:`ExperimentService`.

    ``port=0`` binds an ephemeral port (the bound port is published on
    :attr:`port` once serving).  Two entry points: :meth:`serve_forever`
    blocks the calling thread (the CLI's ``repro serve``) and stops
    cleanly on SIGINT; :meth:`start_background` runs the event loop on a
    daemon thread for in-process tests.
    """

    def __init__(
        self,
        service: ExperimentService,
        host: str = "127.0.0.1",
        port: int = 0,
        on_ready: Optional[Callable[["ServiceServer"], None]] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.on_ready = on_ready
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._shutdown: Optional[asyncio.Event] = None

    # -- request handling ---------------------------------------------------

    async def _read_request(self, reader) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise _HttpError(400, "empty request")
        try:
            method, target, _version = request_line.decode("ascii").split(None, 2)
        except ValueError:
            raise _HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                method, target, headers, body = await self._read_request(reader)
                payload = await self._route(method, target, headers, body)
            except _HttpError as exc:
                writer.write(_json_response(exc.status, {"error": exc.message}))
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # noqa: BLE001 - never kill the server loop
                logger.error("internal error: %s", exc)
                writer.write(_json_response(500, {"error": f"{type(exc).__name__}: {exc}"}))
            else:
                writer.write(payload)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, method: str, target: str, headers: Dict[str, str], body: bytes
    ) -> bytes:
        url = urlsplit(target)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)

        if parts == ["healthz"] and method == "GET":
            return _json_response(200, self.service.stats())

        if parts == ["metrics"] and method == "GET":
            from repro.obs.metrics import to_prometheus

            text = to_prometheus(self.service.metrics_snapshot())
            return _response(
                200, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
            )

        if parts == ["jobs"]:
            if method == "POST":
                return self._submit(headers, body)
            if method == "GET":
                jobs = [job.to_dict(verbose=False) for job in self.service.jobs()]
                return _json_response(200, {"jobs": jobs})
            raise _HttpError(405, f"{method} not allowed on /jobs")

        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            job = self.service.job(job_id)
            if job is None:
                raise _HttpError(404, f"unknown job {job_id!r}")
            if len(parts) == 2:
                if method == "GET":
                    return _json_response(200, job.to_dict())
                if method == "DELETE":
                    self.service.cancel(job_id)
                    return _json_response(200, job.to_dict(verbose=False))
                raise _HttpError(405, f"{method} not allowed on /jobs/<id>")
            if parts[2] == "cancel" and method == "POST":
                self.service.cancel(job_id)
                return _json_response(200, job.to_dict(verbose=False))
            if parts[2] == "progress" and method == "GET":
                return _json_response(200, self.service.progress_of(job))
            if parts[2] == "events" and method == "GET":
                return await self._events(job_id, query)
            raise _HttpError(404, f"unknown endpoint /{'/'.join(parts)}")

        if len(parts) == 2 and parts[0] == "results" and method == "GET":
            result = self.service.result(parts[1])
            if result is None:
                raise _HttpError(404, f"no cached result for digest {parts[1]!r}")
            return _json_response(200, result_to_dict(result))

        raise _HttpError(404, f"unknown endpoint {url.path!r}")

    def _submit(self, headers: Dict[str, str], body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            raise _HttpError(400, "request body is not valid JSON")
        try:
            job = self.service.submit(payload, tenant=headers.get("x-tenant"))
        except SpecError as exc:
            raise _HttpError(400, str(exc))
        except QuotaExceeded as exc:
            raise _HttpError(429, str(exc))
        return _json_response(201, job.to_dict(verbose=False))

    async def _events(self, job_id: str, query: Dict[str, list]) -> bytes:
        """JSONL progress events with ``seq > after``; long-poll up to ``wait``.

        A request against a job already in a terminal state returns
        immediately -- empty body, current cursor in ``X-Repro-Cursor``
        -- instead of sleeping out the wait: no further events can ever
        arrive, so there is nothing to poll for.  Live jobs poll the
        event files until new events appear, the job finishes, or the
        deadline lapses; the cursor header always reports the highest
        sequence the client has now seen, ready to be echoed as
        ``after`` on the next poll.
        """
        try:
            after = int(query.get("after", ["0"])[0])
            wait = min(MAX_EVENT_WAIT, float(query.get("wait", ["0"])[0]))
        except ValueError:
            raise _HttpError(400, "'after' and 'wait' must be numeric")

        def _read() -> list:
            events = read_events(self.service.events_dir, where={"job": job_id})
            return [event for event in events if int(event.get("seq", 0) or 0) > after]

        def _respond(events: list, job) -> bytes:
            cursor = max(
                [after]
                + [int(event.get("seq", 0) or 0) for event in events]
                + ([job.events_emitted] if job is not None and job.finished else [])
            )
            lines = "".join(json.dumps(event, sort_keys=True) + "\n" for event in events)
            return _response(
                200,
                lines.encode("utf-8"),
                "application/x-ndjson",
                extra_headers={"X-Repro-Cursor": str(cursor)},
            )

        loop = asyncio.get_running_loop()
        job = self.service.job(job_id)
        if job is None or job.finished:
            # terminal fast-path: serve whatever is past the cursor (one
            # cheap read) and return -- never enter the poll loop
            return _respond(await asyncio.to_thread(_read), job)
        deadline = loop.time() + wait
        while True:
            events = await asyncio.to_thread(_read)
            job = self.service.job(job_id)
            finished = job is None or job.finished
            if events or finished or loop.time() >= deadline:
                return _respond(events, job)
            await asyncio.sleep(EVENT_POLL_INTERVAL)

    # -- lifecycle ----------------------------------------------------------

    async def _serve(self) -> None:
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(self._handle, host=self.host, port=self.port)
        self.port = server.sockets[0].getsockname()[1]
        self.service.start()
        self._started.set()
        logger.info("listening on http://%s:%d", self.host, self.port)
        if self.on_ready is not None:
            self.on_ready(self)
        async with server:
            await self._shutdown.wait()
        self.service.stop()

    def serve_forever(self) -> None:
        """Run until SIGINT/SIGTERM (the ``repro serve`` foreground loop)."""

        async def _main() -> None:
            loop = asyncio.get_running_loop()
            self._loop = loop
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or platform without signal support
            await self._serve()

        asyncio.run(_main())

    def request_stop(self) -> None:
        """Thread/signal-safe shutdown request."""
        loop = self._loop
        if loop is not None and self._shutdown is not None:
            loop.call_soon_threadsafe(self._shutdown.set)

    def start_background(self) -> None:
        """Serve on a daemon thread; returns once the port is bound."""

        def _run() -> None:
            async def _main() -> None:
                self._loop = asyncio.get_running_loop()
                await self._serve()

            asyncio.run(_main())

        self._thread = threading.Thread(target=_run, name="repro-service-http", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("service HTTP server failed to start within 10s")

    def stop_background(self) -> None:
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
