"""The experiment daemon: one executor drain loop over the job queue.

:class:`ExperimentService` owns the warm state every job shares -- the
persistent :class:`~repro.core.results_io.ResultCache`, an optional
:class:`~repro.core.artifacts.ArtifactStore` (bundles + base streams),
and its own :class:`~repro.obs.events.EventSink` -- and runs submitted
jobs one at a time on a single drain thread.  Serialising jobs is what
makes the zero-duplicate-work guarantee trivial: overlapping cells of a
later job resolve from the shared cache that the earlier job populated,
so two clients submitting overlapping matrices never simulate a cell
twice (tests/test_service.py counter-asserts this).

With ``join=True`` the daemon participates in an elastic multi-host run:
each job's runner attaches a :class:`~repro.core.sched.CoopScheduler`
over the shared ledger, so cooperating ``repro run --join`` hosts can
drain cells of the same queue's jobs.

Cancellation reuses the runner's interrupt path: the progress callback
raises :class:`~repro.service.jobs.JobCancelled` when the job's cancel
flag is set, which tears down the parallel pool (``cancel_futures``) and
releases any unfinished multi-host claims, exactly like a Ctrl-C.
"""

from __future__ import annotations

import threading
import time
import traceback
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.artifacts import ArtifactStore
from repro.core.parallel import RetryPolicy
from repro.core.results_io import TIMINGS_FILENAME, ResultCache, TimingStore
from repro.core.runner import DEFAULT_BRANCHES, DEFAULT_SCALE, Runner, RunnerConfig
from repro.core.simulator import SimulationResult, resolve_backend
from repro.obs.events import EventSink, compact_events
from repro.obs.ledger import LEDGER_DIRNAME, RunLedger
from repro.obs.log import get_logger
from repro.obs.metrics import registry as obs_registry
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobCancelled,
    JobQueue,
    JobSpec,
)

__all__ = ["ExperimentService", "SERVICE_EVENTS_DIRNAME"]

logger = get_logger("service")

#: default event-sink directory, relative to the cache directory
SERVICE_EVENTS_DIRNAME = ".service-events"


class ExperimentService:
    """Job executor shared by every client of one daemon."""

    def __init__(
        self,
        cache_dir,
        artifact_dir=None,
        events_dir=None,
        branches: int = DEFAULT_BRANCHES,
        scale: int = DEFAULT_SCALE,
        backend: str = "auto",
        jobs: int = 1,
        quota: int = 0,
        retries: int = RetryPolicy.retries,
        cell_timeout: Optional[float] = None,
        join: bool = False,
        hosts_dir=None,
        host_id: Optional[str] = None,
        claim_batch: Optional[int] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir)
        self.artifacts = ArtifactStore(artifact_dir) if artifact_dir else None
        self.events_dir = Path(events_dir) if events_dir else (
            self.cache.cache_dir / SERVICE_EVENTS_DIRNAME
        )
        self.sink = EventSink(self.events_dir)
        self.ledger = RunLedger(self.cache.cache_dir / LEDGER_DIRNAME)
        self.default_branches = int(branches)
        self.default_scale = int(scale)
        self.default_backend = resolve_backend(backend)
        self.default_jobs = max(1, int(jobs))
        self.retry_policy = RetryPolicy(retries=retries, timeout=cell_timeout)
        self.queue = JobQueue(quota=quota)
        self.join = bool(join)
        self.hosts_dir = hosts_dir
        self.host_id = host_id
        self.claim_batch = claim_batch
        self.jobs_done = 0
        self.started_at: Optional[float] = None
        #: drain-thread seconds spent executing jobs (utilization gauge)
        self.busy_seconds = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self.started_at = time.time()
        # event-dir hygiene: roll the per-pid files of dead past runners
        # into merged segments before this incarnation adds its own
        try:
            compacted = compact_events(self.events_dir)
        except Exception:  # noqa: BLE001 - hygiene must not block startup
            compacted = {}
        # registering the uptime gauge up front makes it visible on the
        # very first /metrics scrape, before any snapshot refresh ran
        obs_registry().gauge("service.uptime.seconds").set(0.0)
        self._thread = threading.Thread(target=self._drain, name="repro-service", daemon=True)
        self._thread.start()
        self.sink.emit("service-start", events_dir=str(self.events_dir), compacted=compacted)
        if compacted.get("event_files") or compacted.get("metrics_files"):
            logger.info(
                "compacted %d dead event file(s), %d metrics file(s) in %s",
                compacted.get("event_files", 0),
                compacted.get("metrics_files", 0),
                self.events_dir,
            )

    def stop(self) -> None:
        self._stop.set()
        self.queue.wake()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        self.sink.emit("service-stop", jobs_done=self.jobs_done)
        self.sink.close()

    # -- submission ---------------------------------------------------------

    def submit(self, payload: object, tenant: Optional[str] = None) -> Job:
        """Validate ``payload`` against this daemon's defaults and enqueue."""
        spec = JobSpec.from_dict(
            payload,
            default_branches=self.default_branches,
            default_scale=self.default_scale,
            default_backend=self.default_backend,
            default_jobs=self.default_jobs,
            tenant=tenant,
        )
        job = self.queue.submit(spec)
        self.sink.emit(
            "job-queued",
            job=job.id,
            tenant=spec.tenant,
            priority=spec.priority,
            workloads=list(spec.workloads),
            configs=list(spec.configs),
        )
        logger.info("queued %s (%d cells, tenant=%s)", job.id, len(spec.workloads) * len(spec.configs), spec.tenant)
        return job

    def cancel(self, job_id: str) -> Optional[Job]:
        job = self.queue.cancel(job_id)
        if job is not None:
            self.sink.emit("job-cancel-requested", job=job.id, state=job.state)
        return job

    # -- execution ----------------------------------------------------------

    def _runner_for(self, spec: JobSpec) -> Runner:
        runner = Runner(
            RunnerConfig(scale=spec.scale, num_branches=spec.branches),
            cache=self.cache,
            artifacts=self.artifacts,
            retry_policy=self.retry_policy,
            backend=spec.backend,
            ledger=self.ledger,
        )
        if self.join:
            from repro.core.sched import HOSTS_DIRNAME, CoopScheduler, HostLedger

            hosts_dir = self.hosts_dir or (self.cache.cache_dir / HOSTS_DIRNAME)
            ledger = HostLedger(hosts_dir, host_id=self.host_id)
            if self.claim_batch:
                runner.coop = CoopScheduler(ledger, claim_batch=self.claim_batch)
            else:
                runner.coop = CoopScheduler(ledger)
        return runner

    def _execute(self, job: Job) -> None:
        spec = job.spec
        self.sink.emit("job-start", job=job.id, tenant=spec.tenant)
        if job.started_at is not None:
            obs_registry().histogram("jobs.wait.seconds").observe(
                max(0.0, job.started_at - job.created_at)
            )
        exec_start = time.monotonic()
        runner = self._runner_for(spec)
        runner.ledger_context.update({"source": "service", "job": job.id, "tenant": spec.tenant})
        job.cells = [
            {"workload": workload, "config": config, "digest": runner.digest(workload, config)}
            for workload in spec.workloads
            for config in spec.configs
        ]

        def progress(workload: str, config: str, result: SimulationResult) -> None:
            if job.cancel_requested:
                raise JobCancelled(job.id)
            job.cells_done += 1
            self.sink.emit(
                "job-cell",
                job=job.id,
                seq=job.next_event_seq(),
                workload=workload,
                config=config,
                mpki=result.mpki,
            )

        state, error = DONE, ""
        try:
            if job.cancel_requested:  # cancelled between pop and start
                raise JobCancelled(job.id)
            runner.run_matrix(
                list(spec.workloads),
                list(spec.configs),
                progress=progress,
                jobs=spec.jobs,
            )
        except JobCancelled:
            runner.report.record_interrupted()
            state = CANCELLED
            logger.warning("%s cancelled after %d cells", job.id, job.events_emitted)
        except Exception as exc:  # noqa: BLE001 - one job must not kill the daemon
            state, error = FAILED, f"{type(exc).__name__}: {exc}"
            logger.error("%s failed: %s\n%s", job.id, error, traceback.format_exc())
        job.report = runner.report.to_dict(runner)
        exec_seconds = time.monotonic() - exec_start
        self.busy_seconds += exec_seconds
        obs_registry().histogram("jobs.exec.seconds").observe(exec_seconds)
        self.queue.finish(job, state, error)
        self.jobs_done += 1
        self.sink.emit(
            "job-" + state,
            job=job.id,
            seq=job.next_event_seq(),
            simulations=runner.sim_count,
            error=error,
        )
        logger.info("%s %s (%d simulations)", job.id, state, runner.sim_count)

    def _drain(self) -> None:
        while not self._stop.is_set():
            job = self.queue.pop(timeout=0.2)
            if job is None:
                continue
            self._execute(job)

    # -- queries ------------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        return self.queue.get(job_id)

    def jobs(self) -> List[Job]:
        return self.queue.jobs()

    def result(self, digest: str) -> Optional[SimulationResult]:
        return self.cache.get(digest)

    def uptime(self) -> float:
        return max(0.0, time.time() - self.started_at) if self.started_at else 0.0

    def stats(self) -> Dict[str, object]:
        """The ``/healthz`` payload: liveness *and* readiness figures."""
        return {
            "ok": True,
            "jobs": self.queue.by_state(),
            "jobs_done": self.jobs_done,
            "queue_depth": self.queue.depth(),
            "uptime_seconds": round(self.uptime(), 3),
            "ledger_records": self.ledger.count(),
            "cache": self.cache.stats(),
            "events_dir": str(self.events_dir),
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Registry snapshot with the service-level gauges refreshed.

        Gauges are point-in-time and pull-refreshed on every scrape; the
        job wait/exec histograms and all runner counters were populated
        by the drain thread as work happened (the registry is shared --
        one per process, thread-safe).  Per-tenant queued/running gauges
        embed Prometheus labels in the instrument name, which
        :func:`repro.obs.metrics.to_prometheus` passes through verbatim.
        """
        registry = obs_registry()
        uptime = self.uptime()
        registry.gauge("service.uptime.seconds").set(uptime)
        registry.gauge("jobs.queue_depth").set(float(self.queue.depth()))
        registry.gauge("service.jobs_done").set(float(self.jobs_done))
        registry.gauge("service.ledger_records").set(float(self.ledger.count()))
        registry.gauge("service.drain.utilization").set(
            self.busy_seconds / uptime if uptime > 0 else 0.0
        )
        for tenant, counts in sorted(self.queue.by_tenant().items()):
            for state, value in sorted(counts.items()):
                name = 'jobs.tenant{tenant="%s",state="%s"}' % (tenant, state)
                registry.gauge(name).set(float(value))
        return registry.snapshot()

    def progress_of(self, job: Job) -> Dict[str, object]:
        """Live progress of one job: cells done/total, throughput, ETA.

        Throughput is branches resolved per wall second so far; the ETA
        sums the learned cost model's estimates for the remaining cells
        (matrix order approximates the unresolved set -- cells finish
        out of order under parallelism, but the *count* remaining is
        exact), scaled down by the job's worker parallelism.
        """
        spec = job.spec
        total = len(job.cells) or len(spec.workloads) * len(spec.configs)
        done = min(job.cells_done, total)
        now = time.time()
        elapsed = 0.0
        if job.started_at is not None:
            elapsed = max(0.0, (job.finished_at or now) - job.started_at)
        throughput = (done * spec.branches / elapsed) if elapsed > 0 else 0.0
        payload: Dict[str, object] = {
            "id": job.id,
            "state": job.state,
            "cells_done": done,
            "cells_total": total,
            "elapsed_seconds": round(elapsed, 3),
            "branches_per_sec": round(throughput, 2),
            "eta_seconds": None,
        }
        if job.finished or job.started_at is None:
            return payload
        try:
            from repro.core.costmodel import make_cost_model

            model = make_cost_model(TimingStore(self.cache.cache_dir / TIMINGS_FILENAME))
            remaining = job.cells[done:] if job.cells else []
            estimate = sum(
                model.estimate(cell["workload"], cell["config"], spec.branches, spec.backend)
                for cell in remaining
            )
            payload["eta_seconds"] = round(estimate / max(1, spec.jobs), 3)
            payload["cost_model"] = getattr(model, "kind", "heuristic")
        except Exception:  # noqa: BLE001 - progress must never 500 a poll
            pass
        return payload
